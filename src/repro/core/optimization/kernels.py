"""Columnar evaluation kernels — the vectorized grid-evaluation hot path.

The paper's optimization story (Sec. VIII-B) rests on the models being
cheap enough to evaluate the *entire* discrete configuration space. The
scalar reference path (:meth:`~repro.core.optimization.evaluate.
ModelEvaluator.evaluate` inside a Python loop) pays interpreter and object
overhead per configuration — about a second for the default 4,560-point
:class:`~repro.core.optimization.grid.TuningGrid`. This module computes
the same Table III metrics for *all* configurations at once as numpy
broadcast operations over knob columns:

* PER (Eq. 3) and the expected transmission count (Eq. 7 family, in its
  truncated-geometric finite-budget form);
* U_eng (Eq. 2, finite-retry generalization);
* T_service (Eqs. 5–6 exact expectation);
* maxGoodput (Eq. 4);
* utilization ρ (Eq. 9), the M/G/1 + full-queue delay estimate, the
  radio loss PLR_radio (Eq. 8), the M/M/1/K queue-loss estimate, and the
  series-composition total loss.

Results land in a :class:`GridEvaluation` — a struct-of-arrays container
(one float64 column per metric, integer columns for the knobs) from which
scalar :class:`~repro.core.optimization.evaluate.ConfigEvaluation` rows
can be materialized on demand. Every arithmetic step mirrors the scalar
models' operation order so kernel columns agree with the reference
implementation to within floating-point noise (pinned to 1e-9 relative
tolerance by the test suite); the scalar path remains the readable
specification, this module is the fast one.
"""

# reprolint: hot-path — grid-evaluation kernels timed by BENCH_grid_kernel.json
from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ...config import StackConfig
from ...errors import ConfigurationError, OptimizationError
from ...radio import cc2420
from ...radio.frame import DATA_FRAME_OVERHEAD_BYTES
from ...radio.timing import (
    ACK_TIME_S,
    ACK_WAIT_TIMEOUT_S,
    SPI_SECONDS_PER_BYTE,
    mac_delay_s,
)
from .evaluate import RHO_QUEUE_CLIP, ConfigEvaluation, ModelEvaluator

__all__ = [
    "GridEvaluation",
    "evaluate_columns",
    "evaluate_grid_columns",
    "evaluate_metric_planes",
    "grid_knob_columns",
    "queue_composition_columns",
]

#: Near-one tolerance of the M/M/1/K blocking formula's removable
#: singularity, matching ``math.isclose(rho, 1.0, rel_tol=1e-12,
#: abs_tol=1e-12)`` in :func:`repro.queueing.mm1k_blocking_probability`.
_MM1K_UNITY_TOL = 1e-12

#: Knob columns of a :class:`GridEvaluation`, in :class:`StackConfig`
#: field order (integer-valued knobs are stored as int64 columns).
KNOB_COLUMNS = (
    "ptx_level",
    "payload_bytes",
    "n_max_tries",
    "d_retry_ms",
    "q_max",
    "t_pkt_ms",
)

#: Metric columns of a :class:`GridEvaluation` (all float64).
METRIC_COLUMNS = (
    "snr_db",
    "per",
    "n_tries",
    "t_service_ms",
    "max_goodput_kbps",
    "u_eng_uj_per_bit",
    "delay_ms",
    "rho",
    "plr_radio",
    "plr_queue",
    "plr_total",
)


@dataclass(frozen=True)
class GridEvaluation:
    """Columnar model predictions for a batch of configurations on one link.

    A struct-of-arrays mirror of a list of :class:`ConfigEvaluation`:
    every field is a 1-D array aligned by configuration index. The three
    diagnostic columns ``per`` (Eq. 3, the service path's per-attempt
    failure), ``n_tries`` (finite-budget E[N] of the Eq. 7 family) and
    ``t_service_ms`` (Eqs. 5–6) are exposed here even though the scalar
    row type folds them into its derived metrics.

    Columns are marked read-only so cached tables cannot be corrupted by
    callers; materialize rows (:meth:`row`, :meth:`rows`) to mutate copies.
    """

    distance_m: float
    ptx_level: np.ndarray
    payload_bytes: np.ndarray
    n_max_tries: np.ndarray
    d_retry_ms: np.ndarray
    q_max: np.ndarray
    t_pkt_ms: np.ndarray
    snr_db: np.ndarray
    per: np.ndarray
    n_tries: np.ndarray
    t_service_ms: np.ndarray
    max_goodput_kbps: np.ndarray
    u_eng_uj_per_bit: np.ndarray
    delay_ms: np.ndarray
    rho: np.ndarray
    plr_radio: np.ndarray
    plr_queue: np.ndarray
    plr_total: np.ndarray

    def __post_init__(self) -> None:
        length = self.ptx_level.shape[0]
        for spec in fields(self):
            if spec.name == "distance_m":
                continue
            column = getattr(self, spec.name)
            if column.ndim != 1 or column.shape[0] != length:
                raise OptimizationError(
                    f"column {spec.name!r} must be 1-D of length {length}, "
                    f"got shape {column.shape}"
                )
            column.flags.writeable = False

    def __len__(self) -> int:
        return int(self.ptx_level.shape[0])

    def objective_column(self, name: str) -> np.ndarray:
        """One objective as a minimization-form column (goodput negated).

        Accepts the same names as :meth:`ConfigEvaluation.objective`:
        ``energy``, ``goodput``, ``delay``, ``loss``, ``loss_radio``,
        ``rho``.
        """
        table = {
            "energy": self.u_eng_uj_per_bit,
            "goodput": -self.max_goodput_kbps,
            "delay": self.delay_ms,
            "loss": self.plr_total,
            "loss_radio": self.plr_radio,
            "rho": self.rho,
        }
        try:
            return table[name]
        except KeyError:
            raise OptimizationError(
                f"unknown objective {name!r}; valid: {sorted(table)}"
            ) from None

    def objective_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Shape ``(len(self), len(names))`` matrix of objective columns."""
        if not names:
            raise OptimizationError("need at least one objective name")
        return np.stack([self.objective_column(name) for name in names], axis=1)

    def best_index(
        self, objective: str, feasible: Optional[np.ndarray] = None
    ) -> int:
        """Index minimizing an objective; ties break to the lowest index.

        ``feasible`` optionally restricts the argmin to a boolean mask.
        Raises when the evaluation (or the feasible subset) is empty.
        """
        column = self.objective_column(objective)
        if feasible is None:
            if len(self) == 0:
                raise OptimizationError("no evaluations to choose from")
            return int(np.argmin(column))
        indices = np.flatnonzero(feasible)
        if indices.size == 0:
            raise OptimizationError("no feasible evaluations to choose from")
        # argmin over the compacted subset keeps the lowest-index tie-break
        # even when every feasible value is +inf.
        return int(indices[np.argmin(column[indices])])

    def config_at(self, index: int) -> StackConfig:
        """Materialize the knobs of one row as a :class:`StackConfig`."""
        return StackConfig(
            distance_m=self.distance_m,
            ptx_level=int(self.ptx_level[index]),
            payload_bytes=int(self.payload_bytes[index]),
            n_max_tries=int(self.n_max_tries[index]),
            d_retry_ms=float(self.d_retry_ms[index]),
            q_max=int(self.q_max[index]),
            t_pkt_ms=float(self.t_pkt_ms[index]),
        )

    def row(self, index: int) -> ConfigEvaluation:
        """Materialize one configuration row as a :class:`ConfigEvaluation`."""
        return ConfigEvaluation(
            config=self.config_at(index),
            snr_db=float(self.snr_db[index]),
            max_goodput_kbps=float(self.max_goodput_kbps[index]),
            u_eng_uj_per_bit=float(self.u_eng_uj_per_bit[index]),
            delay_ms=float(self.delay_ms[index]),
            rho=float(self.rho[index]),
            plr_radio=float(self.plr_radio[index]),
            plr_queue=float(self.plr_queue[index]),
            plr_total=float(self.plr_total[index]),
        )

    def rows(self) -> List[ConfigEvaluation]:
        """Materialize every row (the scalar-compatibility view).

        Built from ``.tolist()`` columns so the per-row cost is plain
        Python object construction, not numpy scalar boxing.
        """
        distance = self.distance_m
        return [
            ConfigEvaluation(
                config=StackConfig(
                    distance_m=distance,
                    ptx_level=ptx,
                    payload_bytes=payload,
                    n_max_tries=tries,
                    d_retry_ms=retry,
                    q_max=qmax,
                    t_pkt_ms=tpkt,
                ),
                snr_db=snr,
                max_goodput_kbps=goodput,
                u_eng_uj_per_bit=energy,
                delay_ms=delay,
                rho=rho,
                plr_radio=radio,
                plr_queue=queue,
                plr_total=total,
            )
            for (
                ptx, payload, tries, retry, qmax, tpkt,
                snr, goodput, energy, delay, rho, radio, queue, total,
            ) in zip(
                self.ptx_level.tolist(),
                self.payload_bytes.tolist(),
                self.n_max_tries.tolist(),
                self.d_retry_ms.tolist(),
                self.q_max.tolist(),
                self.t_pkt_ms.tolist(),
                self.snr_db.tolist(),
                self.max_goodput_kbps.tolist(),
                self.u_eng_uj_per_bit.tolist(),
                self.delay_ms.tolist(),
                self.rho.tolist(),
                self.plr_radio.tolist(),
                self.plr_queue.tolist(),
                self.plr_total.tolist(),
            )
        ]

    def as_dict(self) -> Dict[str, object]:
        """Summary view (lengths and column names), JSON-ready."""
        return {
            "distance_m": self.distance_m,
            "configurations": len(self),
            "knob_columns": list(KNOB_COLUMNS),
            "metric_columns": list(METRIC_COLUMNS),
        }


def _level_lookups(
    snr_by_level: Mapping[int, float], levels: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-config (SNR, E_tx) columns from the evaluator's level map."""
    unique_levels = [int(level) for level in np.unique(levels).tolist()]
    unknown = [
        level for level in unique_levels if level not in snr_by_level
    ]
    if unknown:
        raise OptimizationError(f"no SNR known for P_tx level {unknown[0]}")
    size = max(unique_levels) + 1
    snr_lut = np.zeros(size, dtype=float)
    e_tx_lut = np.zeros(size, dtype=float)
    snr_lut[unique_levels] = [
        float(snr_by_level[level]) for level in unique_levels
    ]
    e_tx_lut[unique_levels] = [
        cc2420.tx_energy_per_bit_j(level) for level in unique_levels
    ]
    return snr_lut[levels], e_tx_lut[levels]


def _exp_fit_column(
    coefficients, payload: np.ndarray, snr_db: np.ndarray
) -> np.ndarray:
    """Clipped ``α · l_D · exp(β · SNR)`` column (Eq. 3 / Eq. 8 base)."""
    return np.clip(
        coefficients.alpha * payload * np.exp(coefficients.beta * snr_db),
        0.0,
        1.0,
    )


def _expected_tries_column(per: np.ndarray, tries: np.ndarray) -> np.ndarray:
    """Truncated-geometric E[N] column: ``(1 − per^N) / (1 − per)``."""
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(
            per >= 1.0,
            tries,
            (1.0 - per**tries) / np.where(per >= 1.0, 1.0, 1.0 - per),
        )


def _mean_service_column(
    per: np.ndarray,
    tries: np.ndarray,
    t_spi_s: np.ndarray,
    core_attempt_s: np.ndarray,
    ack_time_s: np.ndarray,
    wait_time_s: np.ndarray,
    d_retry_s: np.ndarray,
) -> np.ndarray:
    """Eqs. 5–6 exact expectation column (mirrors ``mean_service_time_s``)."""
    expected_n = _expected_tries_column(per, tries)
    p_succ = 1.0 - per**tries
    return (
        t_spi_s
        + expected_n * core_attempt_s
        + (expected_n - 1.0) * d_retry_s
        + p_succ * ack_time_s
        + (expected_n - p_succ) * wait_time_s
    )


def _mm1k_blocking_column(rho: np.ndarray, capacity: np.ndarray) -> np.ndarray:
    """M/M/1/K blocking column with the exact ρ = 1 limit ``1 / (K + 1)``."""
    near_one = np.abs(rho - 1.0) <= np.maximum(
        _MM1K_UNITY_TOL * np.maximum(rho, 1.0), _MM1K_UNITY_TOL
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        blocked = (1.0 - rho) * rho**capacity / (1.0 - rho ** (capacity + 1.0))
    return np.where(near_one, 1.0 / (capacity + 1.0), blocked)


def _validate_knobs(
    payload: np.ndarray,
    tries: np.ndarray,
    d_retry_ms: np.ndarray,
    q_max: np.ndarray,
    t_pkt_ms: np.ndarray,
) -> None:
    """Vectorized mirror of the :class:`StackConfig` range checks."""
    from ...config import MAX_PAYLOAD_BYTES

    if payload.size == 0:
        return
    if np.any((payload < 1) | (payload > MAX_PAYLOAD_BYTES)):
        raise ConfigurationError(
            f"payload_bytes must be in [1, {MAX_PAYLOAD_BYTES}]"
        )
    if np.any(tries < 1):
        raise ConfigurationError("n_max_tries must be >= 1")
    if np.any(d_retry_ms < 0):
        raise ConfigurationError("d_retry_ms must be >= 0")
    if np.any(q_max < 1):
        raise ConfigurationError("q_max must be >= 1")
    if np.any(t_pkt_ms <= 0):
        raise ConfigurationError("t_pkt_ms must be positive")


def _metric_table(
    evaluator: ModelEvaluator,
    payload: np.ndarray,
    tries: np.ndarray,
    retry_ms: np.ndarray,
    qmax: np.ndarray,
    tpkt_ms: np.ndarray,
    snr: np.ndarray,
    e_tx: np.ndarray,
) -> Dict[str, np.ndarray]:
    """The shared metric math over pre-broadcast float arrays.

    Shape-agnostic core of the kernels: every input is a float array (or
    scalar) and the outputs have the common broadcast shape, so the same
    code serves the 1-D columnar grid evaluation and the 2-D
    (link × configuration) fleet planes. Operation order mirrors the
    scalar models exactly — do not "simplify" the arithmetic here.
    """
    # Per-attempt timing terms (affine in payload; Sec. V-B). The ACK and
    # wait terms are reconstructed exactly as the scalar AttemptTimes
    # subtraction (t_succ − core) computes them, rounding included.
    frame_bytes = payload + float(DATA_FRAME_OVERHEAD_BYTES)
    t_spi_s = frame_bytes * SPI_SECONDS_PER_BYTE
    t_frame_s = frame_bytes * 8.0 / cc2420.DATA_RATE_BPS
    core_attempt_s = mac_delay_s() + t_frame_s
    ack_time_s = (core_attempt_s + ACK_TIME_S) - core_attempt_s
    wait_time_s = (core_attempt_s + ACK_WAIT_TIMEOUT_S) - core_attempt_s
    d_retry_s = retry_ms / 1e3

    # --- maxGoodput (Eq. 4) on the goodput model's own sub-models.
    goodput_service = evaluator.goodput_model.service_model
    per_goodput = _exp_fit_column(
        goodput_service.per_model.coefficients, payload, snr
    )
    service_goodput_s = _mean_service_column(
        per_goodput, tries, t_spi_s, core_attempt_s,
        ack_time_s, wait_time_s, d_retry_s,
    )
    plr_goodput = (
        _exp_fit_column(
            evaluator.goodput_model.plr_model.coefficients, payload, snr
        )
        ** tries
    )
    goodput_bps = payload * 8.0 / service_goodput_s * (1.0 - plr_goodput)

    # --- U_eng (Eq. 2, finite-retry form) on the energy model.
    per_energy = _exp_fit_column(
        evaluator.energy_model.per_model.coefficients, payload, snr
    )
    expected_n_energy = _expected_tries_column(per_energy, tries)
    p_succ_energy = 1.0 - per_energy**tries
    overhead = float(evaluator.energy_model.overhead_bytes)
    with np.errstate(invalid="ignore", divide="ignore"):
        u_eng_j = np.where(
            per_energy >= 1.0,
            np.inf,
            e_tx
            * (overhead + payload)
            * expected_n_energy
            / (payload * p_succ_energy),
        )

    # --- Delay (Sec. VI) on the delay model's service sub-model.
    delay_service = evaluator.delay_model.service_model
    per_delay = _exp_fit_column(
        delay_service.per_model.coefficients, payload, snr
    )
    service_delay_s = _mean_service_column(
        per_delay, tries, t_spi_s, core_attempt_s,
        ack_time_s, wait_time_s, d_retry_s,
    )
    expected_n_delay = _expected_tries_column(per_delay, tries)

    # --- Losses: PLR_radio (Eq. 8), then the t_pkt-dependent queueing
    # composition (rho, wait, blocking, series total) via the shared
    # helper, so relay-congestion re-evaluations at a different packet
    # period reproduce these columns bit for bit.
    plr_radio = (
        _exp_fit_column(evaluator.plr_model.coefficients, payload, snr)
        ** tries
    )
    queue = queue_composition_columns(
        service_delay_s=service_delay_s,
        service_scv=evaluator.delay_model.service_scv,
        q_max=qmax,
        t_pkt_ms=tpkt_ms,
        plr_radio=plr_radio,
    )

    return {
        "snr_db": snr,
        "per": per_delay,
        "n_tries": expected_n_delay,
        "t_service_ms": service_delay_s * 1e3,
        "max_goodput_kbps": goodput_bps / 1e3,
        "u_eng_uj_per_bit": u_eng_j * 1e6,
        "delay_ms": queue["delay_ms"],
        "rho": queue["rho"],
        "plr_radio": plr_radio,
        "plr_queue": queue["plr_queue"],
        "plr_total": queue["plr_total"],
    }


def queue_composition_columns(
    *,
    service_delay_s: np.ndarray,
    service_scv: float,
    q_max: np.ndarray,
    t_pkt_ms: np.ndarray,
    plr_radio: np.ndarray,
) -> Dict[str, np.ndarray]:
    """The t_pkt-dependent queueing metrics from their t_pkt-free parts.

    Everything downstream of the packet inter-arrival time in the Table
    III composition: utilization ``rho = service / t_pkt``, the bounded
    G/G/1-style waiting time, M/M/1/K blocking, and the series loss
    total. Split out of :func:`_metric_table` (which calls it, so grid
    and plane evaluations are unchanged bit for bit) because relay
    congestion re-evaluates exactly these columns at an *effective*
    packet period — the per-hop service time and radio loss do not
    depend on the arrival rate and are reused as-is.
    """
    service_s = np.asarray(service_delay_s, dtype=float)
    qmax = np.asarray(q_max, dtype=float)
    tpkt_ms = np.asarray(t_pkt_ms, dtype=float)
    radio = np.asarray(plr_radio, dtype=float)
    rho = service_s / (tpkt_ms / 1e3)
    full_queue_wait_s = qmax * service_s
    scv = service_scv
    with np.errstate(invalid="ignore", divide="ignore"):
        stable_wait_s = rho * (1.0 + scv) / (2.0 * (1.0 - rho)) * service_s
    wait_s = np.where(
        rho < 1.0,
        np.minimum(stable_wait_s, full_queue_wait_s),
        full_queue_wait_s,
    )
    rho_clipped = np.minimum(rho, RHO_QUEUE_CLIP)
    plr_queue = _mm1k_blocking_column(rho_clipped, qmax + 1.0)
    plr_total = plr_queue + (1.0 - plr_queue) * radio
    return {
        "rho": rho,
        "delay_ms": (service_s + wait_s) * 1e3,
        "plr_queue": plr_queue,
        "plr_total": plr_total,
    }


def evaluate_columns(
    evaluator: ModelEvaluator,
    *,
    ptx_level,
    payload_bytes,
    n_max_tries,
    d_retry_ms,
    q_max,
    t_pkt_ms,
    distance_m: float = 10.0,
) -> GridEvaluation:
    """Vectorized :meth:`ModelEvaluator.evaluate` over knob columns.

    Inputs broadcast against each other (scalars are fine for constant
    knobs) into aligned 1-D columns; the result holds one value per
    broadcast element. The computation reads the evaluator's actual
    sub-model coefficients, so re-fitted models vectorize identically to
    their scalar counterparts.
    """
    columns = np.broadcast_arrays(
        np.atleast_1d(np.asarray(ptx_level, dtype=np.int64)),
        np.atleast_1d(np.asarray(payload_bytes, dtype=np.int64)),
        np.atleast_1d(np.asarray(n_max_tries, dtype=np.int64)),
        np.atleast_1d(np.asarray(d_retry_ms, dtype=float)),
        np.atleast_1d(np.asarray(q_max, dtype=np.int64)),
        np.atleast_1d(np.asarray(t_pkt_ms, dtype=float)),
    )
    ptx, payload_i, tries_i, retry_ms, qmax_i, tpkt_ms = (
        np.ascontiguousarray(column).reshape(-1) for column in columns
    )
    _validate_knobs(payload_i, tries_i, retry_ms, qmax_i, tpkt_ms)

    payload = payload_i.astype(float)
    tries = tries_i.astype(float)
    qmax = qmax_i.astype(float)
    snr, e_tx = _level_lookups(evaluator.snr_by_level, ptx)
    metrics = _metric_table(
        evaluator, payload, tries, retry_ms, qmax, tpkt_ms, snr, e_tx
    )

    return GridEvaluation(
        distance_m=float(distance_m),
        ptx_level=ptx,
        payload_bytes=payload_i,
        n_max_tries=tries_i,
        d_retry_ms=retry_ms,
        q_max=qmax_i,
        t_pkt_ms=tpkt_ms,
        **metrics,
    )


def evaluate_metric_planes(
    evaluator: ModelEvaluator,
    *,
    ptx_level,
    payload_bytes,
    n_max_tries,
    d_retry_ms,
    q_max,
    t_pkt_ms,
    snr_db,
) -> Dict[str, np.ndarray]:
    """Table III metric arrays for knob columns × explicit SNR values.

    The multi-link entry point into the kernels: unlike
    :func:`evaluate_columns`, the SNR is *given* per element rather than
    looked up from the evaluator's level map, and every input may carry
    any mutually broadcastable shape. The fleet engine passes 1-D knob
    columns of length C and an ``(L, C)`` SNR plane to evaluate a whole
    deployment in one broadcast pass; each output array then has shape
    ``(L, C)``. Arithmetic is byte-for-byte the columnar grid kernel's
    (:func:`_metric_table`), so a single row of a plane equals the
    matching :class:`GridEvaluation` columns exactly.
    """
    ptx = np.asarray(ptx_level, dtype=np.int64)
    payload_i = np.asarray(payload_bytes, dtype=np.int64)
    tries_i = np.asarray(n_max_tries, dtype=np.int64)
    retry_ms = np.asarray(d_retry_ms, dtype=float)
    qmax_i = np.asarray(q_max, dtype=np.int64)
    tpkt_ms = np.asarray(t_pkt_ms, dtype=float)
    snr = np.asarray(snr_db, dtype=float)
    _validate_knobs(
        payload_i.reshape(-1),
        tries_i.reshape(-1),
        retry_ms.reshape(-1),
        qmax_i.reshape(-1),
        tpkt_ms.reshape(-1),
    )
    try:
        np.broadcast_shapes(
            ptx.shape, payload_i.shape, tries_i.shape, retry_ms.shape,
            qmax_i.shape, tpkt_ms.shape, snr.shape,
        )
    except ValueError as exc:
        raise OptimizationError(
            f"metric-plane inputs do not broadcast: {exc}"
        ) from exc
    unique_levels = [int(level) for level in np.unique(ptx).tolist()]
    unknown = [
        level for level in unique_levels if level not in cc2420.PA_TABLE
    ]
    if unknown:
        raise OptimizationError(
            f"unknown CC2420 PA_LEVEL {unknown[0]} in ptx_level column"
        )
    e_tx_lut = np.zeros(max(unique_levels) + 1, dtype=float)
    e_tx_lut[unique_levels] = [
        cc2420.tx_energy_per_bit_j(level) for level in unique_levels
    ]
    return _metric_table(
        evaluator,
        payload_i.astype(float),
        tries_i.astype(float),
        retry_ms,
        qmax_i.astype(float),
        tpkt_ms,
        snr,
        e_tx_lut[ptx],
    )


def grid_knob_columns(grid=None):
    """The grid's knob columns in canonical configuration order.

    Returns the six 1-D knob columns ``(ptx_level, payload_bytes,
    n_max_tries, d_retry_ms, q_max, t_pkt_ms)`` in the exact row-major
    cartesian-product order that ``grid.configs(distance_m)`` and
    :func:`evaluate_grid_columns` enumerate (power varying slowest), so a
    configuration *index* is interchangeable between the grid, a
    :class:`GridEvaluation`, a :class:`~repro.serve.oracle.SweepTable`,
    and the fleet engine's metric planes.
    """
    if grid is None:
        # Imported lazily: grid.py wraps this module for its scalar shim.
        from .grid import TuningGrid

        grid = TuningGrid()
    if len(grid) == 0:
        raise OptimizationError("the tuning grid is empty")
    mesh = np.meshgrid(
        np.asarray(grid.ptx_levels, dtype=np.int64),
        np.asarray(grid.payload_values_bytes, dtype=np.int64),
        np.asarray(grid.n_max_tries_values, dtype=np.int64),
        np.asarray(grid.d_retry_values_ms, dtype=float),
        np.asarray(grid.q_max_values, dtype=np.int64),
        np.asarray(grid.t_pkt_values_ms, dtype=float),
        indexing="ij",
    )
    return tuple(m.reshape(-1) for m in mesh)


def evaluate_grid_columns(
    evaluator: ModelEvaluator,
    grid=None,
    distance_m: float = 10.0,
) -> GridEvaluation:
    """Evaluate a whole :class:`TuningGrid` as one columnar kernel pass.

    Column order matches ``grid.configs(distance_m)`` exactly (row-major
    cartesian product, power varying slowest), so index ``i`` here is the
    ``i``-th configuration the scalar loop would have produced.
    """
    ptx, payload, tries, retry, qmax, tpkt = grid_knob_columns(grid)
    return evaluate_columns(
        evaluator,
        ptx_level=ptx,
        payload_bytes=payload,
        n_max_tries=tries,
        d_retry_ms=retry,
        q_max=qmax,
        t_pkt_ms=tpkt,
        distance_m=distance_m,
    )
