"""Model-driven evaluation of stack configurations.

The optimizer needs, for any candidate :class:`~repro.config.StackConfig`,
the four paper metrics *predicted by the empirical models* (Table III):
energy per bit E, maximum goodput G, delay D and loss L. The glue is the
link's SNR map — which SNR each power level yields — supplied either from
the channel model (:func:`snr_map_from_environment`) or from an assumption
(:func:`snr_map_from_reference`, used for the paper's Table IV case study
where SNR at P_tx = 31 is stated to be 6 dB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ...channel.environment import Environment
from ...config import StackConfig
from ...errors import OptimizationError
from ...radio import cc2420
from ..delay_model import DelayModel
from ..energy_model import EnergyModel
from ..goodput_model import GoodputModel
from ..plr_model import PlrRadioModel, plr_queue_estimate, plr_total_estimate

__all__ = [
    "RHO_QUEUE_CLIP",
    "snr_map_from_environment",
    "snr_map_from_reference",
    "ConfigEvaluation",
    "ModelEvaluator",
]

#: Utilization ceiling fed into the M/M/1/K queue-loss estimate. Beyond
#: this the blocking probability is saturated anyway and the power terms
#: ``rho**k`` overflow for large queues; both the scalar path and the
#: columnar kernels clip at the same value so they agree exactly.
RHO_QUEUE_CLIP = 5.0


def snr_map_from_environment(
    environment: Environment, distance_m: float
) -> Dict[int, float]:
    """Level → long-run mean SNR from the channel model."""
    noise = environment.noise.mean_dbm
    return {
        level: environment.pathloss.mean_rssi_dbm(
            cc2420.output_power_dbm(level), distance_m
        )
        - noise
        for level in cc2420.PA_LEVELS
    }


def snr_map_from_reference(
    snr_at_level_db: float, reference_level: int = 31
) -> Dict[int, float]:
    """Level → SNR assuming SNR tracks output power dB-for-dB.

    This is how the paper's case study specifies its link: "the current SNR
    increases to 6 dB after the output power level increases ... to 31".
    """
    ref_dbm = cc2420.output_power_dbm(reference_level)
    return {
        level: snr_at_level_db + (cc2420.output_power_dbm(level) - ref_dbm)
        for level in cc2420.PA_LEVELS
    }


@dataclass(frozen=True)
class ConfigEvaluation:
    """Model-predicted performance of one configuration on one link."""

    config: StackConfig
    snr_db: float
    max_goodput_kbps: float
    u_eng_uj_per_bit: float
    delay_ms: float
    rho: float
    plr_radio: float
    plr_queue: float
    plr_total: float

    def objective(self, name: str) -> float:
        """Look up a metric by its optimization name.

        Names: ``energy`` (µJ/bit, minimize), ``goodput`` (kbps, maximize —
        returned negated so every objective minimizes), ``delay`` (ms,
        minimize), ``loss`` (total PLR, minimize), ``loss_radio``, ``rho``.
        """
        table = {
            "energy": self.u_eng_uj_per_bit,
            "goodput": -self.max_goodput_kbps,
            "delay": self.delay_ms,
            "loss": self.plr_total,
            "loss_radio": self.plr_radio,
            "rho": self.rho,
        }
        try:
            return table[name]
        except KeyError:
            raise OptimizationError(
                f"unknown objective {name!r}; valid: {sorted(table)}"
            ) from None


@dataclass(frozen=True)
class ModelEvaluator:
    """Evaluates configurations against a link's SNR map using the models."""

    snr_by_level: Mapping[int, float]
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    goodput_model: GoodputModel = field(default_factory=GoodputModel)
    delay_model: DelayModel = field(default_factory=DelayModel)
    plr_model: PlrRadioModel = field(default_factory=PlrRadioModel)

    def __post_init__(self) -> None:
        if not self.snr_by_level:
            raise OptimizationError("snr_by_level must not be empty")

    def snr_for(self, config: StackConfig) -> float:
        """SNR the link yields at this configuration's power level."""
        try:
            return float(self.snr_by_level[config.ptx_level])
        except KeyError:
            raise OptimizationError(
                f"no SNR known for P_tx level {config.ptx_level}"
            ) from None

    def evaluate(self, config: StackConfig) -> ConfigEvaluation:
        """All four model metrics for one configuration."""
        snr = self.snr_for(config)
        goodput = self.goodput_model.max_goodput_bps(
            config.payload_bytes, snr, config.n_max_tries, config.d_retry_ms
        )
        u_eng = self.energy_model.u_eng_finite_retries_j_per_bit(
            config.ptx_level, config.payload_bytes, snr, config.n_max_tries
        )
        delay = self.delay_model.estimate(config, snr)
        plr_radio = float(
            self.plr_model.plr_radio(config.payload_bytes, snr, config.n_max_tries)
        )
        plr_queue = plr_queue_estimate(
            min(delay.rho, RHO_QUEUE_CLIP), config.q_max
        )
        return ConfigEvaluation(
            config=config,
            snr_db=snr,
            max_goodput_kbps=float(goodput) / 1e3,
            u_eng_uj_per_bit=float(u_eng) * 1e6,
            delay_ms=delay.total_delay_s * 1e3,
            rho=delay.rho,
            plr_radio=plr_radio,
            plr_queue=plr_queue,
            plr_total=plr_total_estimate(plr_radio, plr_queue),
        )
