"""Weighted-sum scalarization — an alternative MOP solver (Sec. VIII-B).

The paper notes that "many MOP solving techniques can be applied" to its
joint-tuning problem and uses epsilon-constraint as its example. The
weighted-sum method is the other classical choice: minimize
``Σ w_i · normalized(M_i)``. It is simpler to drive (no budgets to pick) but
can only reach *convex* parts of the Pareto front — a limitation the tests
document by comparing against the epsilon-constraint front.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

import numpy as np

from ...errors import OptimizationError
from .evaluate import ConfigEvaluation
from .pareto import pareto_front

__all__ = [
    "solve_weighted_sum",
    "sweep_weights",
    "weighted_points_on_pareto_front",
]


def _normalize(values: np.ndarray) -> np.ndarray:
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise OptimizationError("objective has no finite values to normalize")
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    if span == 0:
        return np.zeros_like(values)
    out = (values - lo) / span
    out[~np.isfinite(values)] = np.inf
    return out


def solve_weighted_sum(
    evaluations: Sequence[ConfigEvaluation],
    weights: Mapping[str, float],
) -> ConfigEvaluation:
    """Minimize a weighted sum of normalized (minimization-form) objectives.

    ``weights`` maps objective names (see ``ConfigEvaluation.objective``) to
    non-negative weights; at least one must be positive. Each objective is
    min-max normalized over the evaluation set before weighting, so weights
    express *relative priority*, not unit conversions.
    """
    if not evaluations:
        raise OptimizationError("no evaluations to optimize over")
    if not weights:
        raise OptimizationError("need at least one objective weight")
    names = sorted(weights)
    w = np.array([float(weights[name]) for name in names])
    if np.any(w < 0):
        raise OptimizationError("weights must be non-negative")
    if not np.any(w > 0):
        raise OptimizationError("at least one weight must be positive")
    columns = []
    for name in names:
        raw = np.array([e.objective(name) for e in evaluations], dtype=float)
        columns.append(_normalize(raw))
    scores = np.zeros(len(evaluations))
    for weight, column in zip(w.tolist(), columns):
        if weight == 0.0:
            # Skip rather than multiply: 0 × inf (an infeasible value in an
            # unweighted objective) would poison the score with NaN.
            continue
        scores = scores + weight * column
    best = int(np.argmin(scores))
    return evaluations[best]


def sweep_weights(
    evaluations: Sequence[ConfigEvaluation],
    objective_a: str,
    objective_b: str,
    n_points: int = 11,
) -> List[ConfigEvaluation]:
    """Trace a 2-objective trade-off by sweeping the weight ratio.

    Consecutive duplicates are collapsed. Because weighted sums only reach
    convex front regions, this curve is a subset of the epsilon-constraint
    front — the classic textbook comparison, pinned by the tests.
    """
    if n_points < 2:
        raise OptimizationError(f"need at least 2 sweep points, got {n_points!r}")
    front: List[ConfigEvaluation] = []
    for lam in np.linspace(0.0, 1.0, n_points).tolist():
        best = solve_weighted_sum(
            evaluations, {objective_a: 1.0 - lam, objective_b: lam}
        )
        if not front or front[-1].config != best.config:
            front.append(best)
    return front


def weighted_points_on_pareto_front(
    evaluations: Sequence[ConfigEvaluation],
    objective_a: str,
    objective_b: str,
    n_points: int = 11,
) -> bool:
    """Whether every weighted-sum solution is Pareto-optimal (it must be)."""
    objectives = lambda e: (e.objective(objective_a), e.objective(objective_b))
    front_configs = {e.config for e in pareto_front(evaluations, objectives)}
    swept = sweep_weights(evaluations, objective_a, objective_b, n_points)
    return all(point.config in front_configs for point in swept)
