"""Exhaustive model-based search over a configuration grid.

The paper's optimization story (Sec. VIII-B) is: the empirical models are
cheap, so the full discrete configuration space can simply be evaluated and
the multi-objective problem solved on top of the resulting table. This
module produces that table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ...config import StackConfig, VALID_PTX_LEVELS
from ...errors import OptimizationError
from .evaluate import ConfigEvaluation, ModelEvaluator

__all__ = [
    "TuningGrid",
    "evaluate_grid",
    "evaluate_grid_scalar",
    "best_by",
]


@dataclass(frozen=True)
class TuningGrid:
    """The candidate values for the tunable (non-PHY-fixed) parameters.

    The link's distance is not a tuning knob (it is where the nodes are),
    so grids span power, payload, retries, retry delay, queue and period.
    Payloads default to a dense 1..114 scan quantized to every 2 bytes.
    """

    ptx_levels: Tuple[int, ...] = VALID_PTX_LEVELS
    payload_values_bytes: Tuple[int, ...] = tuple(range(2, 115, 2))
    n_max_tries_values: Tuple[int, ...] = (1, 2, 3, 5, 8)
    d_retry_values_ms: Tuple[float, ...] = (0.0,)
    q_max_values: Tuple[int, ...] = (1, 30)
    t_pkt_values_ms: Tuple[float, ...] = (30.0,)

    def __len__(self) -> int:
        return (
            len(self.ptx_levels)
            * len(self.payload_values_bytes)
            * len(self.n_max_tries_values)
            * len(self.d_retry_values_ms)
            * len(self.q_max_values)
            * len(self.t_pkt_values_ms)
        )

    def configs(self, distance_m: float = 10.0) -> Iterable[StackConfig]:
        """Generate every configuration in the grid."""
        for ptx, payload, tries, retry, qmax, tpkt in itertools.product(
            self.ptx_levels,
            self.payload_values_bytes,
            self.n_max_tries_values,
            self.d_retry_values_ms,
            self.q_max_values,
            self.t_pkt_values_ms,
        ):
            yield StackConfig(
                distance_m=distance_m,
                ptx_level=ptx,
                payload_bytes=payload,
                n_max_tries=tries,
                d_retry_ms=retry,
                q_max=qmax,
                t_pkt_ms=tpkt,
            )


def evaluate_grid(
    evaluator: ModelEvaluator,
    grid: Optional[TuningGrid] = None,
    distance_m: float = 10.0,
) -> List[ConfigEvaluation]:
    """Evaluate every grid configuration with the empirical models.

    Compatibility shim over the columnar kernels: the metrics are computed
    in one vectorized pass (:func:`~repro.core.optimization.kernels.
    evaluate_grid_columns`) and materialized as scalar
    :class:`ConfigEvaluation` rows in grid order. Callers that can work
    column-wise should use the kernels directly and skip materialization.
    """
    from .kernels import evaluate_grid_columns

    # `grid or TuningGrid()` would swap an *empty* grid (len 0, falsy) for
    # the default one instead of rejecting it.
    grid = grid if grid is not None else TuningGrid()
    if len(grid) == 0:
        raise OptimizationError("the tuning grid is empty")
    return evaluate_grid_columns(evaluator, grid, distance_m).rows()


def evaluate_grid_scalar(
    evaluator: ModelEvaluator,
    grid: Optional[TuningGrid] = None,
    distance_m: float = 10.0,
) -> List[ConfigEvaluation]:
    """The readable reference path: one scalar model call per configuration.

    Semantically identical to :func:`evaluate_grid`; kept as the ground
    truth the kernels are pinned against (and as the benchmark baseline).
    """
    grid = grid if grid is not None else TuningGrid()
    if len(grid) == 0:
        raise OptimizationError("the tuning grid is empty")
    return [evaluator.evaluate(cfg) for cfg in grid.configs(distance_m)]


def best_by(evaluations, objective: str) -> ConfigEvaluation:
    """The single evaluation minimizing the named objective.

    Ties break deterministically to the lowest grid index, for scalar rows
    and :class:`~repro.core.optimization.kernels.GridEvaluation` columns
    alike, so the scalar and vectorized argmin always agree.
    """
    from .kernels import GridEvaluation

    if isinstance(evaluations, GridEvaluation):
        return evaluations.row(evaluations.best_index(objective))
    if not evaluations:
        raise OptimizationError("no evaluations to choose from")
    index = min(
        range(len(evaluations)),
        key=lambda i: evaluations[i].objective(objective),
    )
    return evaluations[index]
