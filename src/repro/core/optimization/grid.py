"""Exhaustive model-based search over a configuration grid.

The paper's optimization story (Sec. VIII-B) is: the empirical models are
cheap, so the full discrete configuration space can simply be evaluated and
the multi-objective problem solved on top of the resulting table. This
module produces that table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ...config import StackConfig, VALID_PTX_LEVELS
from ...errors import OptimizationError
from .evaluate import ConfigEvaluation, ModelEvaluator

__all__ = [
    "TuningGrid",
    "evaluate_grid",
    "best_by",
]


@dataclass(frozen=True)
class TuningGrid:
    """The candidate values for the tunable (non-PHY-fixed) parameters.

    The link's distance is not a tuning knob (it is where the nodes are),
    so grids span power, payload, retries, retry delay, queue and period.
    Payloads default to a dense 1..114 scan quantized to every 2 bytes.
    """

    ptx_levels: Tuple[int, ...] = VALID_PTX_LEVELS
    payload_values_bytes: Tuple[int, ...] = tuple(range(2, 115, 2))
    n_max_tries_values: Tuple[int, ...] = (1, 2, 3, 5, 8)
    d_retry_values_ms: Tuple[float, ...] = (0.0,)
    q_max_values: Tuple[int, ...] = (1, 30)
    t_pkt_values_ms: Tuple[float, ...] = (30.0,)

    def __len__(self) -> int:
        return (
            len(self.ptx_levels)
            * len(self.payload_values_bytes)
            * len(self.n_max_tries_values)
            * len(self.d_retry_values_ms)
            * len(self.q_max_values)
            * len(self.t_pkt_values_ms)
        )

    def configs(self, distance_m: float = 10.0) -> Iterable[StackConfig]:
        """Generate every configuration in the grid."""
        for ptx, payload, tries, retry, qmax, tpkt in itertools.product(
            self.ptx_levels,
            self.payload_values_bytes,
            self.n_max_tries_values,
            self.d_retry_values_ms,
            self.q_max_values,
            self.t_pkt_values_ms,
        ):
            yield StackConfig(
                distance_m=distance_m,
                ptx_level=ptx,
                payload_bytes=payload,
                n_max_tries=tries,
                d_retry_ms=retry,
                q_max=qmax,
                t_pkt_ms=tpkt,
            )


def evaluate_grid(
    evaluator: ModelEvaluator,
    grid: Optional[TuningGrid] = None,
    distance_m: float = 10.0,
) -> List[ConfigEvaluation]:
    """Evaluate every grid configuration with the empirical models."""
    grid = grid or TuningGrid()
    evaluations = [evaluator.evaluate(cfg) for cfg in grid.configs(distance_m)]
    if not evaluations:
        raise OptimizationError("the tuning grid is empty")
    return evaluations


def best_by(
    evaluations: Sequence[ConfigEvaluation], objective: str
) -> ConfigEvaluation:
    """The single evaluation minimizing the named objective."""
    if not evaluations:
        raise OptimizationError("no evaluations to choose from")
    return min(evaluations, key=lambda e: e.objective(objective))
