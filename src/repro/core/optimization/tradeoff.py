"""The energy-goodput trade-off harness (the paper's Fig. 1 and Table IV).

Reproduces the case study of Sec. VIII-C: an indoor sensor must bulk-transfer
data with maximum throughput and minimum energy. The link starts at P_tx = 23
in the grey zone; per the paper, raising the power to 31 yields an SNR of
6 dB. Each literature baseline tunes one parameter; joint tuning optimizes
power, payload and retransmissions together via the empirical models.

Two evaluation backends are provided: the empirical models (instant) and the
event-driven simulator under saturating bulk traffic (the "measured" rows of
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ...channel.environment import Environment, HALLWAY_2012
from ...config import MAX_PAYLOAD_BYTES, StackConfig
from ...errors import OptimizationError
from ...radio import cc2420
from ..constants import (
    CASE_STUDY_SNR_AT_PTX23_DB,
    TABLE_IV_ROWS,
)
from .baselines import TuningStrategy, joint_tuning, literature_baselines
from .evaluate import ModelEvaluator, snr_map_from_reference

__all__ = [
    "TradeoffPoint",
    "case_study_base_config",
    "case_study_snr_map",
    "case_study_environment",
    "run_case_study_models",
    "run_case_study_simulation",
    "paper_table_iv_points",
    "joint_wins",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One strategy's achieved (goodput, energy) operating point."""

    strategy: str
    config: StackConfig
    goodput_kbps: float
    u_eng_uj_per_bit: float

    def dominates(self, other: "TradeoffPoint") -> bool:
        """Better-or-equal on both axes and strictly better on one."""
        ge = (
            self.goodput_kbps >= other.goodput_kbps
            and self.u_eng_uj_per_bit <= other.u_eng_uj_per_bit
        )
        strict = (
            self.goodput_kbps > other.goodput_kbps
            or self.u_eng_uj_per_bit < other.u_eng_uj_per_bit
        )
        return ge and strict


def case_study_base_config(distance_m: float = 40.0) -> StackConfig:
    """The starting configuration of the case study (before any tuning)."""
    return StackConfig(
        distance_m=distance_m,
        ptx_level=23,
        n_max_tries=1,
        d_retry_ms=0.0,
        q_max=30,
        t_pkt_ms=30.0,
        payload_bytes=MAX_PAYLOAD_BYTES,
    )


def case_study_snr_map(
    snr_at_23_db: float = CASE_STUDY_SNR_AT_PTX23_DB,
) -> Dict[int, float]:
    """Level → SNR for the case-study link (SNR tracks dB output power)."""
    return snr_map_from_reference(snr_at_23_db, reference_level=23)


def case_study_environment(
    snr_at_23_db: float = CASE_STUDY_SNR_AT_PTX23_DB,
    distance_m: float = 40.0,
    base: Optional[Environment] = None,
) -> Environment:
    """An environment whose mean SNR at ``distance_m`` matches the case study.

    The hallway path-loss model is given a position offset at ``distance_m``
    such that P_tx = 23 yields exactly ``snr_at_23_db`` of long-run mean SNR;
    temporal dynamics stay as in the base environment.
    """
    env = base or HALLWAY_2012
    noise_mean = env.noise.mean_dbm
    desired_loss = cc2420.output_power_dbm(23) - (noise_mean + snr_at_23_db)
    median = env.pathloss.median_loss_db(distance_m)
    offsets = dict(env.pathloss.position_offsets_db)
    offsets[distance_m] = desired_loss - median
    pathloss = replace(env.pathloss, position_offsets_db=offsets)
    return replace(env, name=f"{env.name}+case-study", pathloss=pathloss)


def run_case_study_models(
    snr_at_23_db: float = CASE_STUDY_SNR_AT_PTX23_DB,
    energy_budget_uj_per_bit: float = 0.30,
    strategies: Optional[Sequence[TuningStrategy]] = None,
) -> List[TradeoffPoint]:
    """Model-predicted Table IV: baselines plus joint tuning."""
    base = case_study_base_config()
    evaluator = ModelEvaluator(snr_by_level=case_study_snr_map(snr_at_23_db))
    points: List[TradeoffPoint] = []
    for strategy in strategies if strategies is not None else literature_baselines():
        tuned = strategy(base)
        evaluation = evaluator.evaluate(tuned)
        points.append(
            TradeoffPoint(
                strategy=f"{strategy.name} {strategy.citation}",
                config=tuned,
                goodput_kbps=evaluation.max_goodput_kbps,
                u_eng_uj_per_bit=evaluation.u_eng_uj_per_bit,
            )
        )
    joint = joint_tuning(evaluator, base, energy_budget_uj_per_bit)
    points.append(
        TradeoffPoint(
            strategy="joint (our work)",
            config=joint.config,
            goodput_kbps=joint.max_goodput_kbps,
            u_eng_uj_per_bit=joint.u_eng_uj_per_bit,
        )
    )
    return points


def run_case_study_simulation(
    points: Sequence[TradeoffPoint],
    n_packets: int = 1500,
    seed: int = 7,
    snr_at_23_db: float = CASE_STUDY_SNR_AT_PTX23_DB,
    distance_m: float = 40.0,
) -> List[TradeoffPoint]:
    """Re-measure strategy operating points with the event simulator.

    Bulk transfer means the sender is saturated: T_pkt is forced to 2 ms so
    the queue never runs dry, and goodput equals delivered bits over the
    run's duration.
    """
    from ...analysis import compute_metrics  # local import avoids a cycle
    from ...sim import SimulationOptions, simulate_link

    environment = case_study_environment(snr_at_23_db, distance_m)
    options = SimulationOptions(
        n_packets=n_packets, seed=seed, environment=environment
    )
    measured: List[TradeoffPoint] = []
    for point in points:
        config = point.config.with_updates(
            distance_m=distance_m, t_pkt_ms=2.0, q_max=30
        )
        metrics = compute_metrics(simulate_link(config, options=options))
        measured.append(
            TradeoffPoint(
                strategy=point.strategy,
                config=config,
                goodput_kbps=metrics.goodput_kbps,
                u_eng_uj_per_bit=metrics.energy_per_info_bit_uj,
            )
        )
    return measured


def paper_table_iv_points() -> List[TradeoffPoint]:
    """The published Table IV rows as TradeoffPoint objects (for comparison)."""
    points = []
    base_config = case_study_base_config()
    for name, (ptx, payload, tries, goodput, energy) in TABLE_IV_ROWS.items():
        config = base_config.with_updates(
            ptx_level=ptx, payload_bytes=min(payload, MAX_PAYLOAD_BYTES), n_max_tries=tries
        )
        points.append(
            TradeoffPoint(
                strategy=name,
                config=config,
                goodput_kbps=goodput,
                u_eng_uj_per_bit=energy,
            )
        )
    return points


def joint_wins(points: Sequence[TradeoffPoint]) -> bool:
    """Whether the joint strategy dominates every baseline (the Fig. 1 claim)."""
    joint = [p for p in points if p.strategy.startswith("joint")]
    if len(joint) != 1:
        raise OptimizationError(
            f"expected exactly one joint strategy point, got {len(joint)}"
        )
    others = [p for p in points if not p.strategy.startswith("joint")]
    return all(joint[0].dominates(other) for other in others)
