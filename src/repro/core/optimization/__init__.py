"""Multi-objective parameter optimization (the paper's Sec. VIII).

Model-driven evaluation of configurations, exhaustive grid search, Pareto
front extraction, the epsilon-constraint MOP solver, the single-parameter
literature baselines, and the Fig. 1 / Table IV trade-off harness.
"""

from .baselines import (
    TuningStrategy,
    joint_tuning,
    literature_baselines,
    payload_tuning_baseline,
    power_tuning_baseline,
    retransmission_tuning_baseline,
)
from .epsilon_constraint import (
    Constraint,
    default_bounds_for,
    infeasible_error,
    solve_epsilon_constraint,
    sweep_epsilon,
)
from .evaluate import (
    RHO_QUEUE_CLIP,
    ConfigEvaluation,
    ModelEvaluator,
    snr_map_from_environment,
    snr_map_from_reference,
)
from .grid import TuningGrid, best_by, evaluate_grid, evaluate_grid_scalar
from .kernels import (
    GridEvaluation,
    evaluate_columns,
    evaluate_grid_columns,
    evaluate_metric_planes,
    grid_knob_columns,
    queue_composition_columns,
)
from .pareto import dominates, knee_point, nondominated_mask, pareto_front
from .policy import (
    DEFAULT_SNR_QUANTUM_DB,
    DEFAULT_SNR_RANGE_DB,
    OBJECTIVE_PLANES,
    REFERENCE_LEVEL,
    PolicyTable,
    level_offset_lut_db,
    masked_argmin_rows,
    objective_from_planes,
)
from .sensitivity import (
    ParameterSensitivity,
    analyze_sensitivity,
    dominant_parameter,
    rank_parameters,
)
from .weighted import (
    solve_weighted_sum,
    sweep_weights,
    weighted_points_on_pareto_front,
)
from .tradeoff import (
    TradeoffPoint,
    case_study_base_config,
    case_study_environment,
    case_study_snr_map,
    joint_wins,
    paper_table_iv_points,
    run_case_study_models,
    run_case_study_simulation,
)

__all__ = [
    "DEFAULT_SNR_QUANTUM_DB",
    "DEFAULT_SNR_RANGE_DB",
    "OBJECTIVE_PLANES",
    "REFERENCE_LEVEL",
    "RHO_QUEUE_CLIP",
    "ConfigEvaluation",
    "Constraint",
    "GridEvaluation",
    "ModelEvaluator",
    "PolicyTable",
    "level_offset_lut_db",
    "masked_argmin_rows",
    "objective_from_planes",
    "ParameterSensitivity",
    "TradeoffPoint",
    "TuningGrid",
    "TuningStrategy",
    "best_by",
    "evaluate_columns",
    "evaluate_grid_columns",
    "evaluate_grid_scalar",
    "evaluate_metric_planes",
    "grid_knob_columns",
    "queue_composition_columns",
    "infeasible_error",
    "nondominated_mask",
    "case_study_base_config",
    "case_study_environment",
    "case_study_snr_map",
    "default_bounds_for",
    "dominates",
    "evaluate_grid",
    "joint_tuning",
    "joint_wins",
    "knee_point",
    "literature_baselines",
    "analyze_sensitivity",
    "dominant_parameter",
    "paper_table_iv_points",
    "pareto_front",
    "rank_parameters",
    "payload_tuning_baseline",
    "power_tuning_baseline",
    "retransmission_tuning_baseline",
    "run_case_study_models",
    "run_case_study_simulation",
    "snr_map_from_environment",
    "snr_map_from_reference",
    "solve_epsilon_constraint",
    "solve_weighted_sum",
    "sweep_epsilon",
    "sweep_weights",
    "weighted_points_on_pareto_front",
]
