"""Online link-quality estimation.

The paper's Sec. III-A conclusion — "the results of RSSI deviation suggest
the necessity of adapting to dynamic link quality for parameter tuning
techniques" — implies a running estimate of the link state. This module
provides the standard estimators a deployed tuner would use:

* :class:`EwmaEstimator` — exponentially weighted moving average with
  variance tracking, for RSSI/SNR smoothing;
* :class:`WindowedPerEstimator` — sliding-window packet-error-rate estimate
  from ACK outcomes (the sender-side observable the paper's Eq. 1 uses);
* :class:`LinkStateEstimator` — the composition: feeds per-transmission
  observations, answers the questions the guideline engine asks (current
  SNR, its stability, the joint-effect zone, a model-consistent PER check).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..errors import ReproError
from .per_model import PerModel
from .zones import JointEffectZone, classify_snr

__all__ = [
    "EwmaEstimator",
    "WindowedPerEstimator",
    "LinkStateEstimate",
    "LinkStateEstimator",
]


class EwmaEstimator:
    """EWMA of a scalar signal with EW variance tracking.

    ``alpha`` is the weight of a new observation. Variance uses the standard
    EW recurrence ``var ← (1 − α)(var + α·(x − mean)²)``, which is unbiased
    enough for the stability classification done here.
    """

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ReproError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self._mean: Optional[float] = None
        self._var = 0.0
        self._count = 0

    def update(self, value: float) -> float:
        """Fold in one observation; returns the updated mean."""
        self._count += 1
        if self._mean is None:
            self._mean = float(value)
        else:
            delta = value - self._mean
            self._var = (1.0 - self.alpha) * (self._var + self.alpha * delta**2)
            self._mean += self.alpha * delta
        return self._mean

    @property
    def mean(self) -> float:
        """Current estimate; NaN before the first observation."""
        return math.nan if self._mean is None else self._mean

    @property
    def std(self) -> float:
        """EW standard deviation; 0 before two observations."""
        return math.sqrt(self._var)

    @property
    def count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._mean = None
        self._var = 0.0
        self._count = 0


class WindowedPerEstimator:
    """Sliding-window PER estimate from per-transmission ACK outcomes."""

    def __init__(self, window: int = 100) -> None:
        if window < 1:
            raise ReproError(f"window must be >= 1, got {window!r}")
        self.window = window
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._failures = 0

    def update(self, acked: bool) -> None:
        """Record one transmission outcome."""
        if len(self._outcomes) == self.window:
            oldest = self._outcomes[0]
            if not oldest:
                self._failures -= 1
        self._outcomes.append(bool(acked))
        if not acked:
            self._failures += 1

    @property
    def per(self) -> float:
        """Windowed PER; NaN with no observations."""
        if not self._outcomes:
            return math.nan
        return self._failures / len(self._outcomes)

    @property
    def count(self) -> int:
        return len(self._outcomes)

    @property
    def confident(self) -> bool:
        """Whether the window has filled at least halfway."""
        return len(self._outcomes) >= max(1, self.window // 2)


@dataclass
class LinkStateEstimate:
    """Snapshot answer of the :class:`LinkStateEstimator`."""

    snr_db: float
    snr_std_db: float
    per: float
    zone: JointEffectZone
    n_observations: int
    #: Ratio of measured PER to the Eq. 3 prediction at this SNR; values
    #: far from 1 flag that the published model does not describe this
    #: environment and should be re-fitted.
    per_model_ratio: float

    @property
    def stable(self) -> bool:
        """Whether the SNR is steady enough to trust zone-based guidelines.

        The paper's Fig. 4 deviations run 1–3 dB on steady links; estimates
        wobblier than 4 dB indicate shadowing events in progress.
        """
        return self.snr_std_db < 4.0


class LinkStateEstimator:
    """Feeds on per-transmission observations; answers guideline queries."""

    def __init__(
        self,
        payload_bytes: int,
        snr_alpha: float = 0.1,
        per_window: int = 100,
        per_model: Optional[PerModel] = None,
    ) -> None:
        if payload_bytes < 1:
            raise ReproError(f"payload_bytes must be >= 1, got {payload_bytes!r}")
        self.payload_bytes = payload_bytes
        self.snr = EwmaEstimator(alpha=snr_alpha)
        self.per_estimator = WindowedPerEstimator(window=per_window)
        self.per_model = per_model or PerModel()

    def observe(self, snr_db: float, acked: bool) -> None:
        """Record one transmission's measured SNR and ACK outcome."""
        self.snr.update(snr_db)
        self.per_estimator.update(acked)

    def estimate(self) -> LinkStateEstimate:
        """Current link-state snapshot; raises before any observation."""
        if self.snr.count == 0:
            raise ReproError("no observations yet")
        snr = self.snr.mean
        per = self.per_estimator.per
        predicted = self.per_model.per(self.payload_bytes, snr)
        ratio = per / predicted if predicted > 0 and not math.isnan(per) else math.nan
        return LinkStateEstimate(
            snr_db=snr,
            snr_std_db=self.snr.std,
            per=per,
            zone=classify_snr(snr),
            n_observations=self.snr.count,
            per_model_ratio=ratio,
        )
