"""Empirical transmission-count model — the paper's Eq. 7.

``N_tries = 1 + α · l_D · exp(β · SNR)`` with the published fit α = 0.02,
β = −0.18 (Fig. 11). This is the *unbounded-retry* expectation; for the
service-time expectation under a finite attempt budget we also provide the
truncated-geometric form the event simulator obeys exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from .constants import NTRIES_FIT, ExpFitCoefficients

__all__ = [
    "NtriesModel",
    "truncated_geometric_mean_tries",
    "mean_tries_of_delivered",
]


@dataclass(frozen=True)
class NtriesModel:
    """Eq. 7 with configurable coefficients."""

    coefficients: ExpFitCoefficients = field(default_factory=lambda: NTRIES_FIT)

    def expected_tries(self, payload_bytes, snr_db):
        """The paper's N̄_tries = 1 + α · l_D · exp(β · SNR); vectorized."""
        payload = np.asarray(payload_bytes, dtype=float)
        snr = np.asarray(snr_db, dtype=float)
        value = 1.0 + (
            self.coefficients.alpha
            * payload
            * np.exp(self.coefficients.beta * snr)
        )
        if np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0:
            return float(value)
        return value

    def implied_per(self, payload_bytes, snr_db):
        """The attempt-failure probability implied by the model.

        For a geometric attempt process with per-attempt failure ``p``, the
        unbounded expectation is ``1 / (1 − p) ≈ 1 + p`` for small p, so
        ``p ≈ N̄ − 1``; clipped to [0, 1).
        """
        value = np.clip(
            self.expected_tries(payload_bytes, snr_db) - 1.0, 0.0, 0.999999
        )
        if np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0:
            return float(value)
        return value


def truncated_geometric_mean_tries(per, n_max_tries: int):
    """E[transmissions] with per-attempt failure ``per`` and budget ``N``.

    The packet stops at the first success or after N attempts:
    ``E = (1 − per^N) / (1 − per)`` (and exactly N when per = 1).
    Vectorized over ``per``.
    """
    if n_max_tries < 1:
        raise ModelError(f"n_max_tries must be >= 1, got {n_max_tries!r}")
    p = np.asarray(per, dtype=float)
    if np.any((p < 0) | (p > 1)):
        raise ModelError("per must be within [0, 1]")
    with np.errstate(invalid="ignore", divide="ignore"):
        value = np.where(
            p >= 1.0,
            float(n_max_tries),
            (1.0 - p**n_max_tries) / np.where(p >= 1.0, 1.0, 1.0 - p),
        )
    return float(value) if np.ndim(per) == 0 else value


def mean_tries_of_delivered(per, n_max_tries: int):
    """E[transmissions | delivered within the budget]; vectorized.

    Conditional mean of a geometric variable truncated to successes:
    ``E = Σ_{k=1..N} k (1−p) p^{k−1} / (1 − p^N)``.
    """
    if n_max_tries < 1:
        raise ModelError(f"n_max_tries must be >= 1, got {n_max_tries!r}")
    p = np.asarray(per, dtype=float)
    if np.any((p < 0) | (p >= 1)):
        raise ModelError("per must be within [0, 1) for a delivered packet")
    k = np.arange(1, n_max_tries + 1, dtype=float)
    # Broadcast: p[..., None] against k.
    pk = p[..., None] ** (k - 1.0)
    numer = np.sum(k * (1.0 - p[..., None]) * pk, axis=-1)
    denom = 1.0 - p**n_max_tries
    value = numer / denom
    return float(value) if np.ndim(per) == 0 else value
