"""Delay model — utilization-driven queueing analysis (the paper's Sec. VI).

The paper explains delay through the system utilization ρ = T_service /
T_pkt (Eq. 9): below 1 the queueing delay is modest, approaching 1 it
explodes, at or above 1 the queue stays full and delay is governed by Q_max.
This module turns that reasoning into numbers: per-configuration utilization,
regime classification, and a delay estimate combining the service-time model
with M/G/1 (stable) or full-queue (overloaded) approximations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MAX_PAYLOAD_BYTES, StackConfig
from ..queueing import QueueingRegime, mg1_mean_wait_s, utilization
from .service_time import ServiceTimeModel

__all__ = [
    "DelayEstimate",
    "DelayModel",
]


@dataclass(frozen=True)
class DelayEstimate:
    """Model-predicted delay decomposition for one configuration."""

    service_time_s: float
    queueing_delay_s: float
    rho: float

    @property
    def total_delay_s(self) -> float:
        return self.service_time_s + self.queueing_delay_s

    @property
    def regime(self) -> QueueingRegime:
        return QueueingRegime(self.rho)


@dataclass(frozen=True)
class DelayModel:
    """Utilization and delay prediction on top of the service-time model."""

    service_model: ServiceTimeModel = field(default_factory=ServiceTimeModel)
    #: Squared coefficient of variation assumed for the service time in the
    #: M/G/1 wait term. The simulated service distribution at mid SNR has
    #: SCV ≈ 0.1–0.4 (retransmissions dominate the variance).
    service_scv: float = 0.3

    def utilization(self, config: StackConfig, snr_db: float) -> float:
        """ρ = T_service / T_pkt (Eq. 9) for a configuration at a link SNR."""
        service = self.service_model.mean_service_time_s(
            config.payload_bytes, snr_db, config.n_max_tries, config.d_retry_ms
        )
        return utilization(service, config.t_pkt_ms / 1e3)

    def regime(self, config: StackConfig, snr_db: float) -> QueueingRegime:
        """Qualitative queueing regime at this configuration."""
        return QueueingRegime(self.utilization(config, snr_db))

    def estimate(self, config: StackConfig, snr_db: float) -> DelayEstimate:
        """Predicted service + queueing delay.

        Stable regime (ρ < 1): Pollaczek-Khinchine mean wait. Overloaded
        (ρ ≥ 1): the queue stays essentially full, so an accepted packet
        waits about Q_max service times — the mechanism behind the paper's
        "two or three orders of magnitude" delay gap between Q_max = 1 and
        Q_max = 30 in the grey zone (Fig. 15).
        """
        service = self.service_model.mean_service_time_s(
            config.payload_bytes, snr_db, config.n_max_tries, config.d_retry_ms
        )
        rho = utilization(service, config.t_pkt_ms / 1e3)
        if rho < 1.0:
            wait = mg1_mean_wait_s(service, self.service_scv, config.t_pkt_ms / 1e3)
            # A bounded queue cannot hold more than Q_max waiting packets.
            wait = min(wait, config.q_max * service)
        else:
            wait = config.q_max * service
        return DelayEstimate(service_time_s=service, queueing_delay_s=wait, rho=rho)

    def max_stable_payload_bytes(
        self, config: StackConfig, snr_db: float, max_payload: int = MAX_PAYLOAD_BYTES
    ) -> int:
        """Largest payload keeping ρ < 1 at this link and inter-arrival time.

        Returns 0 when even a 1-byte payload overloads the link — the
        guideline then is to increase T_pkt instead.
        """
        best = 0
        for payload in range(1, max_payload + 1):
            service = self.service_model.mean_service_time_s(
                payload, snr_db, config.n_max_tries, config.d_retry_ms
            )
            if utilization(service, config.t_pkt_ms / 1e3) < 1.0:
                best = payload
        return best

    def min_stable_interarrival_ms(
        self, config: StackConfig, snr_db: float
    ) -> float:
        """Smallest T_pkt keeping ρ < 1 for this configuration's payload."""
        service = self.service_model.mean_service_time_s(
            config.payload_bytes, snr_db, config.n_max_tries, config.d_retry_ms
        )
        return service * 1e3 * (1.0 + 1e-9)
