"""Executable parameter-optimization guidelines (Sec. IV-C, V-C, VI-B, VII-B).

Each ``recommend_for_*`` method turns one of the paper's per-metric guideline
sections into code: given what is known about the link (the SNR each power
level would yield, obtainable from the channel model or from probing), it
returns the recommended parameter values together with the paper's rationale
and the model-predicted metric values.

The cross-metric trade-off machinery (Sec. VIII) lives in
``repro.core.optimization``; this module is the single-metric layer it
builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import OptimizationError
from . import constants
from .delay_model import DelayModel
from .energy_model import EnergyModel
from .goodput_model import GoodputModel
from .plr_model import PlrRadioModel, plr_queue_estimate
from .service_time import ServiceTimeModel
from .zones import classify_snr, in_grey_zone

__all__ = [
    "Recommendation",
    "GuidelineEngine",
]


@dataclass(frozen=True)
class Recommendation:
    """A guideline's output: parameter values plus the reasoning trail."""

    ptx_level: Optional[int] = None
    payload_bytes: Optional[int] = None
    n_max_tries: Optional[int] = None
    q_max: Optional[int] = None
    t_pkt_ms: Optional[float] = None
    predicted: Dict[str, float] = field(default_factory=dict)
    rationale: Tuple[str, ...] = ()

    def changes(self) -> Dict[str, object]:
        """The non-None parameter fields, ready for ``StackConfig.with_updates``."""
        out: Dict[str, object] = {}
        for name in ("ptx_level", "payload_bytes", "n_max_tries", "q_max", "t_pkt_ms"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


@dataclass(frozen=True)
class GuidelineEngine:
    """The paper's guidelines, parameterized by the empirical models."""

    energy_model: EnergyModel = field(default_factory=EnergyModel)
    goodput_model: GoodputModel = field(default_factory=GoodputModel)
    delay_model: DelayModel = field(default_factory=DelayModel)
    plr_model: PlrRadioModel = field(default_factory=PlrRadioModel)
    service_model: ServiceTimeModel = field(default_factory=ServiceTimeModel)
    max_payload: int = constants.MAX_PAYLOAD_BYTES

    # ------------------------------------------------------------- energy

    def recommend_for_energy(
        self, snr_by_level: Mapping[int, float]
    ) -> Recommendation:
        """Sec. IV-C: pick (P_tx, l_D) minimizing U_eng.

        If some power level lifts the link into the low-impact zone of PER,
        use the *lowest* such level with the maximum payload; otherwise use
        the maximum power and the model-optimal (smaller) payload.
        """
        if not snr_by_level:
            raise OptimizationError("snr_by_level must not be empty")
        threshold = self.energy_model.snr_threshold_for_max_payload(self.max_payload)
        rationale: List[str] = [
            f"max-payload energy threshold from the model: {threshold:.1f} dB "
            f"(paper: ~17 dB model / 19 dB observed)"
        ]
        clearing = {
            lvl: snr for lvl, snr in snr_by_level.items() if snr >= threshold
        }
        if clearing:
            level = min(clearing)  # lowest power that clears the threshold
            payload = self.max_payload
            rationale.append(
                f"P_tx={level} is the lowest level whose SNR "
                f"({clearing[level]:.1f} dB) clears the threshold; maximum "
                f"payload amortizes the {self.energy_model.overhead_bytes}-byte overhead"
            )
            snr = clearing[level]
        else:
            level = max(snr_by_level)
            snr = snr_by_level[level]
            payload, _ = self.energy_model.optimal_payload_bytes(
                level, snr, self.max_payload
            )
            rationale.append(
                f"even max power only reaches {snr:.1f} dB < {threshold:.1f} dB; "
                f"shrink payload to the model optimum {payload} B to cut "
                f"retransmission waste"
            )
        u_eng = self.energy_model.u_eng_j_per_bit(level, payload, snr)
        return Recommendation(
            ptx_level=level,
            payload_bytes=payload,
            predicted={"u_eng_uj_per_bit": u_eng * 1e6, "snr_db": snr},
            rationale=tuple(rationale),
        )

    # ------------------------------------------------------------ goodput

    def recommend_for_goodput(
        self,
        snr_by_level: Mapping[int, float],
        n_max_tries_options: Tuple[int, ...] = (1, 2, 3, 5, 8),
        d_retry_ms: float = 0.0,
    ) -> Recommendation:
        """Sec. V-C: pick (P_tx, l_D, N_maxTries) maximizing maxGoodput.

        Outside the grey zone: maximum payload and a large attempt budget.
        Inside: the optimum payload shrinks with SNR and grows with
        N_maxTries; evaluate the model.
        """
        if not snr_by_level or not n_max_tries_options:
            raise OptimizationError("need candidate power levels and retry options")
        # Goodput is monotone in SNR, so max power is never wrong for this
        # single-objective guideline (energy is not being considered here).
        level = max(snr_by_level, key=lambda lvl: snr_by_level[lvl])
        snr = snr_by_level[level]
        rationale = [
            f"max goodput wants max SNR: P_tx={level} gives {snr:.1f} dB "
            f"({classify_snr(snr).value} zone)"
        ]
        best: Tuple[float, int, int] = (-math.inf, 0, 0)
        for n in n_max_tries_options:
            payload, goodput = self.goodput_model.optimal_payload_bytes(
                snr, n, d_retry_ms, self.max_payload
            )
            if goodput > best[0]:
                best = (goodput, payload, n)
        goodput, payload, n = best
        if in_grey_zone(snr):
            rationale.append(
                f"grey-zone link: optimal payload {payload} B < max "
                f"{self.max_payload} B; larger N_maxTries raises the optimum"
            )
        else:
            rationale.append(
                "link outside the grey zone: maximum payload with a large "
                "attempt budget maximizes goodput"
            )
        return Recommendation(
            ptx_level=level,
            payload_bytes=payload,
            n_max_tries=n,
            predicted={"max_goodput_kbps": goodput / 1e3, "snr_db": snr},
            rationale=tuple(rationale),
        )

    # -------------------------------------------------------------- delay

    def recommend_for_delay(
        self,
        snr_db: float,
        t_pkt_ms: float,
        payload_bytes: int,
        n_max_tries: int,
        d_retry_ms: float = 0.0,
        target_rho: float = 0.9,
    ) -> Recommendation:
        """Sec. VI-B: keep ρ < 1 so queueing delay never materializes.

        ``target_rho`` adds a stability margin below the paper's hard ρ < 1
        bound: sitting at ρ ≈ 1 is exactly the heavy-traffic regime where
        delay (and queue loss) blow up, so the guideline aims a bit lower.
        Tries, in order: the configuration as given; shrinking the payload;
        shrinking the attempt budget; and finally stretching T_pkt to the
        stability point.
        """
        if not 0 < target_rho < 1:
            raise OptimizationError(
                f"target_rho must be in (0, 1), got {target_rho!r}"
            )
        from ..config import StackConfig  # local import to avoid a cycle

        def rho_of(payload: int, tries: int, t_pkt: float) -> float:
            cfg = StackConfig(
                t_pkt_ms=t_pkt,
                payload_bytes=payload,
                n_max_tries=tries,
                d_retry_ms=d_retry_ms,
            )
            return self.delay_model.utilization(cfg, snr_db)

        rationale: List[str] = []
        rho = rho_of(payload_bytes, n_max_tries, t_pkt_ms)
        if rho <= target_rho:
            rationale.append(
                f"rho={rho:.3f} <= target {target_rho:g}: no queueing delay expected"
            )
            return Recommendation(
                payload_bytes=payload_bytes,
                n_max_tries=n_max_tries,
                t_pkt_ms=t_pkt_ms,
                predicted={"rho": rho},
                rationale=tuple(rationale),
            )
        rationale.append(
            f"rho={rho:.3f} > target {target_rho:g}: queueing delay will build up"
        )
        for payload in range(payload_bytes, 0, -1):
            if rho_of(payload, n_max_tries, t_pkt_ms) <= target_rho:
                rho2 = rho_of(payload, n_max_tries, t_pkt_ms)
                rationale.append(
                    f"shrinking payload to {payload} B restores rho={rho2:.3f}"
                )
                return Recommendation(
                    payload_bytes=payload,
                    n_max_tries=n_max_tries,
                    t_pkt_ms=t_pkt_ms,
                    predicted={"rho": rho2},
                    rationale=tuple(rationale),
                )
        for tries in range(n_max_tries - 1, 0, -1):
            if rho_of(payload_bytes, tries, t_pkt_ms) <= target_rho:
                rho2 = rho_of(payload_bytes, tries, t_pkt_ms)
                rationale.append(
                    f"cutting N_maxTries to {tries} restores rho={rho2:.3f}"
                )
                return Recommendation(
                    payload_bytes=payload_bytes,
                    n_max_tries=tries,
                    t_pkt_ms=t_pkt_ms,
                    predicted={"rho": rho2},
                    rationale=tuple(rationale),
                )
        service = self.service_model.mean_service_time_s(
            payload_bytes, snr_db, n_max_tries, d_retry_ms
        )
        t_pkt = service * 1e3 / target_rho
        rationale.append(
            f"no payload/retry change stabilizes the queue; stretch T_pkt to "
            f"{t_pkt:.1f} ms (rho = {target_rho:g} at the "
            f"{service * 1e3:.1f} ms service time)"
        )
        return Recommendation(
            payload_bytes=payload_bytes,
            n_max_tries=n_max_tries,
            t_pkt_ms=t_pkt,
            predicted={"rho": rho_of(payload_bytes, n_max_tries, t_pkt)},
            rationale=tuple(rationale),
        )

    # --------------------------------------------------------------- loss

    def recommend_for_loss(
        self,
        snr_db: float,
        t_pkt_ms: float,
        payload_bytes: int,
        target_plr_radio: float = 0.01,
        d_retry_ms: float = 0.0,
        q_max_options: Tuple[int, ...] = (1, 30),
    ) -> Recommendation:
        """Sec. VII-B: balance radio loss against queueing loss.

        Find the smallest N_maxTries meeting the radio-loss target; if the
        resulting utilization is ≥ 1, either back off the attempt budget to
        the largest stable one or (if none is stable) keep the budget and
        deploy the large queue to absorb the overload.
        """
        n_target = self.plr_model.min_tries_for_target(
            payload_bytes, snr_db, target_plr_radio
        )
        rationale = [
            f"Eq. 8 needs N_maxTries >= {n_target} for PLR_radio <= "
            f"{target_plr_radio:g} at {snr_db:.1f} dB / {payload_bytes} B"
        ]
        t_pkt_s = t_pkt_ms / 1e3

        def rho_for(tries: int) -> float:
            return (
                self.service_model.mean_service_time_s(
                    payload_bytes, snr_db, tries, d_retry_ms
                )
                / t_pkt_s
            )

        n = min(n_target, 15)
        if rho_for(n) < 1.0:
            q_max = min(q_max_options)
            rho = rho_for(n)
            rationale.append(
                f"rho={rho:.3f} < 1 at N_maxTries={n}: no queueing loss expected"
            )
        else:
            stable = [k for k in range(1, n + 1) if rho_for(k) < 1.0]
            if stable:
                n = max(stable)
                rho = rho_for(n)
                q_max = min(q_max_options)
                rationale.append(
                    f"the loss-target budget overloads the link; back off to "
                    f"N_maxTries={n} (rho={rho:.3f}) trading radio loss for "
                    f"queue stability"
                )
            else:
                rho = rho_for(n)
                q_max = max(q_max_options)
                rationale.append(
                    f"even N_maxTries=1 gives rho={rho_for(1):.3f} >= 1; keep "
                    f"N_maxTries={n} and use the large queue (Q_max={q_max}) "
                    f"to absorb bursts"
                )
        plr_radio = self.plr_model.plr_radio(payload_bytes, snr_db, n)
        plr_queue = plr_queue_estimate(min(rho, 5.0), q_max)
        return Recommendation(
            payload_bytes=payload_bytes,
            n_max_tries=n,
            q_max=q_max,
            predicted={
                "rho": rho,
                "plr_radio": plr_radio,
                "plr_queue_estimate": plr_queue,
            },
            rationale=tuple(rationale),
        )
