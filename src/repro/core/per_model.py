"""Empirical PER model — the paper's Eq. 3.

``PER = α · l_D · exp(β · SNR)`` with the published fit α = 0.0128,
β = −0.15. The model is a small-PER approximation, so its raw value can
exceed 1 deep in the grey zone; :meth:`PerModel.per` clips to [0, 1] (which
is how the paper uses it inside Eqs. 2 and 8), while :meth:`PerModel.raw`
exposes the unclipped value for fitting diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from .constants import PER_FIT, ExpFitCoefficients

__all__ = [
    "PerModel",
]


@dataclass(frozen=True)
class PerModel:
    """Eq. 3 with configurable (e.g. re-fitted) coefficients."""

    coefficients: ExpFitCoefficients = field(default_factory=lambda: PER_FIT)

    def raw(self, payload_bytes, snr_db):
        """Unclipped α · l_D · exp(β · SNR); vectorized."""
        payload = np.asarray(payload_bytes, dtype=float)
        snr = np.asarray(snr_db, dtype=float)
        value = (
            self.coefficients.alpha
            * payload
            * np.exp(self.coefficients.beta * snr)
        )
        if np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0:
            return float(value)
        return value

    def per(self, payload_bytes, snr_db):
        """PER in [0, 1]; vectorized."""
        value = np.clip(self.raw(payload_bytes, snr_db), 0.0, 1.0)
        if np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0:
            return float(value)
        return value

    def success_probability(self, payload_bytes, snr_db):
        """1 − PER."""
        return 1.0 - self.per(payload_bytes, snr_db)

    def snr_for_target_per(self, payload_bytes: int, target_per: float) -> float:
        """The SNR at which the model predicts a given PER for a payload.

        Inverts Eq. 3: ``SNR = ln(target / (α · l_D)) / β``. Used by the
        guidelines to answer "how much SNR does a 114-byte packet need".
        """
        if not 0 < target_per <= 1:
            raise ModelError(f"target_per must be in (0, 1], got {target_per!r}")
        if payload_bytes < 1:
            raise ModelError(f"payload_bytes must be >= 1, got {payload_bytes!r}")
        return float(
            np.log(target_per / (self.coefficients.alpha * payload_bytes))
            / self.coefficients.beta
        )
