"""Model-vs-measurement validation reports.

Quantifies, for a campaign dataset, how well each empirical model predicts
the measured metrics — the machinery behind EXPERIMENTS.md's error tables
and the "should I re-fit?" decision the paper's Sec. VIII-D anticipates for
new environments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..campaign.dataset import CampaignDataset
from ..campaign.summary import ConfigSummary
from ..errors import ReproError
from .energy_model import EnergyModel
from .goodput_model import GoodputModel
from .ntries_model import NtriesModel, truncated_geometric_mean_tries
from .per_model import PerModel
from .plr_model import PlrRadioModel
from .service_time import ServiceTimeModel

__all__ = [
    "MetricValidation",
    "ModelValidator",
    "needs_refit",
]


@dataclass(frozen=True)
class MetricValidation:
    """Prediction accuracy of one model over a dataset."""

    metric: str
    n_points: int
    mean_absolute_error: float
    mean_relative_error: float
    bias: float
    correlation: float

    def summary(self) -> str:
        return (
            f"{self.metric}: n={self.n_points}, "
            f"MAE={self.mean_absolute_error:.4g}, "
            f"rel.err={self.mean_relative_error:.1%}, "
            f"bias={self.bias:+.4g}, r={self.correlation:.3f}"
        )


@dataclass
class ModelValidator:
    """Compares model predictions with a dataset's measured metrics."""

    per_model: PerModel = field(default_factory=PerModel)
    ntries_model: NtriesModel = field(default_factory=NtriesModel)
    plr_model: PlrRadioModel = field(default_factory=PlrRadioModel)
    service_model: ServiceTimeModel = field(default_factory=ServiceTimeModel)
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    goodput_model: GoodputModel = field(default_factory=GoodputModel)

    def _predict(self, metric: str, summary: ConfigSummary) -> float:
        cfg = summary.config
        snr = summary.mean_snr_db
        if metric == "per":
            return float(self.per_model.per(cfg.payload_bytes, snr))
        if metric == "plr_radio":
            return float(
                self.plr_model.plr_radio(cfg.payload_bytes, snr, cfg.n_max_tries)
            )
        if metric == "mean_tries":
            per = float(self.per_model.per(cfg.payload_bytes, snr))
            return float(
                truncated_geometric_mean_tries(per, cfg.n_max_tries)
            )
        if metric == "mean_service_time_ms":
            return (
                self.service_model.mean_service_time_s(
                    cfg.payload_bytes, snr, cfg.n_max_tries, cfg.d_retry_ms
                )
                * 1e3
            )
        if metric == "u_eng_uj_per_bit":
            return (
                self.energy_model.u_eng_finite_retries_j_per_bit(
                    cfg.ptx_level, cfg.payload_bytes, snr, cfg.n_max_tries
                )
                * 1e6
            )
        raise ReproError(
            f"no model prediction available for metric {metric!r}"
        )

    def validate_metric(
        self, dataset: CampaignDataset, metric: str
    ) -> MetricValidation:
        """Prediction-error statistics for one metric over the dataset.

        Rows whose measurement or prediction is non-finite (dead links) are
        skipped.
        """
        measured: List[float] = []
        predicted: List[float] = []
        for summary in dataset:
            m = getattr(summary, metric)
            if not math.isfinite(m) or not math.isfinite(summary.mean_snr_db):
                continue
            p = self._predict(metric, summary)
            if not math.isfinite(p):
                continue
            measured.append(m)
            predicted.append(p)
        if len(measured) < 2:
            raise ReproError(
                f"need at least 2 finite points to validate {metric!r}, "
                f"have {len(measured)}"
            )
        m_arr = np.asarray(measured)
        p_arr = np.asarray(predicted)
        errors = p_arr - m_arr
        # Symmetric relative error, bounded in [0, 1]: robust when the
        # measured value is exactly zero (lossless cells) while the model
        # predicts a small residual. Cells where both values are negligible
        # (< 1% of the metric's observed scale) carry no information about
        # model quality and are excluded from the relative-error average.
        scale = np.maximum(np.maximum(np.abs(m_arr), np.abs(p_arr)), 1e-12)
        floor = 0.01 * float(scale.max())
        informative = scale >= max(floor, 1e-12)
        if informative.any():
            rel = float(
                np.mean(np.abs(errors[informative]) / scale[informative])
            )
        else:
            rel = 0.0
        with np.errstate(invalid="ignore"):
            corr = float(np.corrcoef(m_arr, p_arr)[0, 1])
        if math.isnan(corr):
            corr = 1.0 if np.allclose(m_arr, p_arr) else 0.0
        return MetricValidation(
            metric=metric,
            n_points=len(measured),
            mean_absolute_error=float(np.mean(np.abs(errors))),
            mean_relative_error=rel,
            bias=float(np.mean(errors)),
            correlation=corr,
        )

    def validate_all(
        self, dataset: CampaignDataset
    ) -> Dict[str, MetricValidation]:
        """Validate every predictable metric present in the dataset."""
        out = {}
        for metric in (
            "per",
            "plr_radio",
            "mean_tries",
            "mean_service_time_ms",
            "u_eng_uj_per_bit",
        ):
            try:
                out[metric] = self.validate_metric(dataset, metric)
            except ReproError:
                continue
        if not out:
            raise ReproError("no metric could be validated on this dataset")
        return out


def needs_refit(
    validations: Dict[str, MetricValidation],
    relative_error_threshold: float = 0.5,
) -> bool:
    """Whether the published coefficients misdescribe this environment.

    The decision rule the paper's Sec. VIII-D discussion implies: if the
    published models are off by more than ``relative_error_threshold`` on
    average for any loss metric, re-fit against local measurements.
    """
    if not 0 < relative_error_threshold:
        raise ReproError("relative_error_threshold must be positive")
    for metric in ("per", "plr_radio"):
        if metric in validations and (
            validations[metric].mean_relative_error > relative_error_threshold
        ):
            return True
    return False
