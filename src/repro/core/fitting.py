"""Regression of the paper's empirical models against measurement data.

The paper fits three members of the exponential family
``y = α · l_D · exp(β · SNR)`` (PER, Eq. 3; N_tries − 1, Eq. 7;
PLR_radio^(1/N), Eq. 8). Given campaign observations — arrays of payload
size, SNR and the measured metric — this module recovers (α, β) with scipy's
``curve_fit``, seeded by (and falling back to) a weighted log-linear
regression which always succeeds on positive data:

``log(y / l_D) = log α + β · SNR``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import FittingError
from .constants import ExpFitCoefficients

__all__ = [
    "FitResult",
    "fit_exponential_family",
    "fit_per_model",
    "fit_ntries_model",
    "fit_plr_radio_model",
]

try:  # scipy is a hard dependency of the package, but keep the import local.
    from scipy.optimize import curve_fit

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only on broken installs
    _HAVE_SCIPY = False


@dataclass(frozen=True)
class FitResult:
    """Outcome of an exponential-family regression."""

    coefficients: ExpFitCoefficients
    r_squared: float
    n_points: int
    alpha_stderr: float
    beta_stderr: float
    method: str

    @property
    def alpha(self) -> float:
        return self.coefficients.alpha

    @property
    def beta(self) -> float:
        return self.coefficients.beta

    def summary(self) -> str:
        """One-line description for logs and EXPERIMENTS.md."""
        return (
            f"alpha={self.alpha:.5f} (±{self.alpha_stderr:.5f}), "
            f"beta={self.beta:.4f} (±{self.beta_stderr:.4f}), "
            f"R²={self.r_squared:.3f}, n={self.n_points}, {self.method}"
        )


def _validate(payload_bytes, snr_db, values, min_points: int):
    payload = np.asarray(payload_bytes, dtype=float).reshape(-1)
    snr = np.asarray(snr_db, dtype=float).reshape(-1)
    y = np.asarray(values, dtype=float).reshape(-1)
    if not (payload.size == snr.size == y.size):
        raise FittingError(
            f"payload/snr/values lengths differ: "
            f"{payload.size}/{snr.size}/{y.size}"
        )
    mask = np.isfinite(payload) & np.isfinite(snr) & np.isfinite(y) & (y > 0)
    payload, snr, y = payload[mask], snr[mask], y[mask]
    if payload.size < min_points:
        raise FittingError(
            f"need at least {min_points} positive finite points, have {payload.size}"
        )
    if np.any(payload <= 0):
        raise FittingError("payload sizes must be positive")
    return payload, snr, y


def _r_squared(y, y_hat) -> float:
    ss_res = float(np.sum((y - y_hat) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def _log_linear_fit(payload, snr, y):
    """Weighted least squares of log(y / l_D) on SNR."""
    z = np.log(y / payload)
    slope, intercept = np.polyfit(snr, z, 1)
    alpha = math.exp(intercept)
    beta = float(slope)
    # Standard errors from the linear regression residuals.
    residuals = z - (intercept + slope * snr)
    dof = max(1, snr.size - 2)
    s2 = float(np.sum(residuals**2)) / dof
    sxx = float(np.sum((snr - snr.mean()) ** 2))
    beta_se = math.sqrt(s2 / sxx) if sxx > 0 else math.inf
    intercept_se = (
        math.sqrt(s2 * (1.0 / snr.size + snr.mean() ** 2 / sxx))
        if sxx > 0
        else math.inf
    )
    alpha_se = alpha * intercept_se  # delta method
    return alpha, beta, alpha_se, beta_se


def fit_exponential_family(
    payload_bytes: Sequence[float],
    snr_db: Sequence[float],
    values: Sequence[float],
    min_points: int = 8,
    use_scipy: bool = True,
) -> FitResult:
    """Fit ``y = α · l_D · exp(β · SNR)`` to positive observations.

    Non-finite and non-positive observations are dropped (a measured PER of
    exactly zero carries no information for a multiplicative model). The
    scipy nonlinear fit is seeded with the log-linear solution; if scipy is
    unavailable or fails to converge the log-linear fit is returned.
    """
    payload, snr, y = _validate(payload_bytes, snr_db, values, min_points)
    alpha0, beta0, alpha_se, beta_se = _log_linear_fit(payload, snr, y)
    method = "log-linear"
    alpha, beta = alpha0, beta0
    if use_scipy and _HAVE_SCIPY:
        def model(x, a, b):
            l, s = x
            return a * l * np.exp(b * s)

        try:
            popt, pcov = curve_fit(
                model,
                (payload, snr),
                y,
                p0=(alpha0, min(beta0, -1e-6)),
                maxfev=20000,
            )
            if np.all(np.isfinite(popt)) and popt[0] > 0 and popt[1] < 0:
                alpha, beta = float(popt[0]), float(popt[1])
                perr = np.sqrt(np.abs(np.diag(pcov)))
                alpha_se, beta_se = float(perr[0]), float(perr[1])
                method = "scipy-curve_fit"
        except (RuntimeError, ValueError):
            pass  # keep the log-linear solution
    if beta >= 0:
        raise FittingError(
            f"fit produced non-decaying beta={beta:.4f}; the data do not "
            "follow the exponential family (is SNR inverted?)"
        )
    y_hat = alpha * payload * np.exp(beta * snr)
    return FitResult(
        coefficients=ExpFitCoefficients(alpha=alpha, beta=beta),
        r_squared=_r_squared(y, y_hat),
        n_points=int(payload.size),
        alpha_stderr=alpha_se,
        beta_stderr=beta_se,
        method=method,
    )


def fit_per_model(payload_bytes, snr_db, per_values, **kwargs) -> FitResult:
    """Fit the paper's Eq. 3 to measured PER observations."""
    return fit_exponential_family(payload_bytes, snr_db, per_values, **kwargs)


def fit_ntries_model(payload_bytes, snr_db, mean_tries, **kwargs) -> FitResult:
    """Fit the paper's Eq. 7: regress (N̄_tries − 1) on the family."""
    tries = np.asarray(mean_tries, dtype=float)
    return fit_exponential_family(payload_bytes, snr_db, tries - 1.0, **kwargs)


def fit_plr_radio_model(
    payload_bytes, snr_db, plr_values, n_max_tries, **kwargs
) -> FitResult:
    """Fit the paper's Eq. 8: regress PLR^(1/N) on the family.

    ``n_max_tries`` may be a scalar or an array aligned with the
    observations.
    """
    plr = np.asarray(plr_values, dtype=float).reshape(-1)
    n = np.broadcast_to(
        np.asarray(n_max_tries, dtype=float), plr.shape
    ).astype(float)
    if np.any(n < 1):
        raise FittingError("n_max_tries values must be >= 1")
    with np.errstate(invalid="ignore"):
        base = np.where(plr > 0, plr ** (1.0 / n), np.nan)
    return fit_exponential_family(payload_bytes, snr_db, base, **kwargs)
