"""The paper's SNR zones (Sec. III-B).

Two classifications coexist in the paper:

* the classical **grey zone** picture: below ~5 dB the link is essentially
  dead, 5–12 dB is the lossy transition ("grey zone"), above 12 dB the link
  is in the low-loss zone;
* the **joint-effect zones of PER** derived from Fig. 6(d): the high-impact
  zone (5–12 dB) where PER is high and strongly payload-dependent, the
  medium-impact zone (12–19 dB) where PER is low but still payload-sensitive,
  and the low-impact zone (≥ 19 dB) where neither SNR nor payload matters
  much.

Both are exposed because the guidelines reference both vocabularies.
"""

from __future__ import annotations

import enum

from . import constants

__all__ = [
    "JointEffectZone",
    "classify_snr",
    "in_grey_zone",
    "in_low_loss_zone",
    "snr_margin_over_grey_zone",
    "zone_boundaries_db",
]


class JointEffectZone(enum.Enum):
    """The three joint-effect zones of PER from Fig. 6(d)."""

    #: SNR below the grey zone: the link barely works at all.
    DEAD = "dead"
    #: 5–12 dB: highest PER, dramatic payload dependence.
    HIGH_IMPACT = "high-impact"
    #: 12–19 dB: low PER but still significantly payload-dependent.
    MEDIUM_IMPACT = "medium-impact"
    #: ≥ 19 dB: PER small and insensitive to both SNR and payload.
    LOW_IMPACT = "low-impact"


def classify_snr(snr_db: float) -> JointEffectZone:
    """Which joint-effect zone an SNR value falls into."""
    if snr_db < constants.GREY_ZONE_LOW_DB:
        return JointEffectZone.DEAD
    if snr_db < constants.GREY_ZONE_HIGH_DB:
        return JointEffectZone.HIGH_IMPACT
    if snr_db < constants.LOW_IMPACT_SNR_DB:
        return JointEffectZone.MEDIUM_IMPACT
    return JointEffectZone.LOW_IMPACT


def in_grey_zone(snr_db: float) -> bool:
    """Whether the link is in the grey zone (5–12 dB)."""
    return constants.GREY_ZONE_LOW_DB <= snr_db < constants.GREY_ZONE_HIGH_DB


def in_low_loss_zone(snr_db: float) -> bool:
    """Whether the link is past the grey-zone border (≥ 12 dB)."""
    return snr_db >= constants.GREY_ZONE_HIGH_DB


def snr_margin_over_grey_zone(snr_db: float) -> float:
    """SNR headroom above the grey-zone border (negative inside/below it).

    The paper's headline trade-off finding is that the best-trade-off SNR is
    *up to 7 dB above* this border for maximum-size packets.
    """
    return snr_db - constants.GREY_ZONE_HIGH_DB


def zone_boundaries_db() -> tuple:
    """The (grey-low, grey-high, low-impact) boundaries in dB."""
    return (
        constants.GREY_ZONE_LOW_DB,
        constants.GREY_ZONE_HIGH_DB,
        constants.LOW_IMPACT_SNR_DB,
    )
