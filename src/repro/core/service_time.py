"""Empirical service-time model — the paper's Eqs. 5–6.

The service time of a packet (entering the MAC to leaving it) decomposes as

* delivered within the budget (Eq. 5):
  ``T = T_SPI + T_succ + (N_tries − 1) · T_retry``
* budget exhausted (Eq. 6):
  ``T = T_SPI + T_fail + (N_maxTries − 1) · T_retry``

with ``T_succ = T_MAC + T_frame + T_ACK``, ``T_fail = T_MAC + T_frame +
T_waitACK`` and ``T_retry = D_retry + T_MAC + T_frame + T_waitACK``.

Three summary forms are provided:

* :meth:`ServiceTimeModel.paper_service_time_s` — the paper's own closed
  form, plugging the *unbounded* N̄_tries of Eq. 7 into Eq. 5 (this is what
  reproduces Table II);
* :meth:`ServiceTimeModel.mean_service_time_s` — the exact expectation under
  a truncated-geometric attempt process, which is what the event simulator
  realizes;
* :meth:`ServiceTimeModel.service_time_given_tries_s` — Eqs. 5–6 verbatim
  for a known attempt count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from ..radio.timing import AttemptTimes
from .ntries_model import NtriesModel, truncated_geometric_mean_tries
from .per_model import PerModel

__all__ = [
    "ServiceTimeModel",
]


@dataclass(frozen=True)
class ServiceTimeModel:
    """Eqs. 5–6 parameterized by the PER and N_tries models."""

    per_model: PerModel = field(default_factory=PerModel)
    ntries_model: NtriesModel = field(default_factory=NtriesModel)

    def attempt_times(self, payload_bytes: int, d_retry_ms: float) -> AttemptTimes:
        """The per-attempt timing terms for this payload/retry delay."""
        return AttemptTimes(payload_bytes=payload_bytes, d_retry_s=d_retry_ms / 1e3)

    def service_time_given_tries_s(
        self,
        payload_bytes: int,
        n_tries: int,
        n_max_tries: int,
        d_retry_ms: float,
        delivered: bool,
    ) -> float:
        """Eqs. 5–6 verbatim for a known attempt count."""
        if n_tries < 1:
            raise ModelError(f"n_tries must be >= 1, got {n_tries!r}")
        if n_tries > n_max_tries:
            raise ModelError(
                f"n_tries {n_tries} exceeds the budget {n_max_tries}"
            )
        times = self.attempt_times(payload_bytes, d_retry_ms)
        if delivered:
            return times.t_spi + times.t_succ + (n_tries - 1) * times.t_retry
        return times.t_spi + times.t_fail + (n_max_tries - 1) * times.t_retry

    def paper_service_time_s(
        self,
        payload_bytes: int,
        snr_db,
        d_retry_ms: float,
    ):
        """The paper's closed form: Eq. 5 with Eq. 7's unbounded N̄_tries.

        Vectorized over ``snr_db``. This is the form behind Table II.
        """
        times = self.attempt_times(payload_bytes, d_retry_ms)
        n_bar = self.ntries_model.expected_tries(payload_bytes, snr_db)
        value = times.t_spi + times.t_succ + (np.asarray(n_bar) - 1.0) * times.t_retry
        return float(value) if np.ndim(snr_db) == 0 else value

    def mean_service_time_s(
        self,
        payload_bytes: int,
        snr_db,
        n_max_tries: int,
        d_retry_ms: float,
    ):
        """Exact expectation under truncated-geometric attempts.

        ``E[T] = T_SPI + E[N] · (T_MAC + T_frame) + (E[N] − 1) · D_retry
        + P_succ · T_ACK + (E[N] − P_succ) · T_waitACK`` where every attempt
        except the final successful one ends in a full ACK wait.
        """
        if n_max_tries < 1:
            raise ModelError(f"n_max_tries must be >= 1, got {n_max_tries!r}")
        times = self.attempt_times(payload_bytes, d_retry_ms)
        per = np.asarray(self.per_model.per(payload_bytes, snr_db), dtype=float)
        expected_n = truncated_geometric_mean_tries(per, n_max_tries)
        p_succ = 1.0 - per**n_max_tries
        core_attempt = times.t_mac + times.t_frame
        ack_time = times.t_succ - core_attempt  # T_ACK
        wait_time = times.t_fail - core_attempt  # T_waitACK
        value = (
            times.t_spi
            + expected_n * core_attempt
            + (expected_n - 1.0) * (d_retry_ms / 1e3)
            + p_succ * ack_time
            + (expected_n - p_succ) * wait_time
        )
        return float(value) if np.ndim(snr_db) == 0 else value

    def saturated_throughput_packets_per_s(
        self,
        payload_bytes: int,
        snr_db: float,
        n_max_tries: int,
        d_retry_ms: float,
    ) -> float:
        """Back-to-back packet service rate, 1 / E[T]."""
        return 1.0 / self.mean_service_time_s(
            payload_bytes, snr_db, n_max_tries, d_retry_ms
        )
