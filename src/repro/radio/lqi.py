"""CC2420 Link Quality Indicator (LQI) model.

The paper's motes log LQI alongside RSSI for every received packet. The
CC2420 derives LQI from chip correlation quality; empirically it saturates
near 110 on strong links, falls roughly linearly with SNR through the grey
zone, and bottoms out around 50 at the decoding edge. We reproduce that
piecewise-linear envelope plus reader noise so campaign logs carry a
realistic LQI column.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LQI_MAX",
    "LQI_MIN",
    "SNR_SATURATION_DB",
    "SNR_FLOOR_DB",
    "LQI_NOISE_STD",
    "mean_lqi",
    "sample_lqi",
]

#: LQI register ceiling on a clean link.
LQI_MAX = 110.0

#: LQI floor near the sensitivity threshold.
LQI_MIN = 50.0

#: SNR (dB) at and above which LQI saturates at LQI_MAX.
SNR_SATURATION_DB = 20.0

#: SNR (dB) at and below which LQI sits at LQI_MIN.
SNR_FLOOR_DB = 0.0

#: Standard deviation of per-reading LQI noise.
LQI_NOISE_STD = 2.0


def mean_lqi(snr_db):
    """Expected LQI for a given SNR (dB); vectorized, clipped to range."""
    snr = np.asarray(snr_db, dtype=float)
    slope = (LQI_MAX - LQI_MIN) / (SNR_SATURATION_DB - SNR_FLOOR_DB)
    lqi = LQI_MIN + slope * (snr - SNR_FLOOR_DB)
    result = np.clip(lqi, LQI_MIN, LQI_MAX)
    return float(result) if np.ndim(snr_db) == 0 else result


def sample_lqi(snr_db, rng: np.random.Generator):
    """One noisy LQI reading per SNR value, rounded to the integer register."""
    base = mean_lqi(snr_db)
    noisy = base + rng.normal(0.0, LQI_NOISE_STD, size=np.shape(snr_db) or None)
    clipped = np.clip(np.round(noisy), LQI_MIN, LQI_MAX)
    return float(clipped) if np.ndim(snr_db) == 0 else clipped.astype(int)
