"""Bit- and frame-error models for the simulated CC2420 link.

The ground truth of the reproduction needs a mapping from instantaneous SNR
(dB) and frame length to a frame-error probability. Two models are provided:

:class:`EmpiricalExpBer`
    Per-bit error probability ``p = a · exp(b · SNR_dB)`` (clamped to 0.5).
    For a frame of ``L`` bits, ``PER = 1 − (1 − p)^L``, whose small-PER
    expansion is ``PER ≈ L · a · exp(b · SNR)`` — exactly the functional form
    the paper fits in Eq. 3 (``PER = α · l_D · exp(β · SNR)``). The default
    coefficients are calibrated so that running the paper's campaign on this
    ground truth and re-fitting Eq. 3 recovers α ≈ 0.0128, β ≈ −0.15. This is
    the *default* channel behaviour: the paper reports smooth exponential PER
    decay (Fig. 6a–b), not a sharp cliff.

:class:`AnalyticOQPSKBer`
    The textbook IEEE 802.15.4 2.4 GHz O-QPSK/DSSS bit-error rate, offset by
    an implementation-loss term. It produces the "sharp cliff" transition
    that the paper says *prior* studies observed, and is kept as an ablation
    (``benchmarks/bench_ablation_ber.py``) to show why the empirical model
    was needed.

All methods accept scalars or numpy arrays of SNR values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import RadioError

__all__ = [
    "MAX_BIT_ERROR",
    "BitErrorModel",
    "EmpiricalExpBer",
    "AnalyticOQPSKBer",
    "DEFAULT_BER_MODEL",
]

#: Largest meaningful per-bit error probability (random guessing).
MAX_BIT_ERROR = 0.5


class BitErrorModel:
    """Base class: maps SNR (dB) to bit- and frame-error probabilities."""

    def bit_error_probability(self, snr_db):
        """Per-bit error probability at the given SNR (dB). Vectorized."""
        raise NotImplementedError

    def frame_error_probability(self, snr_db, frame_bytes: int):
        """Probability that a ``frame_bytes``-byte frame is corrupted.

        Assumes independent bit errors within the frame:
        ``PER = 1 − (1 − p_bit)^(8·frame_bytes)``.
        """
        if frame_bytes <= 0:
            raise RadioError(f"frame_bytes must be positive, got {frame_bytes!r}")
        p_bit = self.bit_error_probability(snr_db)
        n_bits = 8 * frame_bytes
        # log1p keeps precision for tiny p_bit over a thousand bits.
        return -np.expm1(n_bits * np.log1p(-np.asarray(p_bit, dtype=float)))

    def frame_success_probability(self, snr_db, frame_bytes: int):
        """Complement of :meth:`frame_error_probability`."""
        return 1.0 - self.frame_error_probability(snr_db, frame_bytes)


@dataclass(frozen=True)
class EmpiricalExpBer(BitErrorModel):
    """Exponential-in-dB per-bit error model (default ground truth).

    Parameters
    ----------
    coefficient:
        ``a`` in ``p = a · exp(b · SNR_dB)``. The default 0.0015 together
        with the 19-byte frame overhead reproduces the paper's fitted
        α ≈ 0.0128 (per payload byte) and its ≈0.1 PER for maximum-size
        frames at the 19 dB low-impact border.
    exponent_per_db:
        ``b`` (negative). The default −0.15 matches the paper's β.
    """

    coefficient: float = 0.0015
    exponent_per_db: float = -0.15

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise RadioError(
                f"coefficient must be positive, got {self.coefficient!r}"
            )
        if self.exponent_per_db >= 0:
            raise RadioError(
                "exponent_per_db must be negative (errors decrease with SNR), "
                f"got {self.exponent_per_db!r}"
            )

    def bit_error_probability(self, snr_db):
        snr = np.asarray(snr_db, dtype=float)
        p = self.coefficient * np.exp(self.exponent_per_db * snr)
        result = np.minimum(p, MAX_BIT_ERROR)
        return float(result) if np.ndim(snr_db) == 0 else result


@dataclass(frozen=True)
class AnalyticOQPSKBer(BitErrorModel):
    """Analytic O-QPSK/DSSS BER for IEEE 802.15.4 at 2.4 GHz.

    ``BER = (8/15) · (1/16) · Σ_{k=2}^{16} (−1)^k · C(16, k) ·
    exp(20 · γ · (1/k − 1))`` with γ the linear SINR (Goyal et al. / the
    802.15.4 standard's Annex E model).

    Parameters
    ----------
    implementation_loss_db:
        Subtracted from the nominal SNR before evaluating the formula. Real
        CC2420 links need substantially more SNR than theory; the paper's
        grey zone sits at 5–12 dB whereas the pristine formula transitions
        around 0–3 dB. The default of 10 dB shifts the analytic cliff into
        the measured region.
    """

    implementation_loss_db: float = 10.0

    # C(16, k) · (−1)^k for k = 2..16, precomputed.
    _TERMS = tuple(
        ((-1) ** k) * math.comb(16, k) for k in range(2, 17)
    )

    def bit_error_probability(self, snr_db):
        snr = np.asarray(snr_db, dtype=float) - self.implementation_loss_db
        gamma = 10.0 ** (snr / 10.0)
        acc = np.zeros_like(gamma)
        for i, coeff in enumerate(self._TERMS):
            k = i + 2
            acc = acc + coeff * np.exp(20.0 * gamma * (1.0 / k - 1.0))
        ber = (8.0 / 15.0) * (1.0 / 16.0) * acc
        result = np.clip(ber, 0.0, MAX_BIT_ERROR)
        return float(result) if np.ndim(snr_db) == 0 else result


#: Model used by the default environments.
DEFAULT_BER_MODEL = EmpiricalExpBer()
