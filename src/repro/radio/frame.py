"""IEEE 802.15.4 frame layout as used by the TinyOS 2.1 CC2420 stack.

The paper's Eq. 2 writes the transmitted frame as ``l_0 + l_D`` where ``l_D``
is the application payload and ``l_0`` the stack overhead. With the TinyOS
CC2420 stack the overhead decomposes as:

* PHY synchronization header: 4-byte preamble + 1-byte SFD + 1-byte length
  field = 6 bytes (sent on air, not counted in the 127-byte MPDU limit);
* MAC header: 2-byte FCF + 1-byte sequence number + 2-byte destination PAN +
  2-byte destination address + 2-byte source address + 1-byte TinyOS
  T-frame network dispatch byte + 1-byte AM type (active message id)
  = 11 bytes;
* MAC footer: 2-byte FCS (CRC-16);

so the MPDU overhead is 13 bytes, the maximum payload is 127 − 13 = 114
bytes — exactly the paper's "maximum payload size (114 bytes) in our radio
stack" — and the full air overhead ``l_0`` is 19 bytes.

An acknowledgement frame is a 5-byte MPDU (FCF + seq + FCS) plus the 6-byte
PHY header = 11 bytes on air.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RadioError
from . import cc2420

__all__ = [
    "PHY_HEADER_BYTES",
    "MAC_HEADER_BYTES",
    "MAC_FOOTER_BYTES",
    "MPDU_OVERHEAD_BYTES",
    "DATA_FRAME_OVERHEAD_BYTES",
    "MAX_MPDU_BYTES",
    "MAX_PAYLOAD_BYTES",
    "ACK_FRAME_BYTES",
    "DataFrame",
    "frame_air_bytes",
    "frame_air_time_s",
    "ack_air_time_s",
]

#: PHY synchronisation header: preamble(4) + SFD(1) + length(1), bytes.
PHY_HEADER_BYTES = 6

#: MAC header bytes (FCF 2, seq 1, dst PAN 2, dst 2, src 2, network 1, AM 1).
MAC_HEADER_BYTES = 11

#: MAC footer bytes (FCS / CRC-16).
MAC_FOOTER_BYTES = 2

#: MPDU overhead (header + footer), bytes.
MPDU_OVERHEAD_BYTES = MAC_HEADER_BYTES + MAC_FOOTER_BYTES

#: Total on-air overhead l_0 for a data frame (PHY + MPDU overhead), bytes.
DATA_FRAME_OVERHEAD_BYTES = PHY_HEADER_BYTES + MPDU_OVERHEAD_BYTES

#: Maximum MPDU size allowed by IEEE 802.15.4, bytes.
MAX_MPDU_BYTES = 127

#: Maximum application payload, bytes (= 127 − 13 = 114).
MAX_PAYLOAD_BYTES = MAX_MPDU_BYTES - MPDU_OVERHEAD_BYTES

#: On-air size of an acknowledgement frame, bytes.
ACK_FRAME_BYTES = PHY_HEADER_BYTES + 5


@dataclass(frozen=True)
class DataFrame:
    """An 802.15.4 data frame carrying ``payload_bytes`` of application data."""

    payload_bytes: int

    def __post_init__(self) -> None:
        if not 0 <= self.payload_bytes <= MAX_PAYLOAD_BYTES:
            raise RadioError(
                f"payload must be in [0, {MAX_PAYLOAD_BYTES}] bytes, "
                f"got {self.payload_bytes!r}"
            )

    @property
    def mpdu_bytes(self) -> int:
        """MPDU size (what the 1-byte PHY length field counts)."""
        return self.payload_bytes + MPDU_OVERHEAD_BYTES

    @property
    def air_bytes(self) -> int:
        """Total bytes on air: l_0 + l_D."""
        return self.payload_bytes + DATA_FRAME_OVERHEAD_BYTES

    @property
    def air_bits(self) -> int:
        """Total bits on air."""
        return self.air_bytes * 8

    @property
    def air_time_s(self) -> float:
        """Transmission time of the frame at the 250 kb/s PHY rate (T_frame)."""
        return self.air_bits / cc2420.DATA_RATE_BPS

    @property
    def overhead_ratio(self) -> float:
        """Fraction of on-air bytes that are overhead, in [0, 1]."""
        return DATA_FRAME_OVERHEAD_BYTES / self.air_bytes


def frame_air_bytes(payload_bytes: int) -> int:
    """On-air bytes for a data frame with the given payload (l_0 + l_D)."""
    return DataFrame(payload_bytes).air_bytes


def frame_air_time_s(payload_bytes: int) -> float:
    """On-air transmission time for a data frame with the given payload."""
    return DataFrame(payload_bytes).air_time_s


def ack_air_time_s() -> float:
    """On-air transmission time for an acknowledgement frame."""
    return ACK_FRAME_BYTES * 8 / cc2420.DATA_RATE_BPS
