"""TI CC2420 radio constants, from the datasheet and the paper.

The paper's motes are TelosB boards whose CC2420 transceiver implements the
IEEE 802.15.4 PHY at 2.4 GHz: 250 kb/s O-QPSK with DSSS (2 Mchip/s, 62.5
ksymbol/s, 4 bits/symbol). The transmit power is programmed through the 5-bit
``PA_LEVEL`` register field; the paper sweeps the 8 levels {3, 7, ..., 31}.

Output power and current draw per level are taken from the CC2420 datasheet
(Table 9); intermediate levels not listed in the datasheet are interpolated
once here and frozen as constants so the whole library agrees on them.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import RadioError

__all__ = [
    "DATA_RATE_BPS",
    "SYMBOL_RATE_SPS",
    "SYMBOL_TIME_S",
    "CHIP_RATE_CPS",
    "SENSITIVITY_DBM",
    "RSSI_MIN_DBM",
    "RSSI_MAX_DBM",
    "SUPPLY_VOLTAGE_V",
    "RX_CURRENT_A",
    "IDLE_CURRENT_A",
    "SLEEP_CURRENT_A",
    "PA_TABLE",
    "PA_LEVELS",
    "output_power_dbm",
    "tx_current_a",
    "tx_power_w",
    "tx_energy_per_bit_j",
    "rx_power_w",
    "nearest_pa_level",
    "clamp_rssi",
]

#: PHY data rate (bits per second).
DATA_RATE_BPS = 250_000

#: Symbol rate (symbols per second); one symbol carries 4 bits.
SYMBOL_RATE_SPS = 62_500

#: Duration of one 802.15.4 symbol in seconds (16 µs).
SYMBOL_TIME_S = 1.0 / SYMBOL_RATE_SPS

#: Chip rate of the DSSS spreading (chips per second).
CHIP_RATE_CPS = 2_000_000

#: Receiver sensitivity (dBm): below this RSSI nothing is decodable.
SENSITIVITY_DBM = -95.0

#: RSSI register saturation range of the CC2420 (dBm).
RSSI_MIN_DBM = -100.0
RSSI_MAX_DBM = 0.0

#: Radio supply voltage (V) used for energy accounting. The CC2420 core runs
#: at 1.8 V (on-chip regulator); the paper's Table IV energy figures
#: (e.g. 0.35 µJ/bit at P_tx = 31 with PER ≈ 0.59) back-solve to
#: E_tx ≈ 0.125 µJ/bit = 1.8 V × 17.4 mA / 250 kb/s, confirming 1.8 V.
SUPPLY_VOLTAGE_V = 1.8

#: Receive-mode current draw (A).
RX_CURRENT_A = 18.8e-3

#: Idle-mode current draw (A).
IDLE_CURRENT_A = 426e-6

#: Power-down current draw (A).
SLEEP_CURRENT_A = 20e-6

#: CC2420 PA_LEVEL -> (output power dBm, TX current A).
#:
#: Levels 31/27/23/19/15/11/7/3 map to 0/-1/-3/-5/-7/-10/-15/-25 dBm with the
#: datasheet currents 17.4/16.5/15.2/13.9/12.5/11.2/9.9/8.5 mA.
PA_TABLE: Dict[int, Tuple[float, float]] = {
    31: (0.0, 17.4e-3),
    27: (-1.0, 16.5e-3),
    23: (-3.0, 15.2e-3),
    19: (-5.0, 13.9e-3),
    15: (-7.0, 12.5e-3),
    11: (-10.0, 11.2e-3),
    7: (-15.0, 9.9e-3),
    3: (-25.0, 8.5e-3),
}

#: All valid PA levels, ascending.
PA_LEVELS: Tuple[int, ...] = tuple(sorted(PA_TABLE))


def output_power_dbm(pa_level: int) -> float:
    """Programmed output power in dBm for a PA_LEVEL register value."""
    try:
        return PA_TABLE[pa_level][0]
    except KeyError:
        raise RadioError(
            f"unknown CC2420 PA_LEVEL {pa_level!r}; valid levels: {PA_LEVELS}"
        ) from None


def tx_current_a(pa_level: int) -> float:
    """Transmit-mode current draw in amperes for a PA_LEVEL value."""
    try:
        return PA_TABLE[pa_level][1]
    except KeyError:
        raise RadioError(
            f"unknown CC2420 PA_LEVEL {pa_level!r}; valid levels: {PA_LEVELS}"
        ) from None


def tx_power_w(pa_level: int) -> float:
    """Electrical power drawn by the radio while transmitting (watts)."""
    return SUPPLY_VOLTAGE_V * tx_current_a(pa_level)


def tx_energy_per_bit_j(pa_level: int) -> float:
    """Energy to transmit one bit over the air at the given power level.

    This is the paper's ``E_tx`` (Eq. 2): supply power divided by the PHY
    data rate. At PA_LEVEL 31 this is 3 V × 17.4 mA / 250 kb/s ≈ 0.209 µJ/bit.
    """
    return tx_power_w(pa_level) / DATA_RATE_BPS


def rx_power_w() -> float:
    """Electrical power drawn while receiving/listening (watts)."""
    return SUPPLY_VOLTAGE_V * RX_CURRENT_A


def nearest_pa_level(power_dbm: float) -> int:
    """The PA_LEVEL whose output power is closest to ``power_dbm``.

    Ties resolve to the lower (cheaper) level.
    """
    return min(
        PA_LEVELS,
        key=lambda lvl: (abs(PA_TABLE[lvl][0] - power_dbm), lvl),
    )


def clamp_rssi(rssi_dbm: float) -> float:
    """Clamp an RSSI reading to the CC2420 register range.

    The paper notes that at 35 m with PA_LEVEL 3 the measured RSSI deviation
    collapses because readings sit at the sensitivity floor; this clamp is
    what produces that effect in the simulated link.
    """
    return max(RSSI_MIN_DBM, min(RSSI_MAX_DBM, rssi_dbm))
