"""Radio substrate: CC2420 constants, 802.15.4 framing, BER, timing, energy.

This subpackage reconstructs the platform layer the paper's measurements ran
on — a TelosB mote's CC2420 transceiver driven by the TinyOS 2.1 stack. The
numeric constants come from the CC2420 datasheet and from the timing values
the paper reports in its service-time model (Sec. V-B).
"""

from .ber import AnalyticOQPSKBer, BitErrorModel, DEFAULT_BER_MODEL, EmpiricalExpBer
from .cc2420 import (
    DATA_RATE_BPS,
    PA_LEVELS,
    PA_TABLE,
    SENSITIVITY_DBM,
    clamp_rssi,
    nearest_pa_level,
    output_power_dbm,
    tx_current_a,
    tx_energy_per_bit_j,
)
from .energy import EnergyMeter, ack_rx_energy_j, tx_energy_j
from .frame import (
    ACK_FRAME_BYTES,
    DATA_FRAME_OVERHEAD_BYTES,
    MAX_PAYLOAD_BYTES,
    DataFrame,
    ack_air_time_s,
    frame_air_bytes,
    frame_air_time_s,
)
from .lqi import mean_lqi, sample_lqi
from .timing import (
    ACK_TIME_S,
    ACK_WAIT_TIMEOUT_S,
    MAX_INITIAL_BACKOFF_S,
    MEAN_INITIAL_BACKOFF_S,
    TURNAROUND_TIME_S,
    AttemptTimes,
    mac_delay_s,
    spi_load_time_s,
)

__all__ = [
    "ACK_FRAME_BYTES",
    "ACK_TIME_S",
    "ACK_WAIT_TIMEOUT_S",
    "AnalyticOQPSKBer",
    "AttemptTimes",
    "BitErrorModel",
    "DATA_FRAME_OVERHEAD_BYTES",
    "DATA_RATE_BPS",
    "DEFAULT_BER_MODEL",
    "DataFrame",
    "EmpiricalExpBer",
    "EnergyMeter",
    "MAX_INITIAL_BACKOFF_S",
    "MAX_PAYLOAD_BYTES",
    "MEAN_INITIAL_BACKOFF_S",
    "PA_LEVELS",
    "PA_TABLE",
    "SENSITIVITY_DBM",
    "TURNAROUND_TIME_S",
    "ack_air_time_s",
    "ack_rx_energy_j",
    "clamp_rssi",
    "frame_air_bytes",
    "frame_air_time_s",
    "mac_delay_s",
    "mean_lqi",
    "nearest_pa_level",
    "output_power_dbm",
    "sample_lqi",
    "spi_load_time_s",
    "tx_current_a",
    "tx_energy_j",
    "tx_energy_per_bit_j",
]
