"""Energy accounting for the simulated radio.

Two levels of fidelity are provided:

* :func:`tx_energy_j` — the paper's accounting: only transmit energy, computed
  from the datasheet TX current at the configured PA level and the on-air
  frame time. This is what the paper's Eq. 2 (``U_eng``) is built from and is
  what the campaign's energy metric reports by default.

* :class:`EnergyMeter` — an extended accumulator that also tracks receive/
  listen energy (ACK waits), SPI transfers, and idle time, for the richer
  "energy budget" breakdowns used by the extension benchmarks. The paper
  explicitly scopes its model to TX energy, so the extras default to off in
  metric computation but are recorded when available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import RadioError
from . import cc2420
from . import frame as frame_mod

__all__ = [
    "tx_energy_j",
    "ack_rx_energy_j",
    "EnergyMeter",
]


def tx_energy_j(pa_level: int, payload_bytes: int, n_transmissions: int = 1) -> float:
    """Transmit energy in joules for ``n_transmissions`` of one data frame.

    ``E = E_tx_per_bit(P_tx) × 8 × (l_0 + l_D) × n``.
    """
    if n_transmissions < 0:
        raise RadioError(
            f"n_transmissions must be >= 0, got {n_transmissions!r}"
        )
    bits = frame_mod.frame_air_bytes(payload_bytes) * 8
    return cc2420.tx_energy_per_bit_j(pa_level) * bits * n_transmissions


def ack_rx_energy_j() -> float:
    """Energy spent receiving one ACK frame (joules)."""
    return cc2420.rx_power_w() * frame_mod.ack_air_time_s()


@dataclass
class EnergyMeter:
    """Accumulates a per-node energy budget, by component.

    Components: ``tx`` (frame transmissions), ``rx`` (ACK/frame reception),
    ``listen`` (idle listening while waiting for ACKs), ``spi`` (bus
    transfers, drawn at idle current), ``idle`` (everything else).
    """

    tx_j: float = 0.0
    rx_j: float = 0.0
    listen_j: float = 0.0
    spi_j: float = 0.0
    idle_j: float = 0.0
    #: Total payload bits successfully delivered, for per-bit normalization.
    delivered_info_bits: int = 0

    def record_tx(self, pa_level: int, payload_bytes: int) -> float:
        """Record one frame transmission; returns the energy added (J)."""
        energy = tx_energy_j(pa_level, payload_bytes, 1)
        self.tx_j += energy
        return energy

    def record_ack_rx(self) -> float:
        """Record reception of one ACK frame; returns the energy added (J)."""
        energy = ack_rx_energy_j()
        self.rx_j += energy
        return energy

    def record_listen(self, duration_s: float) -> float:
        """Record radio-on listening time (e.g. an ACK wait window)."""
        if duration_s < 0:
            raise RadioError(f"listen duration must be >= 0, got {duration_s!r}")
        energy = cc2420.rx_power_w() * duration_s
        self.listen_j += energy
        return energy

    def record_spi(self, duration_s: float) -> float:
        """Record an SPI transfer (MCU+radio at idle-level draw)."""
        if duration_s < 0:
            raise RadioError(f"SPI duration must be >= 0, got {duration_s!r}")
        energy = cc2420.SUPPLY_VOLTAGE_V * cc2420.IDLE_CURRENT_A * duration_s
        self.spi_j += energy
        return energy

    def record_idle(self, duration_s: float) -> float:
        """Record idle (radio off / MCU sleep-ish) time."""
        if duration_s < 0:
            raise RadioError(f"idle duration must be >= 0, got {duration_s!r}")
        energy = cc2420.SUPPLY_VOLTAGE_V * cc2420.SLEEP_CURRENT_A * duration_s
        self.idle_j += energy
        return energy

    def record_delivery(self, payload_bytes: int) -> None:
        """Credit successful delivery of one packet's payload."""
        self.delivered_info_bits += payload_bytes * 8

    @property
    def total_j(self) -> float:
        """Total accumulated energy across all components (joules)."""
        return self.tx_j + self.rx_j + self.listen_j + self.spi_j + self.idle_j

    @property
    def tx_only_per_info_bit_j(self) -> float:
        """The paper's U_eng measured: TX energy per delivered payload bit.

        Returns ``inf`` when nothing was delivered (matches the model: a
        fully lossy link has unbounded energy per delivered bit).
        """
        if self.delivered_info_bits == 0:
            return float("inf")
        return self.tx_j / self.delivered_info_bits

    @property
    def total_per_info_bit_j(self) -> float:
        """Full-budget energy per delivered payload bit (joules/bit)."""
        if self.delivered_info_bits == 0:
            return float("inf")
        return self.total_j / self.delivered_info_bits

    def breakdown(self) -> Dict[str, float]:
        """Energy by component (joules)."""
        return {
            "tx": self.tx_j,
            "rx": self.rx_j,
            "listen": self.listen_j,
            "spi": self.spi_j,
            "idle": self.idle_j,
        }
