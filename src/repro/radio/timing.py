"""TinyOS 2.1 / CC2420 MAC timing constants and helpers.

These are the timing terms of the paper's service-time model (Sec. V-B):

* ``T_SPI``  — one-time SPI bus loading of the data frame into the radio;
* ``T_frame`` — on-air transmission time of the frame (see ``frame.py``);
* ``T_MAC = T_TR + T_BO`` — turnaround time plus initial CSMA backoff;
* ``T_ACK`` — acknowledgement reception time (measured, 1.96 ms);
* ``T_waitACK`` — software ACK wait timeout (8.192 ms).

The paper gives T_TR = 0.224 ms, mean T_BO = 5.28 ms, T_ACK ≈ 1.96 ms and
T_waitACK = 8.192 ms; we adopt these values verbatim. T_SPI is not given
numerically, but it can be back-solved from the paper's Table II: at SNR
30 dB (N_tries ≈ 1) the reported T_service of 18.52 ms for a 110-byte
payload leaves T_SPI = 18.52 − (T_MAC + T_frame + T_ACK) ≈ 6.45 ms for the
129-byte frame, i.e. 50 µs per byte — consistent with TinyOS 2.1's
interrupt-driven byte-at-a-time SPI driver on the TelosB. We adopt exactly
50 µs/byte so the service-time model reproduces Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import frame as frame_mod

__all__ = [
    "TURNAROUND_TIME_S",
    "MEAN_INITIAL_BACKOFF_S",
    "MAX_INITIAL_BACKOFF_S",
    "ACK_TIME_S",
    "ACK_WAIT_TIMEOUT_S",
    "SPI_SECONDS_PER_BYTE",
    "spi_load_time_s",
    "mac_delay_s",
    "AttemptTimes",
]

#: Radio turnaround time T_TR (s): 0.224 ms per the paper.
TURNAROUND_TIME_S = 0.224e-3

#: Mean initial CSMA backoff T_BO (s): 5.28 ms per the paper.
MEAN_INITIAL_BACKOFF_S = 5.28e-3

#: Maximum initial backoff (s); uniform backoff on [0, max] has the paper's
#: mean of 5.28 ms.
MAX_INITIAL_BACKOFF_S = 2 * MEAN_INITIAL_BACKOFF_S

#: ACK frame reception time T_ACK (s): 1.96 ms per the paper's prior tests.
ACK_TIME_S = 1.96e-3

#: Software ACK wait timeout T_waitACK (s): 8.192 ms per the paper.
ACK_WAIT_TIMEOUT_S = 8.192e-3

#: SPI transfer cost per frame byte (s/byte), back-solved from Table II.
SPI_SECONDS_PER_BYTE = 50e-6


def spi_load_time_s(payload_bytes: int) -> float:
    """T_SPI: time to load a data frame over the SPI bus (seconds)."""
    return frame_mod.frame_air_bytes(payload_bytes) * SPI_SECONDS_PER_BYTE


def mac_delay_s(backoff_s: float = MEAN_INITIAL_BACKOFF_S) -> float:
    """T_MAC = T_TR + T_BO for a given (or mean) backoff draw."""
    return TURNAROUND_TIME_S + backoff_s


@dataclass(frozen=True)
class AttemptTimes:
    """The per-attempt timing terms for one payload size.

    Mirrors the paper's T_succ / T_fail / T_retry decomposition (Sec. V-B):

    * ``t_succ  = T_MAC + T_frame + T_ACK``
    * ``t_fail  = T_MAC + T_frame + T_waitACK``
    * ``t_retry = D_retry + T_MAC + T_frame + T_waitACK``

    Mean backoff is used for T_MAC, matching how the paper's closed-form
    model treats the random backoff.
    """

    payload_bytes: int
    d_retry_s: float = 0.0

    @property
    def t_spi(self) -> float:
        return spi_load_time_s(self.payload_bytes)

    @property
    def t_frame(self) -> float:
        return frame_mod.frame_air_time_s(self.payload_bytes)

    @property
    def t_mac(self) -> float:
        return mac_delay_s()

    @property
    def t_succ(self) -> float:
        return self.t_mac + self.t_frame + ACK_TIME_S

    @property
    def t_fail(self) -> float:
        return self.t_mac + self.t_frame + ACK_WAIT_TIMEOUT_S

    @property
    def t_retry(self) -> float:
        return self.d_retry_s + self.t_mac + self.t_frame + ACK_WAIT_TIMEOUT_S
