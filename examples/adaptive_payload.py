"""Adaptive payload sizing under a time-varying link (Sec. IV-B's implication).

The paper observes that "adapting the payload size to the varying link
quality can be an efficient way to minimize energy consumption in dynamic
channel conditions" (Fig. 9). This example demonstrates exactly that: a
node walks away from its base station (the mobility extension), the link
SNR decays through the three joint-effect zones, and an adaptive sender
re-picks the energy-optimal payload from the empirical model each second —
versus a static sender locked to the maximum payload.

Run:  python examples/adaptive_payload.py
"""

import numpy as np

from repro.channel import HALLWAY_2012
from repro.core import EnergyModel, classify_snr
from repro.extensions import MobileLinkChannel, MobilityTrace
from repro.radio import cc2420, frame as frame_mod


def measure_energy_uj_per_bit(
    channel, payload_bytes, ptx_level, start_s, n_packets=300, spacing_s=0.01
):
    """TX energy per delivered payload bit over a burst of packets."""
    frame_bytes = frame_mod.frame_air_bytes(payload_bytes)
    e_tx_frame = cc2420.tx_energy_per_bit_j(ptx_level) * frame_bytes * 8
    energy = 0.0
    delivered_bits = 0
    for i in range(n_packets):
        outcome = channel.transmit_frame(start_s + i * spacing_s, frame_bytes)
        energy += e_tx_frame
        if outcome.delivered:
            delivered_bits += payload_bytes * 8
    if delivered_bits == 0:
        return float("inf")
    return energy / delivered_bits * 1e6


def main() -> None:
    # A battery-constrained node transmits at −10 dBm (level 11), so the
    # walk sweeps the link from the low-impact zone into the grey zone.
    ptx_level = 11
    walk = MobilityTrace.walk(start_m=5.0, end_m=95.0, duration_s=50.0)
    energy_model = EnergyModel()

    adaptive_channel = MobileLinkChannel(
        HALLWAY_2012, walk, ptx_level, np.random.default_rng(1)
    )
    static_channel = MobileLinkChannel(
        HALLWAY_2012, walk, ptx_level, np.random.default_rng(1)
    )

    print("node walks 5 m -> 95 m over 50 s at P_tx = 11 (-10 dBm)")
    print(f"{'t (s)':>6s} {'d (m)':>6s} {'SNR dB':>7s} {'zone':>14s} "
          f"{'adaptive l_D':>12s} {'adaptive uJ/b':>13s} {'static uJ/b':>12s}")

    totals = {"adaptive": [0.0, 0], "static": [0.0, 0]}
    grey_totals = {"adaptive": [0.0, 0], "static": [0.0, 0]}
    for t in range(0, 50, 5):
        distance = walk.distance_at(float(t))
        median_loss = HALLWAY_2012.pathloss.median_loss_db(distance)
        snr = (
            cc2420.output_power_dbm(ptx_level)
            - median_loss
            - HALLWAY_2012.noise.mean_dbm
        )
        # The adaptive sender re-picks the model-optimal payload for the
        # link quality it currently estimates.
        payload, _ = energy_model.optimal_payload_bytes(ptx_level, snr)
        u_adaptive = measure_energy_uj_per_bit(
            adaptive_channel, payload, ptx_level, start_s=float(t)
        )
        u_static = measure_energy_uj_per_bit(
            static_channel, 114, ptx_level, start_s=float(t)
        )
        print(f"{t:6d} {distance:6.1f} {snr:7.1f} "
              f"{classify_snr(snr).value:>14s} {payload:12d} "
              f"{u_adaptive:13.3f} {u_static:12.3f}")
        for name, u in (("adaptive", u_adaptive), ("static", u_static)):
            if np.isfinite(u):
                totals[name][0] += u
                totals[name][1] += 1
                if snr < 12.0:  # grey zone, where adaptation matters
                    grey_totals[name][0] += u
                    grey_totals[name][1] += 1

    mean_adaptive = totals["adaptive"][0] / totals["adaptive"][1]
    mean_static = totals["static"][0] / max(totals["static"][1], 1)
    print(f"\nmean U_eng over the whole walk: adaptive {mean_adaptive:.3f} "
          f"uJ/bit, static-114B {mean_static:.3f} uJ/bit")
    if grey_totals["adaptive"][1] and grey_totals["static"][1]:
        grey_adaptive = grey_totals["adaptive"][0] / grey_totals["adaptive"][1]
        grey_static = grey_totals["static"][0] / grey_totals["static"][1]
        saving = (1 - grey_adaptive / grey_static) * 100
        print(f"in the grey zone (SNR < 12 dB): adaptive {grey_adaptive:.3f} "
              f"vs static {grey_static:.3f} uJ/bit -> {saving:.0f}% saved")
        print("outside the grey zone both senders pick 114 B, as the paper's "
              "Fig. 9 predicts; the gain is concentrated where PER bites.")


if __name__ == "__main__":
    main()
