"""Quickstart: simulate one WSN link configuration and read its metrics.

Reproduces the paper's basic measurement unit (Sec. II-C): one stack
parameter configuration, one sender-receiver pair in the reconstructed
hallway, per-packet logging, aggregated into the four performance metrics
(energy, goodput, delay, loss).

Run:  python examples/quickstart.py
"""

from repro import StackConfig, compute_metrics, simulate_link
from repro.core import classify_snr


def main() -> None:
    # The 7 stack parameters of the paper's Table I.
    config = StackConfig(
        distance_m=35.0,     # PHY: node distance (the paper's weakest link)
        ptx_level=23,        # PHY: CC2420 PA_LEVEL (−3 dBm)
        n_max_tries=3,       # MAC: max transmissions
        d_retry_ms=0.0,      # MAC: retry delay
        q_max=30,            # MAC: transmit queue capacity
        t_pkt_ms=30.0,       # App: packet inter-arrival time
        payload_bytes=110,   # App: payload size l_D
    )

    print(f"simulating {config}")
    trace = simulate_link(config, n_packets=2000, seed=1)
    metrics = compute_metrics(trace)

    print(f"\nlink quality : {metrics.mean_snr_db:6.2f} dB mean SNR "
          f"({classify_snr(metrics.mean_snr_db).value} zone), "
          f"mean LQI {metrics.mean_lqi:.0f}")
    print(f"PER          : {metrics.per:6.4f}  (Eq. 1: unACKed/total tx)")
    print(f"goodput      : {metrics.goodput_kbps:6.2f} kb/s")
    print(f"delay        : {metrics.mean_delay_s * 1e3:6.2f} ms mean, "
          f"{metrics.p95_delay_s * 1e3:.2f} ms p95")
    print(f"loss         : {metrics.plr_total:6.4f} total "
          f"(radio {metrics.plr_radio:.4f}, queue {metrics.plr_queue:.4f})")
    print(f"energy       : {metrics.energy_per_info_bit_uj:6.4f} uJ per "
          f"delivered bit (U_eng)")
    print(f"transmissions: {metrics.mean_tries:6.3f} mean tries/packet, "
          f"{metrics.n_transmissions} total")

    # Per-packet records carry the same schema as the paper's public logs.
    sample = next(p for p in trace.packets if p.delivered)
    print(f"\nfirst delivered packet: seq={sample.seq} "
          f"tries={sample.n_tries} "
          f"queueing={sample.queueing_delay_s * 1e3:.2f} ms "
          f"service={sample.service_time_s * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
