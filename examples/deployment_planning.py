"""Deployment planning with the channel model and empirical models.

Before placing motes, a deployer wants to know: how far can a sensor sit
from its gateway at each power level, what does each placement cost in
energy, and where do the paper's SNR zones fall along the hallway? This
example answers those questions from the link budget and the empirical
models — no simulation needed — then spot-checks two placements with the
event simulator.

Run:  python examples/deployment_planning.py
"""

from repro import StackConfig, compute_metrics, simulate_link
from repro.channel import HALLWAY_2012, LinkBudget
from repro.core import EnergyModel, GoodputModel, classify_snr
from repro.core.constants import LOW_IMPACT_SNR_DB


def main() -> None:
    budget = LinkBudget(HALLWAY_2012)
    energy = EnergyModel()
    goodput = GoodputModel()

    # 1. Coverage: how far does each power level reach the low-impact zone?
    print(f"coverage for SNR >= {LOW_IMPACT_SNR_DB:.0f} dB "
          f"(the paper's best energy/QoS trade-off point):")
    coverage = budget.coverage_map(LOW_IMPACT_SNR_DB)
    for level, distance in sorted(coverage.items()):
        print(f"  P_tx {level:>2}: up to {distance:5.1f} m")

    # 2. Placement table: for a few candidate distances, the cheapest level
    #    reaching the low-impact zone and the predicted performance there.
    print(f"\n{'d (m)':>6} {'level':>6} {'SNR':>6} {'zone':>14} "
          f"{'U_eng uJ/b':>10} {'maxGoodput kb/s':>15}")
    placements = {}
    for distance in (10.0, 20.0, 30.0, 40.0, 55.0):
        level = budget.cheapest_level_for_snr(distance, LOW_IMPACT_SNR_DB)
        if level is None:
            level = 31  # fall back to max power, accept a worse zone
        row = budget.at(distance, level)
        u = energy.u_eng_uj_per_bit(level, 114, row.mean_snr_db)
        g = goodput.max_goodput_kbps(114, row.mean_snr_db, 3)
        placements[distance] = (level, row.mean_snr_db)
        print(f"{distance:>6.0f} {level:>6} {row.mean_snr_db:>6.1f} "
              f"{classify_snr(row.mean_snr_db).value:>14} {u:>10.3f} "
              f"{g:>15.2f}")

    # 3. Spot-check the nearest and farthest placements with the simulator.
    print("\nsimulator spot-checks (114 B, N=3, T_pkt=40 ms, 800 packets):")
    for distance in (10.0, 55.0):
        level, predicted_snr = placements[distance]
        config = StackConfig(
            distance_m=distance, ptx_level=level, n_max_tries=3, q_max=30,
            t_pkt_ms=40.0, payload_bytes=114,
        )
        metrics = compute_metrics(simulate_link(config, n_packets=800, seed=6))
        print(f"  {distance:4.0f} m @ P{level}: predicted SNR "
              f"{predicted_snr:5.1f} dB, measured {metrics.mean_snr_db:5.1f} dB"
              f" | goodput {metrics.goodput_kbps:5.2f} kb/s, "
              f"loss {metrics.plr_total:.4f}, "
              f"U_eng {metrics.energy_per_info_bit_uj:.3f} uJ/b")

    print("\nplanning rule of thumb, per the paper: place nodes (or pick "
          "power) so the link clears ~19 dB;")
    print("beyond the last coverage row, drop the payload size or add "
          "retransmissions per the grey-zone guidelines.")


if __name__ == "__main__":
    main()
