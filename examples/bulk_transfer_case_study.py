"""The paper's case study (Sec. VIII-C, Fig. 1, Table IV).

Scenario: an indoor sensor must bulk-transfer data to a base station in a
short time slot — maximize goodput, but the battery budget also demands low
energy per bit. The link sits deep in the grey zone at its default power
(SNR 3 dB at P_tx = 23, rising to 6 dB at P_tx = 31).

The example pits the single-parameter guidelines from the literature
([11] tune power, [6] tune retransmissions, [1] tune payload) against joint
multi-parameter optimization via the empirical models, then re-measures every
operating point with the event-driven simulator under saturating traffic.

Run:  python examples/bulk_transfer_case_study.py
"""

from repro.core.optimization import (
    joint_wins,
    paper_table_iv_points,
    run_case_study_models,
    run_case_study_simulation,
)


def show(title, points) -> None:
    print(f"\n{title}")
    print(f"  {'strategy':34s} {'Ptx':>3s} {'l_D':>4s} {'N':>2s} "
          f"{'goodput kb/s':>12s} {'U_eng uJ/bit':>13s}")
    for p in points:
        print(
            f"  {p.strategy:34s} {p.config.ptx_level:3d} "
            f"{p.config.payload_bytes:4d} {p.config.n_max_tries:2d} "
            f"{p.goodput_kbps:12.2f} {p.u_eng_uj_per_bit:13.3f}"
        )


def main() -> None:
    show("published results (Table IV):", paper_table_iv_points())

    model_points = run_case_study_models()
    show("empirical-model predictions:", model_points)
    print(f"\n  joint tuning dominates every baseline on BOTH axes: "
          f"{joint_wins(model_points)}")

    print("\nre-measuring each strategy with the event simulator "
          "(bulk traffic, 1500 packets each)...")
    sim_points = run_case_study_simulation(model_points, n_packets=1500, seed=7)
    show("event-simulator measurements:", sim_points)
    print(f"\n  joint tuning dominates every baseline (simulated): "
          f"{joint_wins(sim_points)}")

    joint = next(p for p in model_points if p.strategy.startswith("joint"))
    print(
        f"\nthe joint optimizer chose P_tx={joint.config.ptx_level}, "
        f"l_D={joint.config.payload_bytes} B, "
        f"N_maxTries={joint.config.n_max_tries} "
        f"(paper's joint row: P_tx=31, l_D=68 B, N=3) — max power for SNR, a "
        f"mid-size payload balancing overhead against grey-zone PER, and a "
        f"moderate retry budget."
    )


if __name__ == "__main__":
    main()
