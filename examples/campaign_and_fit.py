"""Miniature measurement campaign + empirical-model re-fitting.

Reconstructs the paper's core methodology end to end (Secs. II-C, IV-B,
V-B): sweep an (SNR × payload × retries) grid over the simulated link,
aggregate per-configuration statistics, re-fit the three exponential-family
models (Eqs. 3, 7, 8), and compare the recovered coefficients with the
published ones. Also runs a small slice of the reconstructed Table I space
through the event simulator and persists it as a JSON-lines dataset.

Run:  python examples/campaign_and_fit.py
"""

import numpy as np

from repro.campaign import (
    CampaignRunner,
    points_as_arrays,
    sweep_snr_payload,
)
from repro.config import TABLE_I_SPACE
from repro.core import constants, fit_ntries_model, fit_per_model
from repro.core.fitting import fit_plr_radio_model


def refit_models() -> None:
    snrs = list(np.arange(5.0, 26.0, 2.0))
    payloads = [5, 20, 35, 50, 65, 80, 110]
    print(f"sweeping {len(snrs)} SNR x {len(payloads)} payload cells, "
          f"3000 packets each (vectorized engine)...")

    per_points = sweep_snr_payload(snrs, payloads, n_packets=3000, seed=0)
    payload, snr, per, _, _ = points_as_arrays(per_points)
    per_fit = fit_per_model(payload, snr, per)
    print("\nEq. 3  PER = alpha * l_D * exp(beta * SNR)")
    print(f"  refit : {per_fit.summary()}")
    print(f"  paper : alpha={constants.PER_FIT.alpha}, "
          f"beta={constants.PER_FIT.beta}")

    tries_points = sweep_snr_payload(
        snrs, payloads, n_packets=3000, n_max_tries=8, seed=1
    )
    payload, snr, _, _, tries = points_as_arrays(tries_points)
    tries_fit = fit_ntries_model(payload, snr, tries)
    print("\nEq. 7  N_tries = 1 + alpha * l_D * exp(beta * SNR)")
    print(f"  refit : {tries_fit.summary()}")
    print(f"  paper : alpha={constants.NTRIES_FIT.alpha}, "
          f"beta={constants.NTRIES_FIT.beta}")

    plr_points = sweep_snr_payload(
        snrs, payloads, n_packets=3000, n_max_tries=3, seed=2
    )
    payload, snr, _, plr, _ = points_as_arrays(plr_points)
    plr_fit = fit_plr_radio_model(payload, snr, plr, n_max_tries=3)
    print("\nEq. 8  PLR_radio = (alpha * l_D * exp(beta * SNR))^N")
    print(f"  refit : {plr_fit.summary()}")
    print(f"  paper : alpha={constants.PLR_RADIO_FIT.alpha}, "
          f"beta={constants.PLR_RADIO_FIT.beta}")


def run_table_i_slice() -> None:
    # One distance, queueless half of the Table I grid, reduced packets:
    # 1,344 of the paper's 48,384 configurations.
    space = TABLE_I_SPACE.subspace(distances_m=[35.0], q_max_values=[1])
    # Stride through the grid so the sample spans all power levels while the
    # example stays quick; drop the stride to run the whole slice.
    configs = list(space)[::101][:40]
    print(f"\nrunning {len(configs)} Table I configurations on the event "
          f"simulator (of {len(space)} in this slice)...")
    runner = CampaignRunner(packets_per_config=150, engine="des")
    dataset = runner.run(configs, description="example Table I slice @ 35 m")
    dataset.save("campaign_35m_slice.jsonl")
    print(f"saved {len(dataset)} per-configuration summaries to "
          f"campaign_35m_slice.jsonl")
    strong = dataset.where(lambda s: s.mean_snr_db > 19)
    weak = dataset.where(lambda s: 0 < s.mean_snr_db < 12)
    if len(strong) and len(weak):
        print(f"  mean PER in the low-impact zone : "
              f"{np.mean(strong.column('per')):.4f}")
        print(f"  mean PER in the grey zone       : "
              f"{np.mean(weak.column('per')):.4f}")


def main() -> None:
    refit_models()
    run_table_i_slice()


if __name__ == "__main__":
    main()
