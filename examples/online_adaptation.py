"""Closed-loop online adaptation: estimate → retune → verify, in segments.

Combines the estimation and adaptation layers into the controller the paper
implies (Sec. III-A: "the necessity of adapting to dynamic link quality for
parameter tuning techniques"): a node re-evaluates its payload size from a
windowed link-state estimate after every batch of packets, while the channel
degrades underneath it (a mobility trace, Sec. VIII-D factor 3).

Compares three senders over the same walk:
* **static**  — locked to the 114-byte maximum payload;
* **oracle**  — re-picks the model-optimal payload from the *true* mean SNR
  each segment (an upper bound);
* **adaptive**— the :class:`~repro.core.adaptation.AdaptivePayloadTuner`,
  which only sees per-transmission RSSI/ACK observations.

Run:  python examples/online_adaptation.py
"""

import numpy as np

from repro.analysis import compute_metrics
from repro.channel import HALLWAY_2012
from repro.config import StackConfig
from repro.core import AdaptivePayloadTuner, EnergyModel
from repro.extensions import MobileLinkChannel, MobilityTrace
from repro.radio import cc2420
from repro.sim import LinkSimulator, SimulationOptions

SEGMENTS = 10
PACKETS_PER_SEGMENT = 200
PTX_LEVEL = 11


def run_segment(config, channel_factory, seed):
    """One batch of packets over a fresh channel segment."""
    options = SimulationOptions(
        n_packets=PACKETS_PER_SEGMENT, seed=seed, environment=HALLWAY_2012
    )
    sim = LinkSimulator(config, options, channel=channel_factory())
    trace = sim.run()
    return trace, compute_metrics(trace)


def main() -> None:
    # The walk, shared by all three senders: 10 m -> 95 m over the run.
    def distance_at(segment):
        return 10.0 + segment * (85.0 / (SEGMENTS - 1))

    def true_snr(segment):
        loss = HALLWAY_2012.pathloss.median_loss_db(distance_at(segment))
        return (
            cc2420.output_power_dbm(PTX_LEVEL)
            - loss
            - HALLWAY_2012.noise.mean_dbm
        )

    def channel_factory_for(segment, seed):
        walk = MobilityTrace(
            waypoints=((0.0, distance_at(segment)),)
            if segment == SEGMENTS - 1
            else ((0.0, distance_at(segment)), (1e6, distance_at(segment)))
        )
        return lambda: MobileLinkChannel(
            HALLWAY_2012, walk, PTX_LEVEL, np.random.default_rng((seed, segment))
        )

    base = StackConfig(
        distance_m=10.0, ptx_level=PTX_LEVEL, n_max_tries=3, q_max=30,
        t_pkt_ms=60.0, payload_bytes=114,
    )
    energy_model = EnergyModel()
    tuner = AdaptivePayloadTuner(
        config=base, objective="energy", hysteresis_db=1.5, check_every=40
    )

    totals = {name: {"energy_j": 0.0, "bits": 0} for name in
              ("static", "oracle", "adaptive")}
    print(f"{'seg':>4} {'d(m)':>6} {'SNR':>6} {'static lD':>9} "
          f"{'oracle lD':>9} {'adaptive lD':>11}")

    for segment in range(SEGMENTS):
        snr = true_snr(segment)
        oracle_payload, _ = energy_model.optimal_payload_bytes(PTX_LEVEL, snr)

        configs = {
            "static": base,
            "oracle": base.with_updates(payload_bytes=oracle_payload),
            "adaptive": tuner.config,
        }
        for name, config in configs.items():
            trace, metrics = run_segment(
                config, channel_factory_for(segment, seed=hash(name) % 1000),
                seed=segment,
            )
            totals[name]["energy_j"] += trace.tx_energy_j
            totals[name]["bits"] += (
                metrics.n_delivered * config.payload_bytes * 8
            )
            if name == "adaptive":
                # Feed the tuner what the sender actually observed.
                for tx in trace.transmissions:
                    tuner.observe(snr_db=tx.snr_db, acked=tx.acked)

        print(f"{segment:>4} {distance_at(segment):>6.0f} {snr:>6.1f} "
              f"{configs['static'].payload_bytes:>9} "
              f"{configs['oracle'].payload_bytes:>9} "
              f"{configs['adaptive'].payload_bytes:>11}")

    print("\nenergy per delivered payload bit over the whole walk:")
    results = {}
    for name, t in totals.items():
        u = t["energy_j"] / t["bits"] * 1e6 if t["bits"] else float("inf")
        results[name] = u
        print(f"  {name:>9}: {u:.4f} uJ/bit "
              f"({t['bits'] // 8:,} payload bytes delivered)")
    print(f"\nadaptive tuner made {len(tuner.events)} retuning decisions:")
    for event in tuner.events:
        print(f"  after {event.at_observation} observations at "
              f"{event.estimated_snr_db:.1f} dB: "
              f"{event.old_config.payload_bytes} -> "
              f"{event.new_config.payload_bytes} B")
    gap_closed = (
        (results["static"] - results["adaptive"])
        / max(results["static"] - results["oracle"], 1e-12)
    )
    print(f"\nthe blind adaptive tuner closed {gap_closed:.0%} of the "
          f"static-to-oracle energy gap")


if __name__ == "__main__":
    main()
