"""Smart-home monitoring: configure a sensor link to meet app requirements.

The paper motivates its study with one-hop deployments like smart homes
(Sec. II-A). This example plays a realistic configuration session: a motion
sensor 20 m from its hub must deliver 65-byte reports every 100 ms with
bounded delay and loss while sipping energy. We use the guideline engine
(Secs. IV-C…VII-B) to derive a configuration, verify it with the event
simulator, and then stress it by doubling the report rate to show the
delay guideline catching the overload.

Run:  python examples/smart_home_monitoring.py
"""

from repro import StackConfig, compute_metrics, simulate_link
from repro.channel import HALLWAY_2012
from repro.core import GuidelineEngine
from repro.core.optimization import snr_map_from_environment


REQUIREMENTS = {
    "max_delay_ms": 50.0,
    "max_plr": 0.02,
    "max_u_eng_uj": 0.5,
}


def verify(config: StackConfig, label: str) -> None:
    metrics = compute_metrics(simulate_link(config, n_packets=2000, seed=3))
    delay_ms = metrics.mean_delay_s * 1e3
    ok = (
        delay_ms <= REQUIREMENTS["max_delay_ms"]
        and metrics.plr_total <= REQUIREMENTS["max_plr"]
        and metrics.energy_per_info_bit_uj <= REQUIREMENTS["max_u_eng_uj"]
    )
    print(f"\n[{label}] simulated verification:")
    print(f"  delay  {delay_ms:7.2f} ms   (require <= {REQUIREMENTS['max_delay_ms']})")
    print(f"  loss   {metrics.plr_total:7.4f}      (require <= {REQUIREMENTS['max_plr']})")
    print(f"  U_eng  {metrics.energy_per_info_bit_uj:7.4f} uJ/b (require <= "
          f"{REQUIREMENTS['max_u_eng_uj']})")
    print(f"  requirements met: {ok}")


def main() -> None:
    distance_m = 20.0
    payload = 65
    t_pkt_ms = 100.0
    engine = GuidelineEngine()
    snr_map = snr_map_from_environment(HALLWAY_2012, distance_m)
    print(f"sensor at {distance_m} m; SNR per power level: "
          + ", ".join(f"{lvl}:{snr:.0f}" for lvl, snr in sorted(snr_map.items())))

    energy_rec = engine.recommend_for_energy(snr_map)
    print("\nenergy guideline (Sec. IV-C):")
    for line in energy_rec.rationale:
        print(f"  - {line}")
    ptx = energy_rec.ptx_level
    snr = snr_map[ptx]

    loss_rec = engine.recommend_for_loss(
        snr_db=snr, t_pkt_ms=t_pkt_ms, payload_bytes=payload,
        target_plr_radio=REQUIREMENTS["max_plr"] / 2,
    )
    print("\nloss guideline (Sec. VII-B):")
    for line in loss_rec.rationale:
        print(f"  - {line}")

    delay_rec = engine.recommend_for_delay(
        snr_db=snr, t_pkt_ms=t_pkt_ms, payload_bytes=payload,
        n_max_tries=loss_rec.n_max_tries,
    )
    print("\ndelay guideline (Sec. VI-B):")
    for line in delay_rec.rationale:
        print(f"  - {line}")

    config = StackConfig(
        distance_m=distance_m,
        ptx_level=ptx,
        n_max_tries=loss_rec.n_max_tries,
        d_retry_ms=0.0,
        q_max=loss_rec.q_max,
        t_pkt_ms=t_pkt_ms,
        payload_bytes=payload,
    )
    print(f"\nchosen configuration: {config}")
    verify(config, "100 ms reports")

    # Stress: the app doubles its report rate. The delay guideline flags the
    # risk and proposes the fix before any packet is sent.
    fast_t_pkt = 12.0
    rho = engine.delay_model.utilization(
        config.with_updates(t_pkt_ms=fast_t_pkt), snr
    )
    print(f"\napp wants {fast_t_pkt} ms reports -> predicted rho = {rho:.2f}")
    fix = engine.recommend_for_delay(
        snr_db=snr, t_pkt_ms=fast_t_pkt, payload_bytes=payload,
        n_max_tries=config.n_max_tries,
    )
    for line in fix.rationale:
        print(f"  - {line}")
    # Apply the fix, and give the heavier traffic the large queue so bursts
    # are absorbed rather than dropped (Sec. VII-B's queue-size guideline).
    fixed = config.with_updates(**fix.changes(), q_max=30)
    print(f"adjusted configuration: {fixed}")
    verify(fixed, f"{fixed.t_pkt_ms:.0f} ms reports (after guideline fix)")


if __name__ == "__main__":
    main()
