"""Fig. 12 — the radio-loss model (Eq. 8, α = 0.011, β = −0.145) validation.

Measures PLR_radio under several attempt budgets, re-fits Eq. 8, and prints
model-vs-measured rows like the paper's validation figure.
"""

import numpy as np
import pytest

from repro.campaign import sweep_snr_payload
from repro.core import PlrRadioModel, constants
from repro.core.fitting import fit_plr_radio_model

SNRS = list(np.arange(5.0, 22.0, 2.0))
PAYLOADS = [20, 65, 110]
TRIES = (1, 2, 3, 5)


@pytest.fixture(scope="module")
def sweeps():
    return {
        n: sweep_snr_payload(
            SNRS, PAYLOADS, n_packets=3000, n_max_tries=n, seed=12 + n
        )
        for n in TRIES
    }


def test_fig12_plr_radio_model(benchmark, report, sweeps):
    payload = np.concatenate(
        [[p.payload_bytes for p in sweeps[n]] for n in TRIES]
    )
    snr = np.concatenate([[p.measured_snr_db for p in sweeps[n]] for n in TRIES])
    plr = np.concatenate([[p.plr_radio for p in sweeps[n]] for n in TRIES])
    tries = np.concatenate([[n] * len(sweeps[n]) for n in TRIES])

    fit = benchmark(
        fit_plr_radio_model, payload, snr, plr, tries, min_points=8
    )

    model = PlrRadioModel()
    report.header("Fig. 12: PLR_radio model validation (l_D = 110 B)")
    report.emit(
        f"{'SNR':>5}"
        + "".join(f"  meas N={n:<2} model" for n in TRIES)
    )
    measured = {
        n: {p.mean_snr_db: p.plr_radio for p in sweeps[n] if p.payload_bytes == 110}
        for n in TRIES
    }
    for s in SNRS[::2]:
        cells = "".join(
            f"  {measured[n][s]:8.3f} {model.plr_radio(110, s, n):6.3f}"
            for n in TRIES
        )
        report.emit(f"{s:>5.0f}{cells}")
    report.emit(
        "",
        f"Eq. 8 re-fit : {fit.summary()}",
        f"paper        : alpha={constants.PLR_RADIO_FIT.alpha}, "
        f"beta={constants.PLR_RADIO_FIT.beta}",
    )
    # Shape: retransmissions multiply loss down; fit near paper constants.
    ordering = all(
        measured[1][s] >= measured[3][s] >= measured[5][s] - 1e-9
        for s in SNRS[::2]
    )
    held = (
        ordering
        and 0.5 * constants.PLR_RADIO_FIT.alpha
        < fit.alpha
        < 2.0 * constants.PLR_RADIO_FIT.alpha
        and abs(fit.beta - constants.PLR_RADIO_FIT.beta) < 0.06
    )
    report.shape_check(
        "PLR falls as PER^N; Eq. 8 re-fit near published constants", held
    )
    assert held
