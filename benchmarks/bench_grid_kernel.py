"""Grid-evaluation kernel — columnar speedup over the scalar reference.

Not a paper figure: this measures the vectorized evaluation hot path that
PR 4 introduced (`repro.core.optimization.kernels`). Two benches over the
same full default `TuningGrid` (4,560 configurations):

* **scalar baseline** — `evaluate_grid_scalar`, one `ModelEvaluator.
  evaluate` call per configuration (the readable reference path);
* **columnar kernel** — `evaluate_grid_columns`, every Table III metric
  for every configuration in one numpy broadcast pass.

The kernel must be >= 20x faster than the scalar loop and agree with it
within 1e-9 relative tolerance on every metric column; the run fails if
either claim stops holding. Results land in ``BENCH_grid_eval.json`` at
the repo root so the perf trajectory is tracked from PR 4 on.

Set ``BENCH_GRID_QUICK=1`` (the CI smoke mode) to run single-round.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.optimization import (
    ModelEvaluator,
    TuningGrid,
    evaluate_grid_columns,
    evaluate_grid_scalar,
    snr_map_from_reference,
)

GRID = TuningGrid()
REFERENCE_SNR_DB = 6.0
SPEEDUP_FLOOR = 20.0
EQUIVALENCE_RTOL = 1e-9
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_grid_eval.json"

#: Metric columns compared between the scalar rows and the kernel output.
METRIC_FIELDS = (
    "snr_db",
    "max_goodput_kbps",
    "u_eng_uj_per_bit",
    "delay_ms",
    "rho",
    "plr_radio",
    "plr_queue",
    "plr_total",
)

#: Cross-test scratch: the scalar per-grid mean, filled by the baseline
#: bench and read by the kernel bench for the speedup assertion.
_RESULTS = {}


def _rounds() -> int:
    return 1 if os.environ.get("BENCH_GRID_QUICK") else 3


@pytest.fixture(scope="module")
def evaluator():
    return ModelEvaluator(
        snr_by_level=snr_map_from_reference(REFERENCE_SNR_DB)
    )


def _max_relative_error(evaluator) -> float:
    """Worst metric disagreement between kernel columns and scalar rows."""
    rows = evaluate_grid_scalar(evaluator, GRID)
    grid_eval = evaluate_grid_columns(evaluator, GRID)
    worst = 0.0
    for name in METRIC_FIELDS:
        kernel = getattr(grid_eval, name)
        scalar = np.asarray([getattr(row, name) for row in rows], dtype=float)
        if not np.array_equal(np.isfinite(kernel), np.isfinite(scalar)):
            return float("inf")
        finite = np.isfinite(scalar)
        if finite.any():
            scale = np.maximum(np.abs(scalar[finite]), 1e-300)
            worst = max(
                worst,
                float(np.max(np.abs(kernel[finite] - scalar[finite]) / scale)),
            )
    return worst


def test_scalar_baseline(evaluator, benchmark, report):
    benchmark.pedantic(
        evaluate_grid_scalar, args=(evaluator, GRID), rounds=_rounds(),
        iterations=1,
    )
    per_grid_s = benchmark.stats.stats.mean
    _RESULTS["scalar_s"] = per_grid_s
    report.header("Grid evaluation: scalar reference loop")
    report.emit(
        f"grid        : {len(GRID)} configurations",
        f"per grid    : {per_grid_s * 1e3:8.1f} ms",
        f"per config  : {per_grid_s / len(GRID) * 1e6:8.1f} us",
    )


def test_columnar_kernel_speedup(evaluator, benchmark, report):
    benchmark.pedantic(
        evaluate_grid_columns, args=(evaluator, GRID), rounds=_rounds(),
        iterations=1,
    )
    per_grid_s = benchmark.stats.stats.mean
    max_rel = _max_relative_error(evaluator)
    scalar_s = _RESULTS.get("scalar_s")
    speedup = (scalar_s / per_grid_s) if scalar_s else float("nan")
    report.header("Grid evaluation: columnar kernel (struct-of-arrays)")
    report.emit(
        f"grid        : {len(GRID)} configurations",
        f"per grid    : {per_grid_s * 1e3:8.2f} ms",
        f"per config  : {per_grid_s / len(GRID) * 1e9:8.0f} ns",
        f"speedup     : {speedup:8.0f}x over the scalar loop",
        f"equivalence : max relative error {max_rel:.2e} "
        f"(tolerance {EQUIVALENCE_RTOL:g})",
    )
    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "grid_eval",
                "grid_configurations": len(GRID),
                "reference_snr_db": REFERENCE_SNR_DB,
                "rounds": _rounds(),
                "scalar_ms_per_grid": (
                    scalar_s * 1e3 if scalar_s else None
                ),
                "columnar_ms_per_grid": per_grid_s * 1e3,
                "speedup_x": speedup,
                "speedup_floor_x": SPEEDUP_FLOOR,
                "max_relative_error": max_rel,
                "equivalence_rtol": EQUIVALENCE_RTOL,
            },
            indent=2,
        )
        + "\n"
    )
    report.emit(f"recorded    : {RESULT_PATH.name}")
    report.shape_check(
        f"columnar kernel >= {SPEEDUP_FLOOR:.0f}x faster than the scalar "
        f"loop ({speedup:,.0f}x measured)",
        bool(scalar_s) and speedup >= SPEEDUP_FLOOR,
    )
    assert max_rel <= EQUIVALENCE_RTOL
    assert scalar_s is not None, "scalar baseline must run first"
    assert speedup >= SPEEDUP_FLOOR
