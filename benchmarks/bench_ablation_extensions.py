"""Ablation — the Sec. VIII-D future-work factors: interference, LPL, mobility.

The paper lists three factors its testbed excluded. Each extension is
exercised here to show the direction and rough magnitude of its effect on
the core findings.
"""

import numpy as np
import pytest
from conftest import FIGURE_ENV

from repro.analysis import compute_metrics
from repro.config import StackConfig
from repro.extensions import (
    InterfererConfig,
    LplConfig,
    LplServiceTimeModel,
    MobileLinkChannel,
    MobilityTrace,
    interfered_environment,
)
from repro.sim import LinkSimulator, SimulationOptions, simulate_link


@pytest.fixture(scope="module")
def interference_results():
    config = StackConfig(
        distance_m=20.0, ptx_level=23, n_max_tries=3, q_max=1,
        t_pkt_ms=50.0, payload_bytes=110,
    )
    results = {}
    for duty in (0.0, 0.1, 0.25):
        env = (
            FIGURE_ENV
            if duty == 0.0
            else interfered_environment(FIGURE_ENV, InterfererConfig(duty_cycle=duty))
        )
        metrics = compute_metrics(
            simulate_link(
                config,
                options=SimulationOptions(
                    n_packets=500, seed=25, environment=env
                ),
            )
        )
        results[duty] = metrics
    return results


def test_ablation_interference(benchmark, report, interference_results):
    def collect():
        return {d: m.per for d, m in interference_results.items()}

    pers = benchmark(collect)

    report.header("Ablation: concurrent-transmission interference (Sec. VIII-D)")
    report.emit(f"{'duty cycle':>10}  {'PER':>8}  {'goodput kb/s':>12}  {'tries':>6}")
    for duty, m in interference_results.items():
        report.emit(
            f"{duty:>10.2f}  {m.per:>8.3f}  {m.goodput_kbps:>12.2f}  "
            f"{m.mean_tries:>6.3f}"
        )
    monotone = pers[0.0] < pers[0.1] < pers[0.25]
    report.shape_check("PER grows monotonically with interferer duty cycle",
                       monotone)
    assert monotone


def test_ablation_lpl(benchmark, report):
    config = StackConfig(t_pkt_ms=100.0, payload_bytes=110, n_max_tries=3)

    def utilizations():
        out = {}
        for sleep_ms in (0.0, 50.0, 100.0, 200.0):
            if sleep_ms == 0.0:
                model = LplServiceTimeModel(LplConfig(sleep_interval_ms=1e-3))
            else:
                model = LplServiceTimeModel(LplConfig(sleep_interval_ms=sleep_ms))
            out[sleep_ms] = model.utilization(config, 20.0)
        return out

    rhos = benchmark(utilizations)

    report.header("Ablation: low-power-listening wake-ups (Sec. VIII-D)")
    report.emit(f"{'sleep interval (ms)':>20}  {'rho @ T_pkt=100ms':>18}")
    for sleep_ms, rho in rhos.items():
        report.emit(f"{sleep_ms:>20.0f}  {rho:>18.3f}")
    report.emit(
        "",
        "wake-up stretching eats the stability budget: the same traffic that "
        "was comfortable always-on overloads a 200 ms-sleep LPL MAC",
    )
    held = rhos[0.0] < 0.3 and rhos[200.0] > 1.0
    report.shape_check("LPL flips a stable workload into overload", held)
    assert held


def test_ablation_mobility(benchmark, report):
    walk = MobilityTrace.walk(start_m=10.0, end_m=120.0, duration_s=25.0)
    config = StackConfig(
        distance_m=10.0, ptx_level=11, n_max_tries=1, q_max=1,
        t_pkt_ms=50.0, payload_bytes=110,
    )

    def run_mobile():
        sim = LinkSimulator(
            config,
            SimulationOptions(n_packets=500, seed=26, environment=FIGURE_ENV),
            channel=MobileLinkChannel(
                FIGURE_ENV, walk, 11, np.random.default_rng(27)
            ),
        )
        trace = sim.run()
        quarter = len(trace.packets) // 4
        return (
            np.mean([p.delivered for p in trace.packets[:quarter]]),
            np.mean([p.delivered for p in trace.packets[-quarter:]]),
        )

    first, last = benchmark.pedantic(run_mobile, rounds=1, iterations=1)

    report.header("Ablation: node mobility (Sec. VIII-D)")
    report.emit(
        f"delivery ratio, first quarter of the walk : {first:.3f}",
        f"delivery ratio, last quarter of the walk  : {last:.3f}",
        "a static configuration tuned at 10 m collapses as the node walks "
        "out — the motivation for the model-driven adaptation of "
        "examples/adaptive_payload.py",
    )
    held = first > 0.8 and last < 0.5
    report.shape_check("mobility invalidates a static configuration", held)
    assert held
