"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_figXX_*.py`` / ``bench_tableX_*.py`` file regenerates one
table or figure of the paper: it computes the same rows/series the paper
reports, prints them (live, bypassing capture, so ``pytest benchmarks/
--benchmark-only | tee`` records them), and benchmarks the computation that
produces them.

Conventions:
* heavyweight regenerations (event-simulator sweeps) are cached in
  module-scoped fixtures and timed with ``benchmark.pedantic(rounds=1)``;
* cheap model evaluations are timed with the plain ``benchmark`` fixture;
* each file ends by printing a ``shape check`` line stating whether the
  paper's qualitative claim held in this run.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.channel import HALLWAY_2012

#: Environment used by the DES-driven figure benches: the hallway with its
#: slow shadowing disabled (fast fading kept). One bench run covers seconds
#: of simulated time, whereas the paper's per-configuration points average
#: over weeks — a single slow-fading realization would shift a whole run by
#: several dB and scramble the SNR axis. The slow dynamics are characterized
#: separately in the Fig. 4 / Fig. 5 benches.
FIGURE_ENV = replace(
    HALLWAY_2012,
    name="hallway-2012+figure-mean",
    slow_sigma_db=0.0,
    extra_slow_sigma_by_distance={},
    human_shadowing_by_distance={},
)


class Reporter:
    """Prints benchmark tables live (outside pytest's capture)."""

    def __init__(self, capsys) -> None:
        self._capsys = capsys

    def emit(self, *lines: str) -> None:
        with self._capsys.disabled():
            for line in lines:
                print(line)

    def header(self, title: str) -> None:
        self.emit("", "=" * 78, title, "=" * 78)

    def row(self, *cells: object, widths=None) -> None:
        if widths is None:
            widths = [16] * len(cells)
        text = "  ".join(
            f"{cell!s:>{w}}" if not isinstance(cell, float) else f"{cell:>{w}.4g}"
            for cell, w in zip(cells, widths)
        )
        self.emit(text)

    def shape_check(self, description: str, held: bool) -> None:
        status = "HELD" if held else "DID NOT HOLD"
        self.emit(f"shape check: {description}: {status}")


@pytest.fixture
def report(capsys):
    return Reporter(capsys)
