"""Fig. 8 — measured U_eng vs payload size at 35 m for two power levels.

The paper: in the grey zone medium packets minimize energy; once the SNR is
high enough the maximum payload wins. We measure with the Monte-Carlo link
at two power levels straddling that transition.
"""

import numpy as np
import pytest

from repro.channel import HALLWAY_2012, LinkChannel
from repro.sim.fastlink import FastLink

PAYLOADS = tuple(range(10, 115, 10)) + (114,)
LEVELS = (11, 27)  # grey-zone-ish and comfortably clear at 35 m


@pytest.fixture(scope="module")
def energy_curves():
    curves = {}
    for li, level in enumerate(LEVELS):
        channel = LinkChannel(
            HALLWAY_2012, 35.0, level, np.random.default_rng((8, li))
        )
        series = {}
        for pi, payload in enumerate(PAYLOADS):
            fast = FastLink(environment=HALLWAY_2012, seed=800 + li * 100 + pi)
            result = fast.run(
                mean_snr_db=channel.mean_snr_db,
                payload_bytes=payload,
                n_packets=3000,
                n_max_tries=8,
            )
            series[payload] = result.energy_per_info_bit_j(level) * 1e6
        curves[level] = (channel.mean_snr_db, series)
    return curves


def test_fig08_energy_vs_payload(benchmark, report, energy_curves):
    def find_optima():
        return {
            level: min(series, key=series.get)
            for level, (_, series) in energy_curves.items()
        }

    optima = benchmark(find_optima)

    report.header("Fig. 8: measured U_eng (uJ/bit) vs payload at 35 m")
    report.emit(
        f"{'l_D':>5}"
        + "".join(
            f"  P{lvl} ({energy_curves[lvl][0]:.0f} dB)" for lvl in LEVELS
        )
    )
    for payload in PAYLOADS:
        cells = "".join(
            f"  {energy_curves[lvl][1][payload]:10.3f}" for lvl in LEVELS
        )
        report.emit(f"{payload:>5}{cells}")
    report.emit(
        "",
        f"optimal payload: "
        + ", ".join(
            f"P{lvl} ({energy_curves[lvl][0]:.0f} dB) -> {optima[lvl]} B"
            for lvl in LEVELS
        ),
        "(paper: medium payloads optimal in the grey zone; max payload "
        "above the threshold)",
    )
    low_level, high_level = LEVELS
    held = optima[low_level] < 114 and optima[high_level] >= 100
    report.shape_check(
        "grey zone favours mid-size payloads; strong link favours max", held
    )
    assert held
