"""Fig. 1 — the goodput-vs-energy trade-off comparison that motivates the paper.

Places every tuning strategy (four literature baselines + joint tuning) on
the (goodput, U_eng) plane via the empirical models and checks the headline
claim: the joint point dominates all single-parameter points on both axes.
"""

import pytest

from repro.core.optimization import joint_wins, run_case_study_models


@pytest.fixture(scope="module")
def points():
    return run_case_study_models()


def test_fig01_tradeoff_plane(benchmark, report, points):
    dominated = benchmark(joint_wins, points)

    report.header("Fig. 1: goodput vs energy trade-off per strategy")
    report.emit(f"{'strategy':<34}{'goodput kb/s':>13}{'U_eng uJ/bit':>14}")
    for p in sorted(points, key=lambda p: -p.goodput_kbps):
        report.emit(
            f"{p.strategy:<34}{p.goodput_kbps:>13.2f}{p.u_eng_uj_per_bit:>14.3f}"
        )
    joint = next(p for p in points if p.strategy.startswith("joint"))
    best_other_goodput = max(
        p.goodput_kbps for p in points if not p.strategy.startswith("joint")
    )
    best_other_energy = min(
        p.u_eng_uj_per_bit for p in points if not p.strategy.startswith("joint")
    )
    report.emit(
        "",
        f"joint vs best single-parameter goodput : "
        f"{joint.goodput_kbps:.2f} vs {best_other_goodput:.2f} kb/s "
        f"({joint.goodput_kbps / best_other_goodput:.2f}x)",
        f"joint vs best single-parameter energy  : "
        f"{joint.u_eng_uj_per_bit:.3f} vs {best_other_energy:.3f} uJ/bit",
        "(paper Fig. 1: the joint point sits above-left of every baseline)",
    )
    from repro.analysis import scatter

    report.emit(
        "",
        "trade-off plane (x = U_eng uJ/bit, y = goodput kb/s; J = joint):",
    )
    xs = [p.u_eng_uj_per_bit for p in points]
    ys = [p.goodput_kbps for p in points]
    plot = scatter(xs, ys, width=48, height=10)
    joint_point = next(p for p in points if p.strategy.startswith("joint"))
    report.emit(plot)
    report.emit(
        f"(joint sits at x={joint_point.u_eng_uj_per_bit:.3f}, "
        f"y={joint_point.goodput_kbps:.2f} — the upper-left extreme)"
    )
    report.shape_check("joint tuning dominates every baseline on both axes",
                       dominated)
    assert dominated
