"""Ablation — event-driven simulator vs vectorized Monte-Carlo engine.

The campaign and figure benches lean on the fast engine for queueless
sweeps. This ablation quantifies both the agreement (loss/energy metrics
within Monte-Carlo noise) and the speedup that justifies having two engines.
"""

import time

import pytest
from conftest import FIGURE_ENV

from repro.analysis import compute_metrics
from repro.config import StackConfig
from repro.sim import FastLink, SimulationOptions, simulate_link

N_PACKETS = 2000


@pytest.fixture(scope="module")
def comparison():
    config = StackConfig(
        distance_m=35.0, ptx_level=11, n_max_tries=3, q_max=1,
        t_pkt_ms=200.0, payload_bytes=110,
    )
    t0 = time.perf_counter()
    trace = simulate_link(
        config,
        options=SimulationOptions(
            n_packets=N_PACKETS, seed=22, environment=FIGURE_ENV
        ),
    )
    des_seconds = time.perf_counter() - t0
    metrics = compute_metrics(trace)

    t0 = time.perf_counter()
    fast = FastLink(environment=FIGURE_ENV, seed=23).run(
        mean_snr_db=metrics.mean_snr_db,
        payload_bytes=110,
        n_packets=N_PACKETS,
        n_max_tries=3,
    )
    fast_seconds = time.perf_counter() - t0
    return metrics, fast, des_seconds, fast_seconds


def test_ablation_engine_agreement(benchmark, report, comparison):
    metrics, fast, des_seconds, fast_seconds = comparison

    def fast_run():
        return FastLink(environment=FIGURE_ENV, seed=24).run(
            mean_snr_db=metrics.mean_snr_db,
            payload_bytes=110,
            n_packets=N_PACKETS,
            n_max_tries=3,
        )

    benchmark(fast_run)

    rows = [
        ("PER", metrics.per, fast.per),
        ("PLR_radio", metrics.plr_radio, fast.plr_radio),
        ("mean tries", metrics.mean_tries, fast.mean_tries),
        (
            "service (ms)",
            metrics.mean_service_time_s * 1e3,
            fast.mean_service_time_s * 1e3,
        ),
        (
            "U_eng (uJ/bit)",
            metrics.energy_per_info_bit_uj,
            fast.energy_per_info_bit_j(11) * 1e6,
        ),
    ]
    report.header("Ablation: DES vs vectorized Monte-Carlo engine")
    report.emit(f"{'metric':<16}{'DES':>10}{'fast':>10}")
    for name, a, b in rows:
        report.emit(f"{name:<16}{a:>10.4f}{b:>10.4f}")
    speedup = des_seconds / max(fast_seconds, 1e-9)
    report.emit(
        "",
        f"wall-clock for {N_PACKETS} packets: DES {des_seconds * 1e3:.0f} ms, "
        f"fast {fast_seconds * 1e3:.1f} ms  ({speedup:.0f}x speedup)",
    )
    agree = all(
        abs(a - b) <= max(0.05 * max(abs(a), abs(b)), 0.03) for _, a, b in rows
    )
    report.shape_check(
        "engines agree within 5% / 0.03 abs; fast engine >=20x faster",
        agree and speedup >= 20,
    )
    assert agree
    assert speedup >= 20
