"""Fig. 6(a–d) — the joint effects of SNR and payload size on PER.

Regenerates all four panels from a vectorized sweep: (a) PER decays with SNR
without a sharp cliff; (b) the decay is smoother for larger payloads; (c)
PER grows with payload, with SNR-dependent magnitude; (d) the three
joint-effect zones. Also re-fits Eq. 3 (α = 0.0128, β = −0.15).
"""

import numpy as np
import pytest

from repro.campaign import points_as_arrays, sweep_snr_payload
from repro.core import constants, fit_per_model

SNRS = list(np.arange(5.0, 25.0, 1.0))
PAYLOADS = [5, 20, 35, 50, 65, 80, 110]


@pytest.fixture(scope="module")
def sweep():
    return sweep_snr_payload(SNRS, PAYLOADS, n_packets=2500, seed=6)


def per_of(sweep, payload):
    return {p.mean_snr_db: p.per for p in sweep if p.payload_bytes == payload}


def test_fig06_per_vs_snr_and_payload(benchmark, report, sweep):
    payload, snr, per, _, _ = points_as_arrays(sweep)
    fit = benchmark(fit_per_model, payload, snr, per)

    report.header("Fig. 6: PER vs SNR and payload; Eq. 3 re-fit")
    report.emit(f"{'SNR (dB)':>8}  {'PER l_D=5':>10}  {'PER l_D=50':>11}  "
                f"{'PER l_D=110':>12}")
    small, medium, large = per_of(sweep, 5), per_of(sweep, 50), per_of(sweep, 110)
    for s in SNRS[::3]:
        report.emit(
            f"{s:>8.0f}  {small[s]:>10.3f}  {medium[s]:>11.3f}  {large[s]:>12.3f}"
        )
    from repro.analysis import sparkline

    decay = [large[s] for s in SNRS]
    report.emit(
        "",
        f"PER(110 B) decay over SNR {SNRS[0]:.0f}..{SNRS[-1]:.0f} dB: "
        f"{sparkline(decay)}",
        f"Eq. 3 re-fit : {fit.summary()}",
        f"paper        : alpha={constants.PER_FIT.alpha}, "
        f"beta={constants.PER_FIT.beta}",
    )

    # Panel (b): larger payloads take more SNR to fall below PER 0.1.
    def snr_below(series, threshold=0.1):
        for s in sorted(series):
            if series[s] < threshold:
                return s
        return max(series)

    snr10_small, snr10_large = snr_below(small), snr_below(large)
    # Panel (c)/(d): payload impact by zone.
    def spread(snr_value):
        cells = [p.per for p in sweep if p.mean_snr_db == snr_value]
        return max(cells) - min(cells)

    zone_rows = [
        ("high-impact (5-12 dB)", np.mean([spread(s) for s in SNRS if 5 <= s < 12])),
        ("medium-impact (12-19 dB)", np.mean([spread(s) for s in SNRS if 12 <= s < 19])),
        ("low-impact (>=19 dB)", np.mean([spread(s) for s in SNRS if s >= 19])),
    ]
    report.emit("", "payload-induced PER spread by zone (Fig. 6d):")
    for name, value in zone_rows:
        report.emit(f"  {name:<26}: {value:.3f}")
    report.emit(
        f"SNR where PER(l_D) < 0.1 : {snr10_small:.0f} dB for 5 B, "
        f"{snr10_large:.0f} dB for 110 B (paper: ~19 dB for max l_D)"
    )

    held = (
        snr10_large > snr10_small
        and 16.0 <= snr10_large <= 22.0
        and zone_rows[0][1] > zone_rows[1][1] > zone_rows[2][1]
        and abs(fit.beta - constants.PER_FIT.beta) < 0.05
        and 0.5 * constants.PER_FIT.alpha < fit.alpha < 2.0 * constants.PER_FIT.alpha
    )
    report.shape_check(
        "smooth payload-dependent PER decay, 3 zones, Eq. 3 constants", held
    )
    assert held
