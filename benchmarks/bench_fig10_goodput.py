"""Fig. 10(a–d) — goodput vs SNR under the four MAC configurations.

(a) no queue / no retransmission, (b) no queue / retransmission, (c) queue /
no retransmission, (d) queue / retransmission — each for two traffic loads.
The paper's observations: goodput rises with SNR and saturates near 19 dB;
smaller T_pkt (higher offered load) gives higher goodput.
"""

import pytest
from conftest import FIGURE_ENV

from repro.analysis import compute_metrics
from repro.config import StackConfig
from repro.sim import SimulationOptions, simulate_link

LEVELS = (7, 11, 15, 23, 31)
MAC_CONFIGS = {
    "a: Q=1,  N=1": dict(q_max=1, n_max_tries=1),
    "b: Q=1,  N=5": dict(q_max=1, n_max_tries=5),
    "c: Q=30, N=1": dict(q_max=30, n_max_tries=1),
    "d: Q=30, N=5": dict(q_max=30, n_max_tries=5),
}
LOADS = {"T_pkt=30ms": 30.0, "T_pkt=100ms": 100.0}


@pytest.fixture(scope="module")
def goodput_surface():
    surface = {}
    for mac_name, mac in MAC_CONFIGS.items():
        for load_name, t_pkt in LOADS.items():
            for level in LEVELS:
                config = StackConfig(
                    distance_m=35.0, ptx_level=level, payload_bytes=110,
                    t_pkt_ms=t_pkt, d_retry_ms=0.0, **mac,
                )
                metrics = compute_metrics(
                    simulate_link(
                        config,
                        options=SimulationOptions(
                            n_packets=300, seed=10, environment=FIGURE_ENV
                        ),
                    )
                )
                surface[(mac_name, load_name, level)] = (
                    metrics.mean_snr_db,
                    metrics.goodput_kbps,
                )
    return surface


def test_fig10_goodput_vs_snr(benchmark, report, goodput_surface):
    def regenerate_series():
        return {
            (mac, load): [
                goodput_surface[(mac, load, lvl)] for lvl in LEVELS
            ]
            for mac in MAC_CONFIGS
            for load in LOADS
        }

    series = benchmark(regenerate_series)

    report.header("Fig. 10: goodput (kb/s) vs SNR, four MAC configs")
    for mac in MAC_CONFIGS:
        report.emit(f"\n  [{mac}]")
        report.emit(
            f"  {'SNR (dB)':>8}"
            + "".join(f"  {load:>12}" for load in LOADS)
        )
        for i, level in enumerate(LEVELS):
            snr = series[(mac, "T_pkt=30ms")][i][0]
            cells = "".join(
                f"  {series[(mac, load)][i][1]:12.2f}" for load in LOADS
            )
            report.emit(f"  {snr:>8.1f}{cells}")

    # Shapes: goodput rises with SNR; saturates near 19 dB; higher offered
    # load yields higher goodput.
    checks = []
    for mac in MAC_CONFIGS:
        curve = [g for _, g in series[(mac, "T_pkt=30ms")]]
        snrs = [s for s, _ in series[(mac, "T_pkt=30ms")]]
        rises = curve[-1] > curve[0]
        # Saturation: the final power step (23 -> 31, +3 dB) buys far less
        # than the climb through the grey zone did.
        saturates = (curve[-1] - curve[-2]) < 0.3 * (curve[-2] - curve[0])
        checks.append(rises and saturates)
    load_effect = all(
        series[(mac, "T_pkt=30ms")][-1][1]
        >= series[(mac, "T_pkt=100ms")][-1][1] - 0.5
        for mac in MAC_CONFIGS
    )
    held = all(checks) and load_effect
    report.shape_check(
        "goodput rises with SNR, saturates ~19 dB, grows with offered load",
        held,
    )
    assert held
