"""Fig. 16(a–d) — total packet loss rate under the four MAC configurations.

The paper's observations: high SNR clearly reduces loss (best energy/loss
trade-off near 19 dB); retransmissions do *not* uniformly reduce total loss
under high load because queue loss replaces radio loss.
"""

import pytest
from conftest import FIGURE_ENV

from repro.analysis import compute_metrics
from repro.config import StackConfig
from repro.sim import SimulationOptions, simulate_link

LEVELS = (7, 11, 15, 23, 31)
MAC_CONFIGS = {
    "a: Q=1,  N=1": dict(q_max=1, n_max_tries=1),
    "b: Q=1,  N=5": dict(q_max=1, n_max_tries=5),
    "c: Q=30, N=1": dict(q_max=30, n_max_tries=1),
    "d: Q=30, N=5": dict(q_max=30, n_max_tries=5),
}


@pytest.fixture(scope="module")
def plr_surface():
    surface = {}
    for mac_name, mac in MAC_CONFIGS.items():
        for level in LEVELS:
            config = StackConfig(
                distance_m=35.0, ptx_level=level, payload_bytes=110,
                t_pkt_ms=30.0, d_retry_ms=0.0, **mac,
            )
            metrics = compute_metrics(
                simulate_link(
                    config,
                    options=SimulationOptions(
                        n_packets=400, seed=16, environment=FIGURE_ENV
                    ),
                )
            )
            surface[(mac_name, level)] = (metrics.mean_snr_db, metrics.plr_total)
    return surface


def test_fig16_plr_vs_snr(benchmark, report, plr_surface):
    def regenerate():
        return {
            mac: [plr_surface[(mac, lvl)] for lvl in LEVELS]
            for mac in MAC_CONFIGS
        }

    series = benchmark(regenerate)

    report.header("Fig. 16: total PLR vs SNR, four MAC configs")
    report.emit(f"{'SNR (dB)':>8}" + "".join(f"  {m:>13}" for m in MAC_CONFIGS))
    for i, level in enumerate(LEVELS):
        snr = series["a: Q=1,  N=1"][i][0]
        cells = "".join(
            f"  {series[m][i][1]:13.3f}" for m in MAC_CONFIGS
        )
        report.emit(f"{snr:>8.1f}{cells}")

    # Shape 1: loss falls with SNR for every MAC config.
    falling = all(
        series[m][0][1] > series[m][-1][1] - 1e-9 for m in MAC_CONFIGS
    )
    # Shape 2: at max power, retransmitting configs are near-lossless while
    # single-shot configs keep PER-level residual loss (the paper's (a)/(c)
    # panels never reach zero).
    clean = (
        series["b: Q=1,  N=5"][-1][1] < 0.02
        and series["d: Q=30, N=5"][-1][1] < 0.02
        and series["a: Q=1,  N=1"][-1][1] < 0.15
    )
    # Shape 3: in the grey zone, enabling retransmissions without a queue
    # does not eliminate loss (queue drops replace radio drops).
    grey_idx = 0
    retrans_no_panacea = series["b: Q=1,  N=5"][grey_idx][1] > 0.2
    held = falling and clean and retrans_no_panacea
    report.emit(
        "",
        f"loss falls with SNR in all configs : {falling}",
        f"retransmitting configs near-lossless at max power : {clean}",
        f"grey-zone loss survives retransmission without queueing headroom : "
        f"{retrans_no_panacea}",
    )
    report.shape_check(
        "SNR dominates loss; retransmission alone is no cure under load", held
    )
    assert held
