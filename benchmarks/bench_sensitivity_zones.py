"""Parameter-sensitivity tornado by SNR zone — the paper's theme, quantified.

The study's through-line is that *which* knob matters depends on where the
link sits: in the grey zone, retransmissions and payload size move loss and
goodput dramatically; in the low-impact zone (≥19 dB) loss is insensitive to
almost everything while payload still scales goodput via overhead
amortization. This bench computes one-at-a-time sensitivities of all four
model metrics to every Table I knob, on a grey-zone link and a low-impact
link, and checks those orderings.
"""

import pytest

from repro.config import StackConfig
from repro.core.optimization import (
    ModelEvaluator,
    analyze_sensitivity,
    rank_parameters,
    snr_map_from_reference,
)

BASE = StackConfig(
    ptx_level=31, payload_bytes=80, n_max_tries=3, t_pkt_ms=50.0, q_max=30
)
LINKS = {"grey zone (SNR@31 = 6 dB)": 6.0, "low-impact (SNR@31 = 25 dB)": 25.0}


@pytest.fixture(scope="module")
def sensitivities():
    return {
        label: analyze_sensitivity(
            ModelEvaluator(snr_by_level=snr_map_from_reference(snr)), BASE
        )
        for label, snr in LINKS.items()
    }


def spans(sens, metric):
    return {s.parameter: s.span for s in sens if s.metric == metric}


def test_sensitivity_by_zone(benchmark, report, sensitivities):
    def rank_all():
        return {
            (label, metric): rank_parameters(sens, metric)[0].parameter
            for label, sens in sensitivities.items()
            for metric in ("energy", "goodput", "delay", "loss")
        }

    dominant = benchmark(rank_all)

    report.header("Parameter sensitivity (metric span over each knob's range)")
    for label, sens in sensitivities.items():
        report.emit(f"\n  [{label}]")
        report.emit(
            f"  {'parameter':<16}{'goodput kb/s':>13}{'loss':>9}"
            f"{'energy uJ/b':>12}{'delay ms':>10}"
        )
        for parameter in (
            "ptx_level", "payload_bytes", "n_max_tries", "d_retry_ms",
            "q_max", "t_pkt_ms",
        ):
            g = spans(sens, "goodput").get(parameter, 0.0)
            l = spans(sens, "loss").get(parameter, 0.0)
            e = spans(sens, "energy").get(parameter, 0.0)
            d = spans(sens, "delay").get(parameter, 0.0)
            report.emit(
                f"  {parameter:<16}{g:>13.2f}{l:>9.3f}{e:>12.3f}{d:>10.1f}"
            )
        report.emit(
            "  dominant: "
            + ", ".join(
                f"{m}->{dominant[(label, m)]}"
                for m in ("energy", "goodput", "delay", "loss")
            )
        )

    grey = sensitivities["grey zone (SNR@31 = 6 dB)"]
    clean = sensitivities["low-impact (SNR@31 = 25 dB)"]
    # Claim 1: retransmissions move loss strongly in the grey zone, barely
    # above 19 dB.
    grey_tries_loss = spans(grey, "loss")["n_max_tries"]
    clean_tries_loss = spans(clean, "loss")["n_max_tries"]
    # Claim 2: payload moves loss in the grey zone, not at all above 19 dB.
    grey_payload_loss = spans(grey, "loss")["payload_bytes"]
    clean_payload_loss = spans(clean, "loss")["payload_bytes"]
    # Claim 3: payload still dominates goodput on the clean link (overhead
    # amortization never stops mattering).
    clean_goodput_dominant = dominant[("low-impact (SNR@31 = 25 dB)", "goodput")]

    report.emit(
        "",
        f"N_maxTries loss span : grey {grey_tries_loss:.3f} vs clean "
        f"{clean_tries_loss:.3f}",
        f"payload loss span    : grey {grey_payload_loss:.3f} vs clean "
        f"{clean_payload_loss:.3f}",
        f"clean-link goodput is dominated by: {clean_goodput_dominant}",
    )
    held = (
        grey_tries_loss > 5 * max(clean_tries_loss, 1e-6)
        and grey_payload_loss > 5 * max(clean_payload_loss, 1e-6)
        and clean_goodput_dominant == "payload_bytes"
    )
    report.shape_check(
        "loss knobs only matter in the grey zone; payload always drives "
        "goodput",
        held,
    )
    assert held
