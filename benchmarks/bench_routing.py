"""Routing subsystem — path composition and routed engine throughput.

Not a paper figure: this measures the multi-hop layer (`repro.routing`).
Two kernels are timed at network scale on jittered-lattice deployments:

* ``compose_paths`` — the segmented level-sweep that folds every uplink
  edge's metrics into end-to-end leaf→sink path metrics (energy/delay
  sums, delivery product, goodput min) in O(max_depth) numpy passes;
* ``RoutedFleetEngine.step`` — the full routed recommendation: policy
  gather for every uplink, relay-load fixed point through the queueing
  model, congested re-composition, and per-path feasibility.

Claims enforced every run:

* the vectorized composition matches the scalar parent-chain walk within
  1e-9 on the smaller deployment;
* a routed engine step sustains >= 100,000 leaf→sink paths/sec on the
  ~10,000-node deployment (congestion fixed point included).

Results land in ``BENCH_routing.json`` at the repo root.

Set ``BENCH_ROUTING_QUICK=1`` (the CI smoke mode) for fewer rounds.

Timing discipline matches ``bench_fleet.py``: every size gets an untimed
warmup (numpy first-touch and the one-off policy compile land there),
then ``ROUNDS`` timed rounds; the reported figure is the median and the
JSON records min/max so dispersion is visible.
"""

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fleet import FleetState, grid_topology
from repro.routing import (
    RoutedFleetEngine,
    compose_paths,
    compose_paths_scalar,
    routes_for_topology,
)
from repro.sim.rng import RngStreams

SNR_RANGE_DB = (0.0, 25.0)
SNR_QUANTUM_DB = 0.25
#: Routed steps are timed unconstrained: every uplink stays alive, so the
#: fixed point and composition run over the full deployment (a tight
#: end-to-end loss budget kills links, which *shrinks* the workload).
PATH_LOSS_EPS = None
PATHS_PER_SEC_FLOOR = 100_000.0
EQUIVALENCE_ATOL = 1e-9
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_routing.json"

_QUICK = bool(os.environ.get("BENCH_ROUTING_QUICK"))
ROUNDS = 3 if _QUICK else 5

#: Target node counts -> lattice edge counts. A side-``s`` jittered grid
#: has ``s**2`` nodes and ``2*s*(s-1)`` adjacent-pair edges; asking
#: ``grid_topology`` for exactly that many links yields the full lattice.
NODE_SIZES = (1024, 10_000)


def _lattice_links(n_nodes: int) -> int:
    side = int(round(n_nodes**0.5))
    return 2 * side * (side - 1)


def make_network(n_nodes: int, seed: int = 0):
    """(topology, routing table, synthetic per-edge state) at a size.

    The mesh (cost-weighted Dijkstra) strategy is used: over a jittered
    lattice it yields a branchy shortest-path tree with a realistic leaf
    count, whereas min-hop BFS with deterministic tie-breaks degenerates
    into a few long chains.
    """
    topology = grid_topology(_lattice_links(n_nodes), seed=seed)
    table = routes_for_topology(topology, strategy="mesh")
    rng = RngStreams(seed).stream("bench-routing")
    snr_db = rng.uniform(*SNR_RANGE_DB, size=len(topology))
    state = FleetState(
        base_snr_db=snr_db.copy(),
        snr_db=snr_db.copy(),
        noise_dbm=np.full(len(topology), -90.0),
        config_index=np.full(len(topology), -1, dtype=np.int64),
        objective_value=np.full(len(topology), np.nan),
    )
    return topology, table, state


def random_edge_metrics(n_edges: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return {
        "energy_uj_per_bit": rng.uniform(0.05, 2.0, n_edges),
        "delay_ms": rng.uniform(1.0, 80.0, n_edges),
        "plr_total": rng.uniform(0.0, 0.4, n_edges),
        "goodput_kbps": rng.uniform(5.0, 120.0, n_edges),
    }


#: Cross-test scratch shared between the composition and engine benches.
_RESULTS = {}


def test_compose_throughput(benchmark, report):
    """Time the level-sweep composition kernel; pin it to the scalar walk."""
    per_size = {}
    per_size_spread = {}
    tables = {}
    n_edges_by_size = {}
    for n_nodes in NODE_SIZES:
        topology, table, _ = make_network(n_nodes, seed=0)
        tables[n_nodes] = table
        n_edges_by_size[n_nodes] = len(topology)
        metrics = random_edge_metrics(len(topology), seed=0)
        compose_paths(table, **metrics)  # warmup / first-touch
        timings = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            compose_paths(table, **metrics)
            timings.append(time.perf_counter() - started)
        per_size[n_nodes] = statistics.median(timings)
        per_size_spread[n_nodes] = (min(timings), max(timings))

    small = min(NODE_SIZES)
    small_table = tables[small]
    small_metrics = random_edge_metrics(n_edges_by_size[small], seed=1)
    benchmark.pedantic(
        lambda: compose_paths(small_table, **small_metrics),
        rounds=ROUNDS,
        iterations=1,
    )
    fast = compose_paths(small_table, **small_metrics)
    slow = compose_paths_scalar(small_table, **small_metrics)
    max_error = 0.0
    for name in (
        "energy_uj_per_bit",
        "delay_ms",
        "delivery_prob",
        "goodput_kbps",
    ):
        got = getattr(fast, name)
        want = getattr(slow, name)
        finite = np.isfinite(want) & ~np.isnan(want)
        max_error = max(
            max_error, float(np.abs(got[finite] - want[finite]).max())
        )

    report.header("Routing: vectorized path composition (level sweep)")
    for n_nodes in NODE_SIZES:
        table = tables[n_nodes]
        elapsed = per_size[n_nodes]
        low, high = per_size_spread[n_nodes]
        report.emit(
            f"{n_nodes:>6} nodes : {elapsed * 1e3:8.2f} ms/pass  "
            f"({table.n_paths / elapsed:12,.0f} paths/sec, "
            f"{table.n_paths} leaf paths, max {table.max_hops} hops)  "
            f"[min {low * 1e3:.2f} / max {high * 1e3:.2f} ms]"
        )
    report.emit(
        f"equivalence  : max |vectorized - scalar| = {max_error:.2e} "
        f"at {small} nodes (tolerance {EQUIVALENCE_ATOL:g})"
    )
    _RESULTS["compose"] = {
        str(n): {
            "pass_ms": per_size[n] * 1e3,
            "pass_ms_min": per_size_spread[n][0] * 1e3,
            "pass_ms_max": per_size_spread[n][1] * 1e3,
            "paths_per_second": tables[n].n_paths / per_size[n],
            "n_paths": tables[n].n_paths,
            "max_hops": tables[n].max_hops,
        }
        for n in NODE_SIZES
    }
    _RESULTS["compose_max_error"] = max_error
    assert max_error <= EQUIVALENCE_ATOL


def test_routed_engine_step_throughput(benchmark, report):
    """Time the full routed step; assert the paths/sec floor at 10k nodes."""
    per_size = {}
    per_size_spread = {}
    info = {}
    for n_nodes in NODE_SIZES:
        _, table, state = make_network(n_nodes, seed=0)
        engine = RoutedFleetEngine(
            table,
            path_loss_eps=PATH_LOSS_EPS,
            snr_quantum_db=SNR_QUANTUM_DB,
            use_policy=True,
        )
        # Warmup: policy-table compile + numpy first-touch.
        engine.step(state.copy())
        timings = []
        reports = []
        for _ in range(ROUNDS):
            fresh = state.copy()
            started = time.perf_counter()
            reports.append(engine.step(fresh))
            timings.append(time.perf_counter() - started)
        per_size[n_nodes] = statistics.median(timings)
        per_size_spread[n_nodes] = (min(timings), max(timings))
        last = reports[-1]
        info[n_nodes] = {
            "n_paths": last.n_paths,
            "n_paths_feasible": last.n_paths_feasible,
            "relay_iterations": last.relay_iterations,
            "relay_converged": last.relay_converged,
            "max_hops": table.max_hops,
        }

    largest = max(NODE_SIZES)
    _, table, state = make_network(largest, seed=0)
    engine = RoutedFleetEngine(
        table,
        path_loss_eps=PATH_LOSS_EPS,
        snr_quantum_db=SNR_QUANTUM_DB,
        use_policy=True,
    )
    engine.step(state.copy())
    benchmark.pedantic(
        lambda: engine.step(state.copy()), rounds=ROUNDS, iterations=1
    )

    paths_per_sec = {
        n: info[n]["n_paths"] / per_size[n] for n in NODE_SIZES
    }
    report.header(
        "Routing: routed engine step (policy gather + relay fixed point)"
    )
    for n_nodes in NODE_SIZES:
        elapsed = per_size[n_nodes]
        low, high = per_size_spread[n_nodes]
        meta = info[n_nodes]
        report.emit(
            f"{n_nodes:>6} nodes : {elapsed * 1e3:8.2f} ms/step  "
            f"({paths_per_sec[n_nodes]:12,.0f} paths/sec, "
            f"{meta['n_paths_feasible']}/{meta['n_paths']} paths ok, "
            f"{meta['relay_iterations']} load sweeps)  "
            f"[min {low * 1e3:.2f} / max {high * 1e3:.2f} ms]"
        )
    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "routing",
                "rounds": ROUNDS,
                "quick": _QUICK,
                "snr_quantum_db": SNR_QUANTUM_DB,
                "path_loss_eps": PATH_LOSS_EPS,
                "compose": _RESULTS.get("compose"),
                "compose_max_error": _RESULTS.get("compose_max_error"),
                "equivalence_atol": EQUIVALENCE_ATOL,
                "engine_step_ms": {
                    str(n): per_size[n] * 1e3 for n in NODE_SIZES
                },
                "engine_step_ms_min": {
                    str(n): per_size_spread[n][0] * 1e3 for n in NODE_SIZES
                },
                "engine_step_ms_max": {
                    str(n): per_size_spread[n][1] * 1e3 for n in NODE_SIZES
                },
                "engine_paths_per_second": {
                    str(n): paths_per_sec[n] for n in NODE_SIZES
                },
                "engine_info": {str(n): info[n] for n in NODE_SIZES},
                "paths_per_second_floor": PATHS_PER_SEC_FLOOR,
            },
            indent=2,
        )
        + "\n"
    )
    report.emit(f"recorded     : {RESULT_PATH.name}")
    report.shape_check(
        f"routed step sustains >= {PATHS_PER_SEC_FLOOR:,.0f} leaf->sink "
        f"paths/sec at {largest} nodes "
        f"({paths_per_sec[largest]:,.0f} measured)",
        paths_per_sec[largest] >= PATHS_PER_SEC_FLOOR,
    )
    assert info[largest]["relay_converged"]
    assert paths_per_sec[largest] >= PATHS_PER_SEC_FLOOR
