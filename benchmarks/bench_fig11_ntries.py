"""Fig. 11 — the average-transmissions model (Eq. 7, α = 0.02, β = −0.18).

Measures mean transmissions per packet over an (SNR × payload) sweep with a
deep retry budget and re-fits N_tries = 1 + α·l_D·exp(β·SNR).
"""

import numpy as np
import pytest

from repro.campaign import points_as_arrays, sweep_snr_payload
from repro.core import NtriesModel, constants, fit_ntries_model

SNRS = list(np.arange(5.0, 26.0, 2.0))
PAYLOADS = [5, 20, 35, 50, 65, 80, 110]


@pytest.fixture(scope="module")
def sweep():
    return sweep_snr_payload(
        SNRS, PAYLOADS, n_packets=2500, n_max_tries=8, seed=11
    )


def test_fig11_ntries_model(benchmark, report, sweep):
    payload, snr, _, _, tries = points_as_arrays(sweep)
    fit = benchmark(fit_ntries_model, payload, snr, tries)

    model = NtriesModel()
    report.header("Fig. 11: mean transmissions vs SNR; Eq. 7 re-fit")
    report.emit(f"{'SNR':>5}  {'measured (110 B)':>16}  {'paper model':>12}")
    measured_110 = {
        p.mean_snr_db: p.mean_tries for p in sweep if p.payload_bytes == 110
    }
    for s in SNRS[::2]:
        report.emit(
            f"{s:>5.0f}  {measured_110[s]:>16.3f}  "
            f"{model.expected_tries(110, s):>12.3f}"
        )
    report.emit(
        "",
        f"Eq. 7 re-fit : {fit.summary()}",
        f"paper        : alpha={constants.NTRIES_FIT.alpha}, "
        f"beta={constants.NTRIES_FIT.beta}",
    )
    held = (
        0.5 * constants.NTRIES_FIT.alpha < fit.alpha < 2.0 * constants.NTRIES_FIT.alpha
        and abs(fit.beta - constants.NTRIES_FIT.beta) < 0.05
        and fit.r_squared > 0.8
    )
    report.shape_check("Eq. 7 exponential family with paper-scale constants", held)
    assert held
