"""Fig. 3 — log-normal path loss (n = 2.19, σ = 3.2).

Surveys mean RSSI at the six campaign positions and re-fits the log-normal
shadowing model, reproducing the regression behind the paper's Fig. 3.
"""

import pytest

from repro.analysis.channel_stats import path_loss_fit_from_survey, survey_rssi
from repro.channel import HALLWAY_2012
from repro.channel.pathloss import (
    DEFAULT_PATH_LOSS_EXPONENT,
    DEFAULT_SHADOWING_SIGMA_DB,
)

DISTANCES = (5.0, 10.0, 15.0, 20.0, 30.0, 35.0)


@pytest.fixture(scope="module")
def survey():
    return survey_rssi(
        HALLWAY_2012, DISTANCES, ptx_levels=(31,), n_samples=400, seed=3
    )


def test_fig03_path_loss_fit(benchmark, report, survey):
    fit = benchmark(path_loss_fit_from_survey, survey, 31)

    report.header("Fig. 3: RSSI vs distance and the log-normal fit")
    report.emit(f"{'distance (m)':>12}  {'mean RSSI (dBm)':>16}")
    for cell in survey:
        report.emit(f"{cell.distance_m:>12.0f}  {cell.mean_rssi_dbm:>16.2f}")
    report.emit(
        "",
        f"fitted exponent n : {fit['exponent']:.2f}   "
        f"(paper: {DEFAULT_PATH_LOSS_EXPONENT})",
        f"fitted sigma (dB) : {fit['sigma_db']:.2f}   "
        f"(paper: {DEFAULT_SHADOWING_SIGMA_DB})",
        f"reference loss    : {fit['reference_loss_db']:.1f} dB at 1 m",
    )
    held = (
        abs(fit["exponent"] - DEFAULT_PATH_LOSS_EXPONENT) < 1.0
        and 1.0 < fit["sigma_db"] < 6.0
    )
    report.shape_check("log-normal model with n ~ 2.2, sigma ~ 3 dB", held)
    assert held
