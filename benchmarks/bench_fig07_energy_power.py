"""Fig. 7 — energy-optimal output power at 35 m, per payload size.

The paper: U_eng is minimized at the power level whose SNR just clears the
payload's low-loss need; larger payloads need a higher optimal level (110 B
wants ~2 levels more than small payloads at 35 m).
"""

import numpy as np
import pytest

from repro.channel import HALLWAY_2012, LinkChannel
from repro.radio import cc2420
from repro.sim.fastlink import FastLink

PAYLOADS = (20, 65, 110)
LEVELS = cc2420.PA_LEVELS


@pytest.fixture(scope="module")
def energy_surface():
    """Measured U_eng (µJ/bit) per (payload, level) at 35 m."""
    surface = {}
    for li, level in enumerate(LEVELS):
        channel = LinkChannel(
            HALLWAY_2012, 35.0, level, np.random.default_rng((7, li))
        )
        for pi, payload in enumerate(PAYLOADS):
            fast = FastLink(environment=HALLWAY_2012, seed=700 + li * 10 + pi)
            result = fast.run(
                mean_snr_db=channel.mean_snr_db,
                payload_bytes=payload,
                n_packets=3000,
                n_max_tries=8,
            )
            surface[(payload, level)] = (
                result.energy_per_info_bit_j(level) * 1e6,
                channel.mean_snr_db,
            )
    return surface


def test_fig07_optimal_power_at_35m(benchmark, report, energy_surface):
    def find_optima():
        return {
            payload: min(
                LEVELS, key=lambda lvl: energy_surface[(payload, lvl)][0]
            )
            for payload in PAYLOADS
        }

    optima = benchmark(find_optima)

    report.header("Fig. 7: U_eng (uJ/bit) vs P_tx at 35 m")
    header = f"{'P_tx':>5} {'SNR dB':>7}" + "".join(
        f"  l_D={p:>3}" for p in PAYLOADS
    )
    report.emit(header)
    for level in LEVELS:
        snr = energy_surface[(PAYLOADS[0], level)][1]
        cells = "".join(
            f"  {energy_surface[(p, level)][0]:7.3f}" for p in PAYLOADS
        )
        report.emit(f"{level:>5} {snr:>7.1f}{cells}")
    report.emit(
        "",
        f"energy-optimal level per payload: "
        + ", ".join(f"{p} B -> P_tx {optima[p]}" for p in PAYLOADS),
        "(paper at 35 m: 110 B wants a higher level than small/medium "
        "payloads)",
    )
    held = optima[110] >= optima[65] >= optima[20] and optima[110] > optima[20]
    report.shape_check("larger payload needs higher optimal P_tx", held)
    assert held
