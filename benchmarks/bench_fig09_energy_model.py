"""Fig. 9 — the empirical energy model's optimal payload vs SNR.

Evaluates Eq. 2 with the Eq. 3 PER model over the payload grid: the optimal
l_D is the 114-byte maximum down to ≈17 dB and collapses below 40 bytes by
5 dB (the paper's exact reading of this figure).
"""

import numpy as np

from repro.core import EnergyModel
from repro.core.constants import ENERGY_MAX_PAYLOAD_SNR_DB

SNRS = (5.0, 8.0, 11.0, 14.0, 17.0, 20.0)


def test_fig09_model_optimal_payload(benchmark, report):
    model = EnergyModel()

    def optimal_payloads():
        return {snr: model.optimal_payload_bytes(31, snr) for snr in SNRS}

    optima = benchmark(optimal_payloads)

    report.header("Fig. 9: model U_eng vs payload; optimal l_D per SNR")
    report.emit(f"{'SNR (dB)':>8}  {'optimal l_D':>11}  {'U_eng (uJ/bit)':>15}")
    for snr in SNRS:
        payload, u = optima[snr]
        report.emit(f"{snr:>8.0f}  {payload:>11}  {u * 1e6:>15.4f}")

    threshold = model.snr_threshold_for_max_payload()
    report.emit(
        "",
        f"model threshold for max payload: {threshold:.1f} dB "
        f"(paper: ~{ENERGY_MAX_PAYLOAD_SNR_DB:.0f} dB)",
        f"optimal l_D at 5 dB: {optima[5.0][0]} B (paper: below ~40 B)",
    )
    payload_series = [optima[snr][0] for snr in SNRS]
    held = (
        abs(threshold - ENERGY_MAX_PAYLOAD_SNR_DB) < 1.5
        and optima[17.0][0] == 114
        and optima[20.0][0] == 114
        and optima[5.0][0] <= 40
        and payload_series == sorted(payload_series)
    )
    report.shape_check(
        "optimal l_D monotone in SNR, max above ~17 dB, <40 B at 5 dB", held
    )
    assert held
