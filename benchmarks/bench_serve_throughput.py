"""Serving throughput — req/s and latency with and without the cache.

Not a paper figure: this measures the `repro.serve` oracle service itself.
An in-process load generator drives the full parse → queue → batch → solve
path (everything but the socket) and reports requests/second plus p50/p99
latency for three regimes:

* **uncached** — every request pays a fresh grid evaluation (the naive
  per-request baseline the cache replaces);
* **warm cache** — all requests hit a precomputed sweep table;
* **mixed** — a handful of cold links amid warm traffic (LRU tier).

The warm path must be >= 10x faster per request than the uncached
baseline; the run fails if the cache ever loses that margin.
"""

import pytest

from repro.core.optimization import TuningGrid
from repro.serve import Client, Oracle, OracleService, parse_recommend

#: Thinned payload axis: same shape as the serving default, ~4x fewer
#: configurations, so the uncached baseline stays benchmarkable.
GRID = TuningGrid(payload_values_bytes=tuple(range(2, 115, 8)))

WARM_LINK = {"distance_m": 10.0}
OBJECTIVES = ("energy", "goodput", "delay", "loss")
WARM_REQUESTS = 400

#: Cross-test scratch: the uncached per-request mean, filled by the
#: baseline bench and read by the warm bench for the speedup assertion.
_BASELINE = {}


@pytest.fixture(scope="module")
def serving():
    oracle = Oracle(grid=GRID, lru_capacity=32)
    oracle.precompute([WARM_LINK["distance_m"]])
    service = OracleService(oracle, queue_capacity=512, workers=2)
    yield oracle, service, Client(service)
    service.close()


def test_uncached_per_request_baseline(serving, benchmark, report):
    oracle, _, _ = serving
    request = parse_recommend({"link": WARM_LINK, "objective": "energy"})
    benchmark.pedantic(
        oracle.uncached_recommend, args=(request,), rounds=3, iterations=1
    )
    per_request_s = benchmark.stats.stats.mean
    _BASELINE["uncached_s"] = per_request_s
    report.header("Serve throughput: uncached per-request grid evaluation")
    report.emit(
        f"grid: {len(GRID)} configurations per request",
        f"per request : {per_request_s * 1e3:8.1f} ms",
        f"throughput  : {1.0 / per_request_s:8.2f} req/s",
    )


def test_warm_cache_throughput(serving, benchmark, report):
    _, service, client = serving
    payloads = [
        {"link": WARM_LINK, "objective": objective} for objective in OBJECTIVES
    ]

    def burst():
        for i in range(WARM_REQUESTS):
            client.recommend(payloads[i % len(payloads)])

    benchmark.pedantic(burst, rounds=3, iterations=1)
    per_request_s = benchmark.stats.stats.mean / WARM_REQUESTS
    histogram = service.metrics.histogram("request_total_s")
    p50_ms = histogram.percentile(0.5) * 1e3
    p99_ms = histogram.percentile(0.99) * 1e3
    report.header("Serve throughput: warm cache (precomputed sweep table)")
    report.emit(
        f"requests    : {histogram.count} completed",
        f"per request : {per_request_s * 1e6:8.1f} us",
        f"throughput  : {1.0 / per_request_s:8.0f} req/s",
        f"latency     : p50 {p50_ms:.3f} ms, p99 {p99_ms:.3f} ms",
    )
    uncached_s = _BASELINE.get("uncached_s")
    if uncached_s is not None:
        speedup = uncached_s / per_request_s
        report.shape_check(
            f"warm-cache path >= 10x faster than uncached "
            f"({speedup:,.0f}x measured)",
            speedup >= 10.0,
        )
        assert speedup >= 10.0


def test_mixed_cold_and_warm_traffic(serving, benchmark, report):
    _, service, client = serving
    cold_links = [{"distance_m": 21.0 + i} for i in range(3)]

    def mixed():
        for i in range(30):
            link = cold_links[i % 3] if i < 3 else WARM_LINK
            client.recommend({"link": link, "objective": "energy"})

    benchmark.pedantic(mixed, rounds=2, iterations=1)
    info = service.metrics
    report.header("Serve throughput: mixed cold/warm traffic (LRU tier)")
    report.emit(
        f"total batch count : {info.counter('batches_total')}",
        f"cache tiers hit   : precomputed="
        f"{info.counter('cache_precomputed_total')}, "
        f"lru={info.counter('cache_lru_total')}, "
        f"miss={info.counter('cache_miss_total')}",
        f"mean request      : "
        f"{benchmark.stats.stats.mean / 30 * 1e3:8.2f} ms (30 requests, "
        f"3 cold links)",
    )
    assert info.counter("cache_miss_total") >= 3
