"""Harness performance — configurations/second for both engines.

Not a paper figure: this measures the reproduction machinery itself, to
document what a full Table I replay costs. The DES handles queueing
configurations; the vectorized engine covers the queueless half of the space
two orders of magnitude faster.
"""

import pytest

from repro.campaign import CampaignRunner
from repro.channel import HALLWAY_2012
from repro.config import StackConfig, TABLE_I_SPACE

DES_CONFIG = StackConfig(
    distance_m=20.0, ptx_level=23, n_max_tries=3, q_max=30,
    t_pkt_ms=30.0, payload_bytes=110,
)
FAST_CONFIG = DES_CONFIG.with_updates(q_max=1)
PACKETS = 300


def test_des_engine_throughput(benchmark, report):
    runner = CampaignRunner(
        environment=HALLWAY_2012, packets_per_config=PACKETS, engine="des"
    )
    summary = benchmark(runner.run_config, DES_CONFIG, 0)
    assert summary.n_packets == PACKETS
    per_config_s = benchmark.stats.stats.mean
    full_sweep_h = per_config_s * len(TABLE_I_SPACE) / 3600
    report.header("Harness throughput: event-driven engine")
    report.emit(
        f"one configuration ({PACKETS} packets): {per_config_s * 1e3:.0f} ms",
        f"full Table I replay ({len(TABLE_I_SPACE)} configs, single core): "
        f"~{full_sweep_h:.1f} h  -> use run_campaign_parallel / "
        f"run_campaign_checkpointed",
    )


def test_fast_engine_throughput(benchmark, report):
    runner = CampaignRunner(
        environment=HALLWAY_2012, packets_per_config=PACKETS, engine="fast"
    )
    summary = benchmark(runner.run_config, FAST_CONFIG, 0)
    assert summary.n_packets == PACKETS
    per_config_s = benchmark.stats.stats.mean
    queueless = len(TABLE_I_SPACE) // 2
    report.header("Harness throughput: vectorized engine (queueless configs)")
    report.emit(
        f"one configuration ({PACKETS} packets): {per_config_s * 1e3:.2f} ms",
        f"queueless half of Table I ({queueless} configs): "
        f"~{per_config_s * queueless:.0f} s single-core",
    )
