"""Policy tables — compile once, answer recommends as O(1) bin lookups.

Not a paper figure: this measures ``repro.core.optimization.policy``, the
compiled SNR→best-configuration tables behind the serve tier-0 path and
the fleet engine's ``np.take`` gather. The claim under test is the whole
point of compiling: *lookup cost must not grow with the grid*. A
``PolicyTable`` is compiled for three grids spanning 4,560 to 108,480
configurations, and the per-lookup latency (full serve-path
``table.lookup`` — bin index, gather, ``ConfigEvaluation`` construction)
is asserted flat across them while compile time grows linearly.

# reprolint: hot-path — compile and lookup timings recorded in BENCH_policy.json

Claims enforced every run:

* per-lookup latency at the largest grid is within ``FLATNESS_CEILING_X``
  of the smallest grid (measured ~1x: the lookup never touches the grid);
* the policy fleet engine sustains >= 1,000,000 links/sec at 10,000
  links, with answers identical to the exact engine (same config index
  column, same objective column bit for bit — max objective error 0.0).

Results land in ``BENCH_policy.json`` at the repo root.

Set ``BENCH_POLICY_QUICK=1`` (the CI smoke mode) for fewer rounds,
fewer lookups per round and a narrower SNR axis (101 bins instead of
201 — compile cost scales with bins x configs, lookup cost with
neither, so the flatness claim is unaffected).

Timing discipline: compiles are timed once per grid (they are one-off
by design; ``compile_ms`` in the JSON is that single measurement).
Lookups get an untimed warmup pass per grid and are then timed over
``ROUNDS`` rounds of ``LOOKUPS_PER_ROUND`` calls; the reported figure
is the median round, and the JSON records min/max so dispersion is
visible when a run was noisy.
"""

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.optimization import (
    DEFAULT_SNR_RANGE_DB,
    PolicyTable,
    TuningGrid,
)
from repro.fleet import FleetEngine, FleetState
from repro.sim.rng import RngStreams

OBJECTIVE = "energy"
SNR_QUANTUM_DB = 0.25
FLATNESS_CEILING_X = 5.0
FLEET_LINKS = 10_000
FLEET_FLOOR_LINKS_PER_S = 1_000_000.0
FLEET_SNR_RANGE_DB = (0.0, 25.0)
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_policy.json"

_QUICK = bool(os.environ.get("BENCH_POLICY_QUICK"))
SNR_RANGE_DB = (0.0, 25.0) if _QUICK else DEFAULT_SNR_RANGE_DB
ROUNDS = 3 if _QUICK else 5
LOOKUPS_PER_ROUND = 500 if _QUICK else 2000

#: The grid ladder: the paper's grid, then the same knobs refined/extended
#: until the table is ~24x wider. Lookup latency must not notice.
GRIDS = (
    ("paper", TuningGrid()),
    (
        "fine",
        TuningGrid(
            payload_values_bytes=tuple(range(2, 115)),
            d_retry_values_ms=(0.0, 1.0),
            q_max_values=(1, 10, 30),
        ),
    ),
    (
        "extended",
        TuningGrid(
            payload_values_bytes=tuple(range(2, 115)),
            n_max_tries_values=(1, 2, 3, 4, 5, 6, 7, 8, 10, 12),
            d_retry_values_ms=(0.0, 1.0, 5.0),
            q_max_values=(1, 30),
            t_pkt_values_ms=(30.0, 60.0),
        ),
    ),
)

#: Cross-test scratch: per-grid rows accumulate here, the fleet test
#: writes the combined JSON.
_RESULTS = {}


def _lookup_snrs(n: int, seed: int = 0) -> list:
    """On-axis SNR samples, pre-snapped to bin centers.

    Snapping keeps the timing honest: every call takes the hit path
    (feasible or infeasible bin), none the off-axis error path.
    """
    rng = RngStreams(seed).stream("bench-policy")
    low, high = SNR_RANGE_DB
    raw = rng.uniform(low, high, size=n)
    snapped = np.round(raw / SNR_QUANTUM_DB) * SNR_QUANTUM_DB
    return [float(v) for v in snapped]


def _time_lookups(table: PolicyTable, snrs: list):
    """(median, min, max) seconds per round of ``len(snrs)`` lookups."""
    from repro.errors import InfeasibleError

    def run_round() -> None:
        for snr_db in snrs:
            try:
                table.lookup(snr_db)
            except InfeasibleError:
                pass

    run_round()  # warmup: first-touch and any lazy numpy costs
    timings = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        run_round()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings), min(timings), max(timings)


def test_policy_compile_and_lookup_flatness(benchmark, report):
    """Compile each grid once; assert lookup latency does not scale."""
    snrs = _lookup_snrs(LOOKUPS_PER_ROUND)
    rows = {}
    for label, grid in GRIDS:
        started = time.perf_counter()
        table = PolicyTable.compile(
            grid=grid,
            objective=OBJECTIVE,
            snr_quantum_db=SNR_QUANTUM_DB,
            snr_range_db=SNR_RANGE_DB,
        )
        compile_s = time.perf_counter() - started
        median_s, low_s, high_s = _time_lookups(table, snrs)
        rows[label] = {
            "configurations": table.n_configs,
            "snr_bins": len(table),
            "table_bytes": table.nbytes,
            "compile_ms": compile_s * 1e3,
            "lookup_us": median_s * 1e6 / len(snrs),
            "lookup_us_min": low_s * 1e6 / len(snrs),
            "lookup_us_max": high_s * 1e6 / len(snrs),
        }
    _RESULTS["grids"] = rows

    # Give pytest-benchmark the smallest-grid lookup round (the serve
    # tier-0 path) as the headline number for --benchmark-only runs.
    smallest = GRIDS[0][1]
    table = PolicyTable.compile(
        grid=smallest,
        objective=OBJECTIVE,
        snr_quantum_db=SNR_QUANTUM_DB,
        snr_range_db=SNR_RANGE_DB,
    )
    from repro.errors import InfeasibleError

    def one_round() -> None:
        for snr_db in snrs:
            try:
                table.lookup(snr_db)
            except InfeasibleError:
                pass

    benchmark.pedantic(one_round, rounds=ROUNDS, iterations=1)

    lookup_us = [rows[label]["lookup_us"] for label, _ in GRIDS]
    flatness = max(lookup_us) / min(lookup_us)
    _RESULTS["lookup_flatness_x"] = flatness

    report.header("Policy tables: compile cost vs O(1) lookup")
    report.emit(
        f"objective    : {OBJECTIVE}, quantum {SNR_QUANTUM_DB:g} dB, "
        f"axis {SNR_RANGE_DB[0]:g}..{SNR_RANGE_DB[1]:g} dB "
        f"({rows[GRIDS[0][0]]['snr_bins']} bins)"
    )
    for label, _ in GRIDS:
        row = rows[label]
        report.emit(
            f"{label:>9} : {row['configurations']:>7} configs  "
            f"compile {row['compile_ms']:8.1f} ms  "
            f"table {row['table_bytes'] / 1024:7.1f} KiB  "
            f"lookup {row['lookup_us']:6.2f} us "
            f"[min {row['lookup_us_min']:.2f} / max {row['lookup_us_max']:.2f}]"
        )
    report.emit(
        f"flatness     : {flatness:.2f}x largest/smallest per-lookup "
        f"latency across a "
        f"{rows['extended']['configurations'] / rows['paper']['configurations']:.0f}x "
        f"grid-size span (ceiling {FLATNESS_CEILING_X:g}x)"
    )
    report.shape_check(
        "policy lookup latency is flat in grid size "
        f"({flatness:.2f}x <= {FLATNESS_CEILING_X:g}x)",
        flatness <= FLATNESS_CEILING_X,
    )
    assert rows["extended"]["configurations"] >= 100_000
    assert flatness <= FLATNESS_CEILING_X


def test_policy_fleet_throughput(benchmark, report):
    """The policy fleet engine: >= 1M links/sec, answers exact."""
    rng = RngStreams(0).stream("bench-policy-fleet")
    snr_db = rng.uniform(*FLEET_SNR_RANGE_DB, size=FLEET_LINKS)

    def fresh_state() -> FleetState:
        return FleetState(
            base_snr_db=snr_db.copy(),
            snr_db=snr_db.copy(),
            noise_dbm=np.full(FLEET_LINKS, -90.0),
            config_index=np.full(FLEET_LINKS, -1, dtype=np.int64),
            objective_value=np.full(FLEET_LINKS, np.nan),
        )

    grid = TuningGrid()
    policy_engine = FleetEngine(
        grid=grid, snr_quantum_db=SNR_QUANTUM_DB, use_policy=True
    )
    exact_engine = FleetEngine(
        grid=grid, snr_quantum_db=SNR_QUANTUM_DB, use_policy=False
    )

    policy_engine.step(fresh_state())  # warmup: the one-off table compile
    timings = []
    for _ in range(ROUNDS):
        state = fresh_state()
        started = time.perf_counter()
        policy_engine.step(state)
        timings.append(time.perf_counter() - started)
    step_s = statistics.median(timings)
    links_per_s = FLEET_LINKS / step_s

    benchmark.pedantic(
        lambda: policy_engine.step(fresh_state()), rounds=ROUNDS, iterations=1
    )

    policy_state = fresh_state()
    exact_state = fresh_state()
    policy_engine.step(policy_state)
    exact_engine.step(exact_state)
    identical = bool(
        np.array_equal(policy_state.config_index, exact_state.config_index)
        and np.array_equal(
            policy_state.objective_value,
            exact_state.objective_value,
            equal_nan=True,
        )
    )
    both_finite = np.isfinite(policy_state.objective_value) & np.isfinite(
        exact_state.objective_value
    )
    max_error = float(
        np.max(
            np.abs(
                policy_state.objective_value[both_finite]
                - exact_state.objective_value[both_finite]
            ),
            initial=0.0,
        )
    )

    stats = policy_engine.policy_table().stats()
    report.header("Policy tables: fleet engine step (np.take gather)")
    report.emit(
        f"fleet        : {FLEET_LINKS} links, grid {len(grid)} configs, "
        f"table {stats['table_bytes'] / 1024:.1f} KiB "
        f"({stats['n_bins']} bins)",
        f"step         : {step_s * 1e3:8.2f} ms median over {ROUNDS} rounds "
        f"[min {min(timings) * 1e3:.2f} / max {max(timings) * 1e3:.2f} ms]",
        f"throughput   : {links_per_s:12,.0f} links/sec "
        f"(floor {FLEET_FLOOR_LINKS_PER_S:,.0f})",
        f"equivalence  : max objective error {max_error:.2e} vs the exact "
        f"engine, fleet-wide identical: {identical}",
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "policy",
                "objective": OBJECTIVE,
                "snr_quantum_db": SNR_QUANTUM_DB,
                "snr_range_db": list(SNR_RANGE_DB),
                "rounds": ROUNDS,
                "lookups_per_round": LOOKUPS_PER_ROUND,
                "grids": _RESULTS.get("grids", {}),
                "lookup_flatness_x": _RESULTS.get("lookup_flatness_x"),
                "lookup_flatness_ceiling_x": FLATNESS_CEILING_X,
                "fleet_links": FLEET_LINKS,
                "fleet_step_ms": step_s * 1e3,
                "fleet_step_ms_min": min(timings) * 1e3,
                "fleet_step_ms_max": max(timings) * 1e3,
                "fleet_links_per_second": links_per_s,
                "fleet_links_per_second_floor": FLEET_FLOOR_LINKS_PER_S,
                "fleet_max_objective_error": max_error,
                "fleet_identical_to_exact": identical,
            },
            indent=2,
        )
        + "\n"
    )
    report.emit(f"recorded     : {RESULT_PATH.name}")
    report.shape_check(
        f"policy fleet step >= {FLEET_FLOOR_LINKS_PER_S:,.0f} links/sec "
        f"({links_per_s:,.0f} measured)",
        links_per_s >= FLEET_FLOOR_LINKS_PER_S,
    )
    assert identical, "policy engine diverged from the exact engine"
    assert max_error == 0.0
    assert links_per_s >= FLEET_FLOOR_LINKS_PER_S
