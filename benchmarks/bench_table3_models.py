"""Table III — the summary of empirical models (E, G, D, L).

Evaluates each model at reference operating points, prints the quantitative
summary the paper's Table III lists, and benchmarks a full four-model
evaluation (the unit of work the Sec. VIII optimizer performs per candidate
configuration).
"""

from repro.config import StackConfig
from repro.core import (
    DelayModel,
    EnergyModel,
    GoodputModel,
    NtriesModel,
    PerModel,
    PlrRadioModel,
    ServiceTimeModel,
)
from repro.core import constants

REFERENCE = dict(payload_bytes=110, snr_db=15.0, n_max_tries=3, d_retry_ms=0.0)


def test_table3_model_summary(benchmark, report):
    per = PerModel()
    ntries = NtriesModel()
    plr = PlrRadioModel()
    service = ServiceTimeModel()
    energy = EnergyModel()
    goodput = GoodputModel()
    delay = DelayModel()
    config = StackConfig(
        payload_bytes=110, n_max_tries=3, t_pkt_ms=30.0, q_max=30
    )

    def evaluate_all():
        return {
            "PER": per.per(110, 15.0),
            "N_tries": ntries.expected_tries(110, 15.0),
            "PLR_radio": plr.plr_radio(110, 15.0, 3),
            "T_service_ms": service.mean_service_time_s(110, 15.0, 3, 0.0) * 1e3,
            "U_eng_uj": energy.u_eng_uj_per_bit(31, 110, 15.0),
            "maxGoodput_kbps": goodput.max_goodput_kbps(110, 15.0, 3),
            "rho": delay.utilization(config, 15.0),
        }

    values = benchmark(evaluate_all)

    report.header("Table III: empirical model summary (l_D=110 B, SNR=15 dB)")
    report.emit(
        f"{'model':<14}{'equation':<44}{'value @ reference'}",
        f"{'L (PER)':<14}{'PER = a*l_D*exp(b*SNR), a=0.0128 b=-0.15':<44}"
        f"{values['PER']:.4f}",
        f"{'N_tries':<14}{'N = 1 + a*l_D*exp(b*SNR), a=0.02 b=-0.18':<44}"
        f"{values['N_tries']:.4f}",
        f"{'L (radio)':<14}{'PLR = (a*l_D*exp(b*SNR))^N, a=0.011 b=-0.145':<44}"
        f"{values['PLR_radio']:.6f}",
        f"{'D (service)':<14}{'Eqs. 5-6 (T_SPI,T_MAC,T_frame,T_ACK,...)':<44}"
        f"{values['T_service_ms']:.2f} ms",
        f"{'E (energy)':<14}{'U = E_tx*(l0+l_D)/(l_D*(1-PER))':<44}"
        f"{values['U_eng_uj']:.4f} uJ/bit",
        f"{'G (goodput)':<14}{'maxG = l_D/T_service*(1-PLR)':<44}"
        f"{values['maxGoodput_kbps']:.2f} kb/s",
        f"{'D (queueing)':<14}{'rho = T_service/T_pkt (Eq. 9)':<44}"
        f"{values['rho']:.3f}",
    )

    # Internal consistency of the composition (Table III's whole point: the
    # models plug into each other).
    recomposed_goodput = (
        110 * 8 / (values["T_service_ms"] / 1e3) * (1 - values["PLR_radio"]) / 1e3
    )
    consistent = abs(recomposed_goodput - values["maxGoodput_kbps"]) < 0.01
    report.emit(
        "",
        f"G recomposed from D and L: {recomposed_goodput:.2f} kb/s "
        f"(direct: {values['maxGoodput_kbps']:.2f})",
    )
    report.shape_check("models compose exactly as Table III describes", consistent)
    assert consistent
    assert 0 < values["PER"] < 1
    assert values["rho"] < 1
