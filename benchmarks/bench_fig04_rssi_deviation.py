"""Fig. 4 — RSSI deviation per (distance, P_tx).

The paper's observations: RSSI deviation shows no consistent correlation
with output power; the 35 m position is markedly more variable (human
shadowing near the kitchen/meeting room); and at 35 m / P_tx 3 the deviation
collapses because readings sit at the CC2420 sensitivity.
"""

import numpy as np
import pytest

from repro.analysis.channel_stats import rssi_deviation_table, survey_rssi
from repro.channel import HALLWAY_2012

DISTANCES = (5.0, 10.0, 15.0, 20.0, 30.0, 35.0)
LEVELS = (3, 11, 19, 27, 31)


@pytest.fixture(scope="module")
def survey():
    return survey_rssi(
        HALLWAY_2012, DISTANCES, LEVELS, n_samples=400, interval_s=0.2, seed=4
    )


def test_fig04_rssi_deviation(benchmark, report, survey):
    table = benchmark(rssi_deviation_table, survey)

    report.header("Fig. 4: RSSI standard deviation (dB) per distance x P_tx")
    header = f"{'d (m)':>6}" + "".join(f"  P{lvl:>2}" for lvl in LEVELS)
    report.emit(header)
    for d in DISTANCES:
        cells = "".join(f"  {table[(d, lvl)]:4.1f}" for lvl in LEVELS)
        report.emit(f"{d:>6.0f}{cells}")

    # Claim 1: 35 m is the most variable position at full power.
    by_distance = {d: table[(d, 31)] for d in DISTANCES}
    most_variable = max(by_distance, key=by_distance.get)
    # Claim 2: no consistent power correlation — deviation is not monotone
    # in P_tx at every distance (evaluated away from the sensitivity clamp).
    monotone_everywhere = all(
        all(
            table[(d, LEVELS[i])] <= table[(d, LEVELS[i + 1])] + 1e-12
            for i in range(len(LEVELS) - 1)
        )
        for d in DISTANCES[:-1]
    )
    # Claim 3: sensitivity clamp at 35 m / P_tx 3.
    clamp = table[(35.0, 3)] < table[(35.0, 31)]

    report.emit(
        "",
        f"most variable position at P_tx 31 : {most_variable:.0f} m "
        f"(paper: 35 m)",
        f"deviation monotone in P_tx at all positions : {monotone_everywhere} "
        f"(paper: no consistent correlation)",
        f"35 m / P_tx 3 deviation collapsed by sensitivity clamp : {clamp}",
    )
    held = most_variable == 35.0 and not monotone_everywhere and clamp
    report.shape_check(
        "35 m most variable; no power correlation; clamp at 35 m/P3", held
    )
    assert held
