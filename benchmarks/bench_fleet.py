"""Fleet engine — network-scale batched solve vs the per-link oracle.

Not a paper figure: this measures the multi-link engine (`repro.fleet`).
One `FleetEngine.step` recommends configurations for *every* link of a
deployment in a single vectorized pass over the shared tuning grid
(unique quantized SNR bins solved once, links scatter from their bin).
The naive alternative — one full `SweepTable.build` + epsilon-constraint
solve per link, exactly what a loop over the single-link oracle would do —
is sampled on a subset and extrapolated.

Both engine modes are timed side by side: the exact per-step masked
argmin (``use_policy=False``) and the policy-table gather
(``use_policy=True``), whose per-step cost is a handful of ``np.take``
calls against a table compiled once during warmup.

Claims enforced every run:

* the batched engine is >= 20x faster than the naive per-link loop at
  10,000 links (links/sec, naive extrapolated from a sample);
* on a sampled subset of links the batched answer equals the naive
  per-link solve: identical configuration choice, objective within 1e-9;
* the policy engine's answers are identical to the exact engine's on the
  whole fleet (same config indices, same objective column bit for bit).

Results land in ``BENCH_fleet.json`` at the repo root.

Set ``BENCH_FLEET_QUICK=1`` (the CI smoke mode) for fewer rounds and a
smaller naive sample.

Timing discipline: every fleet size gets its own untimed warmup step
(page-faults and numpy first-touch costs land there, not in the numbers)
and is then timed over ``ROUNDS`` rounds; the reported figure is the
median, and the JSON records per-size min/max so dispersion is visible
when a run was noisy.
"""

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.optimization import (
    ModelEvaluator,
    TuningGrid,
    evaluate_grid_columns,
    snr_map_from_reference,
    solve_epsilon_constraint,
)
from repro.fleet import FleetEngine, FleetState
from repro.sim.rng import RngStreams

GRID = TuningGrid()
SNR_RANGE_DB = (0.0, 25.0)
SNR_QUANTUM_DB = 0.25
SPEEDUP_FLOOR = 20.0
EQUIVALENCE_ATOL = 1e-9
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

_QUICK = bool(os.environ.get("BENCH_FLEET_QUICK"))
#: The 10,000-link step stays in quick mode: the speedup floor is asserted
#: at the largest size, where the per-bin solve cost actually amortizes.
FLEET_SIZES = (100, 1000, 10_000)
NAIVE_SAMPLE = 20 if _QUICK else 100
ROUNDS = 3 if _QUICK else 5

#: Cross-test scratch shared between the naive and batched benches.
_RESULTS = {}


def fleet_state(n_links: int, seed: int = 0) -> FleetState:
    """A synthetic fleet: seeded uniform SNRs across the paper's range."""
    rng = RngStreams(seed).stream("bench-fleet")
    snr_db = rng.uniform(*SNR_RANGE_DB, size=n_links)
    return FleetState(
        base_snr_db=snr_db.copy(),
        snr_db=snr_db.copy(),
        noise_dbm=np.full(n_links, -90.0),
        config_index=np.full(n_links, -1, dtype=np.int64),
        objective_value=np.full(n_links, np.nan),
    )


def make_engine(use_policy: bool = False) -> FleetEngine:
    return FleetEngine(
        grid=GRID, snr_quantum_db=SNR_QUANTUM_DB, use_policy=use_policy
    )


def _time_steps(engine: FleetEngine):
    """(median, (min, max)) step seconds per fleet size, after warmup."""
    per_size = {}
    per_size_spread = {}
    for n_links in FLEET_SIZES:
        state = fleet_state(n_links, seed=0)
        # Per-size warmup: the first step at a new size pays numpy
        # allocation and cache-population costs that are not the solve
        # (and, for the policy engine, the one-off table compile).
        engine.step(state.copy())
        timings = []
        for _ in range(ROUNDS):
            fresh = state.copy()
            started = time.perf_counter()
            engine.step(fresh)
            timings.append(time.perf_counter() - started)
        per_size[n_links] = statistics.median(timings)
        per_size_spread[n_links] = (min(timings), max(timings))
    return per_size, per_size_spread


def naive_solve(snr_db: float):
    """The single-link oracle: full grid evaluation + scalar solve."""
    evaluator = ModelEvaluator(snr_by_level=snr_map_from_reference(snr_db))
    grid_eval = evaluate_grid_columns(evaluator, GRID, 10.0)
    return grid_eval, solve_epsilon_constraint(grid_eval, "energy", ())


def test_naive_per_link_baseline(benchmark, report):
    """Time the per-link loop on a sample; extrapolate to fleet scale."""
    engine = make_engine()
    state = fleet_state(max(FLEET_SIZES), seed=0)
    quantized = engine.quantize_snr_db(state.snr_db)
    sample = quantized[:NAIVE_SAMPLE].tolist()

    def run_sample():
        for snr_db in sample:
            naive_solve(snr_db)

    benchmark.pedantic(run_sample, rounds=ROUNDS, iterations=1)
    per_link_s = benchmark.stats.stats.mean / len(sample)
    _RESULTS["naive_per_link_s"] = per_link_s
    report.header("Fleet recommendation: naive per-link oracle loop")
    report.emit(
        f"grid         : {len(GRID)} configurations",
        f"sample       : {len(sample)} links (distinct grid evaluations)",
        f"per link     : {per_link_s * 1e3:8.2f} ms",
        f"links/sec    : {1.0 / per_link_s:8.0f}",
        f"extrapolated : {max(FLEET_SIZES) * per_link_s:8.1f} s "
        f"for {max(FLEET_SIZES)} links",
    )


def test_batched_engine_speedup(benchmark, report):
    engine = make_engine(use_policy=False)
    policy_engine = make_engine(use_policy=True)
    per_size, per_size_spread = _time_steps(engine)
    policy_per_size, policy_spread = _time_steps(policy_engine)

    largest = max(FLEET_SIZES)
    state = fleet_state(largest, seed=0)
    benchmark.pedantic(
        lambda: engine.step(state.copy()), rounds=ROUNDS, iterations=1
    )

    naive_per_link_s = _RESULTS.get("naive_per_link_s")
    batched_per_link_s = per_size[largest] / largest
    speedup = (
        naive_per_link_s / batched_per_link_s
        if naive_per_link_s
        else float("nan")
    )
    policy_speedup = (
        naive_per_link_s / (policy_per_size[largest] / largest)
        if naive_per_link_s
        else float("nan")
    )
    report.header("Fleet recommendation: batched engine (one pass, all links)")
    report.emit(f"grid         : {len(GRID)} configurations, "
                f"SNR quantum {SNR_QUANTUM_DB:g} dB")
    for n_links in FLEET_SIZES:
        elapsed = per_size[n_links]
        low, high = per_size_spread[n_links]
        report.emit(
            f"{n_links:>6} links : {elapsed * 1e3:9.1f} ms/step  "
            f"({n_links / elapsed:12,.0f} links/sec)  "
            f"[min {low * 1e3:.1f} / max {high * 1e3:.1f} ms "
            f"over {ROUNDS} rounds]"
        )
    report.emit(
        f"speedup      : {speedup:8.1f}x over the naive loop at "
        f"{largest} links"
    )
    report.header("Fleet recommendation: policy-table engine (np.take gather)")
    for n_links in FLEET_SIZES:
        elapsed = policy_per_size[n_links]
        low, high = policy_spread[n_links]
        report.emit(
            f"{n_links:>6} links : {elapsed * 1e3:9.2f} ms/step  "
            f"({n_links / elapsed:12,.0f} links/sec)  "
            f"[min {low * 1e3:.2f} / max {high * 1e3:.2f} ms "
            f"over {ROUNDS} rounds]"
        )
    report.emit(
        f"speedup      : {policy_speedup:8.1f}x over the naive loop, "
        f"{per_size[largest] / policy_per_size[largest]:.1f}x over the "
        f"exact engine at {largest} links"
    )

    max_error = _sampled_equivalence_error(engine, largest)
    policy_max_error = _sampled_equivalence_error(policy_engine, largest)
    exact_state = fleet_state(largest, seed=0)
    policy_state = exact_state.copy()
    engine.step(exact_state)
    policy_engine.step(policy_state)
    engines_identical = bool(
        np.array_equal(exact_state.config_index, policy_state.config_index)
        and np.array_equal(
            exact_state.objective_value,
            policy_state.objective_value,
            equal_nan=True,
        )
    )
    report.emit(
        f"equivalence  : max objective error {max_error:.2e} on sampled "
        f"links (tolerance {EQUIVALENCE_ATOL:g}); policy engine "
        f"{policy_max_error:.2e}, fleet-wide identical: {engines_identical}"
    )
    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "fleet",
                "grid_configurations": len(GRID),
                "snr_quantum_db": SNR_QUANTUM_DB,
                "rounds": ROUNDS,
                "naive_ms_per_link": (
                    naive_per_link_s * 1e3 if naive_per_link_s else None
                ),
                "links_per_second": {
                    str(n): n / per_size[n] for n in FLEET_SIZES
                },
                "step_ms": {
                    str(n): per_size[n] * 1e3 for n in FLEET_SIZES
                },
                "step_ms_min": {
                    str(n): per_size_spread[n][0] * 1e3
                    for n in FLEET_SIZES
                },
                "step_ms_max": {
                    str(n): per_size_spread[n][1] * 1e3
                    for n in FLEET_SIZES
                },
                "speedup_x": speedup,
                "speedup_floor_x": SPEEDUP_FLOOR,
                "max_objective_error": max_error,
                "equivalence_atol": EQUIVALENCE_ATOL,
                "policy_links_per_second": {
                    str(n): n / policy_per_size[n] for n in FLEET_SIZES
                },
                "policy_step_ms": {
                    str(n): policy_per_size[n] * 1e3 for n in FLEET_SIZES
                },
                "policy_step_ms_min": {
                    str(n): policy_spread[n][0] * 1e3 for n in FLEET_SIZES
                },
                "policy_step_ms_max": {
                    str(n): policy_spread[n][1] * 1e3 for n in FLEET_SIZES
                },
                "policy_speedup_x": policy_speedup,
                "policy_vs_exact_x": (
                    per_size[largest] / policy_per_size[largest]
                ),
                "policy_max_objective_error": policy_max_error,
                "policy_identical_to_exact": engines_identical,
            },
            indent=2,
        )
        + "\n"
    )
    report.emit(f"recorded     : {RESULT_PATH.name}")
    report.shape_check(
        f"batched fleet solve >= {SPEEDUP_FLOOR:.0f}x faster than the "
        f"naive per-link loop ({speedup:,.1f}x measured)",
        bool(naive_per_link_s) and speedup >= SPEEDUP_FLOOR,
    )
    assert max_error <= EQUIVALENCE_ATOL
    assert policy_max_error <= EQUIVALENCE_ATOL
    assert engines_identical, "policy engine diverged from the exact engine"
    assert naive_per_link_s is not None, "naive baseline must run first"
    assert speedup >= SPEEDUP_FLOOR


def _sampled_equivalence_error(engine: FleetEngine, n_links: int) -> float:
    """Worst batched-vs-naive objective disagreement on sampled links."""
    state = fleet_state(n_links, seed=0)
    engine.step(state)
    quantized = engine.quantize_snr_db(state.base_snr_db)
    sample_indices = np.linspace(
        0, n_links - 1, NAIVE_SAMPLE, dtype=np.int64
    )
    worst = 0.0
    for link in sample_indices.tolist():
        _, expected = naive_solve(float(quantized[link]))
        chosen = engine.config_at(int(state.config_index[link]))
        if (
            chosen.ptx_level != expected.config.ptx_level
            or chosen.payload_bytes != expected.config.payload_bytes
            or chosen.n_max_tries != expected.config.n_max_tries
        ):
            return float("inf")
        worst = max(
            worst,
            abs(
                float(state.objective_value[link])
                - expected.objective("energy")
            ),
        )
    return worst
