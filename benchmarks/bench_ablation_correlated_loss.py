"""Ablation — the independence assumption behind Eq. 8 (PLR = PER^N).

The paper models radio loss as independent attempt failures. Real fading is
bursty: a retransmission often fires into the same fade that killed the
first attempt. This ablation sweeps the fraction of SNR-jitter variance
shared across a packet's tries and shows how correlation breaks the PER^N
law — quantifying when the paper's Eq. 8 is safe to use.
"""

import numpy as np
import pytest

from repro.sim.fastlink import FastLink

CORRELATIONS = (0.0, 0.5, 0.9, 1.0)
SNR_DB = 18.0
N_TRIES = 3


@pytest.fixture(scope="module")
def results():
    out = {}
    for rho in CORRELATIONS:
        link = FastLink(seed=30, snr_jitter_db=6.0, try_correlation=rho)
        result = link.run(
            mean_snr_db=SNR_DB, payload_bytes=110,
            n_packets=30000, n_max_tries=N_TRIES,
        )
        out[rho] = (result.per, result.plr_radio)
    return out


def test_ablation_correlated_loss(benchmark, report, results):
    def excess_ratios():
        return {
            rho: plr / max(per**N_TRIES, 1e-12)
            for rho, (per, plr) in results.items()
        }

    ratios = benchmark(excess_ratios)

    report.header("Ablation: Eq. 8 independence vs bursty (correlated) fading")
    report.emit(
        f"{'try corr.':>9}  {'PER':>7}  {'PLR measured':>12}  "
        f"{'PER^N (Eq. 8)':>13}  {'ratio':>7}"
    )
    for rho in CORRELATIONS:
        per, plr = results[rho]
        report.emit(
            f"{rho:>9.1f}  {per:>7.3f}  {plr:>12.4f}  {per**N_TRIES:>13.4f}  "
            f"{ratios[rho]:>7.2f}"
        )
    report.emit(
        "",
        "independent tries reproduce Eq. 8; fully-correlated fading makes "
        "real loss several times the PER^N prediction — retransmissions "
        "repeat into the fade. The paper's D_retry knob exists precisely to "
        "decorrelate tries.",
    )
    held = (
        0.8 < ratios[0.0] < 1.3
        and ratios[1.0] > 2.0
        and ratios[0.5] < ratios[1.0]
    )
    report.shape_check(
        "Eq. 8 exact under independence, increasingly optimistic with "
        "burstiness",
        held,
    )
    assert held
