"""Fig. 17 — queueing loss vs radio loss trade-off of retransmissions.

The paper's setting: l_D = 110 B, T_pkt = 30 ms on a grey-zone link. Raising
N_maxTries cuts PLR_radio but drives ρ past 1, converting the saving into
queue drops; only a large queue (Fig. 17d) absorbs them.
"""

import pytest
from conftest import FIGURE_ENV

from repro.analysis import compute_metrics
from repro.config import StackConfig
from repro.sim import SimulationOptions, simulate_link

TRIES = (1, 2, 3, 5)
QUEUES = (1, 30)
LEVEL = 7  # grey zone at 35 m


@pytest.fixture(scope="module")
def loss_surface():
    surface = {}
    for q in QUEUES:
        for n in TRIES:
            config = StackConfig(
                distance_m=35.0, ptx_level=LEVEL, payload_bytes=110,
                t_pkt_ms=30.0, q_max=q, n_max_tries=n,
            )
            metrics = compute_metrics(
                simulate_link(
                    config,
                    options=SimulationOptions(
                        n_packets=600, seed=17, environment=FIGURE_ENV
                    ),
                )
            )
            surface[(q, n)] = (metrics.plr_queue, metrics.plr_radio)
    return surface


def test_fig17_queue_vs_radio_loss(benchmark, report, loss_surface):
    def regenerate():
        return {key: value for key, value in loss_surface.items()}

    surface = benchmark(regenerate)

    report.header(
        "Fig. 17: PLR_queue vs PLR_radio (l_D=110 B, T_pkt=30 ms, grey zone)"
    )
    for q in QUEUES:
        report.emit(f"\n  [Q_max = {q}]")
        report.emit(f"  {'N_maxTries':>10}  {'PLR_queue':>10}  {'PLR_radio':>10}")
        for n in TRIES:
            pq, pr = surface[(q, n)]
            report.emit(f"  {n:>10}  {pq:>10.3f}  {pr:>10.3f}")

    radio_falls = surface[(1, TRIES[-1])][1] < surface[(1, 1)][1]
    queue_rises = surface[(1, TRIES[-1])][0] > surface[(1, 1)][0] + 0.05
    big_queue_absorbs = all(
        surface[(30, n)][0] < surface[(1, n)][0] + 1e-9 for n in TRIES[1:]
    )
    report.emit(
        "",
        f"retransmissions cut radio loss      : {radio_falls}",
        f"...but inflate queue loss (Q_max=1) : {queue_rises}",
        f"large queue absorbs the overflow    : {big_queue_absorbs}",
    )
    held = radio_falls and queue_rises and big_queue_absorbs
    report.shape_check(
        "retransmission trades radio loss for queue loss; Q_max=30 absorbs",
        held,
    )
    assert held
