"""Fig. 13 — modelled maxGoodput vs payload, with and without retransmission.

The paper's reading: in the low-loss zone the optimal payload is always the
maximum; in the grey zone it shrinks with SNR and grows with N_maxTries.
"""

import numpy as np

from repro.core import GoodputModel

SNRS = (6.0, 9.0, 12.0, 19.0)
PAYLOAD_GRID = np.arange(5, 115, 1)


def test_fig13_maxgoodput_vs_payload(benchmark, report):
    model = GoodputModel()

    def regenerate():
        out = {}
        for n in (1, 5):
            for snr in SNRS:
                goodput = model.max_goodput_bps(PAYLOAD_GRID, snr, n) / 1e3
                best = int(PAYLOAD_GRID[int(np.argmax(goodput))])
                out[(n, snr)] = (goodput, best)
        return out

    surfaces = benchmark(regenerate)

    report.header("Fig. 13: modelled maxGoodput (kb/s) vs payload")
    for n in (1, 5):
        report.emit(f"\n  [N_maxTries = {n}]")
        report.emit(
            f"  {'l_D':>5}" + "".join(f"  SNR={snr:<4.0f}" for snr in SNRS)
        )
        for payload in (10, 30, 50, 70, 90, 110):
            idx = int(np.where(PAYLOAD_GRID == payload)[0][0])
            cells = "".join(
                f"  {surfaces[(n, snr)][0][idx]:8.2f}" for snr in SNRS
            )
            report.emit(f"  {payload:>5}{cells}")
        report.emit(
            "  optimal l_D : "
            + ", ".join(
                f"{snr:.0f} dB -> {surfaces[(n, snr)][1]} B" for snr in SNRS
            )
        )

    # Shapes: low-loss zone wants max payload; grey-zone optimum shrinks with
    # SNR; retransmissions raise the grey-zone optimum.
    held = (
        surfaces[(5, 19.0)][1] == 114
        and surfaces[(5, 9.0)][1] == 114  # the paper's 9 dB threshold
        and surfaces[(1, 6.0)][1] < 114
        and surfaces[(5, 6.0)][1] >= surfaces[(1, 6.0)][1]
    )
    report.shape_check(
        "max l_D optimal >= 9 dB with retries; grey-zone optimum shrinks",
        held,
    )
    assert held
