"""Table I — the stack parameter space of the campaign.

Regenerates the reconstructed Table I grid and checks its bookkeeping
against the paper's stated campaign size: 8,064 settings per distance,
"close to 50 thousand" configurations, "more than 200 million" packets.
"""

from repro.config import PACKETS_PER_CONFIG, TABLE_I_SPACE


def test_table1_parameter_space(benchmark, report):
    def enumerate_space():
        return sum(1 for _ in TABLE_I_SPACE)

    total = benchmark(enumerate_space)

    report.header("Table I: stack parameters and campaign size")
    report.emit(
        f"{'axis':<24}{'values'}",
        f"{'distance (m)':<24}{TABLE_I_SPACE.distances_m}",
        f"{'P_tx (PA_LEVEL)':<24}{TABLE_I_SPACE.ptx_levels}",
        f"{'N_maxTries':<24}{TABLE_I_SPACE.n_max_tries_values}",
        f"{'D_retry (ms)':<24}{TABLE_I_SPACE.d_retry_values_ms}",
        f"{'Q_max':<24}{TABLE_I_SPACE.q_max_values}",
        f"{'T_pkt (ms)':<24}{TABLE_I_SPACE.t_pkt_values_ms}",
        f"{'l_D (bytes)':<24}{TABLE_I_SPACE.payload_values_bytes}",
        "",
        f"settings per distance : {TABLE_I_SPACE.settings_per_distance}"
        f"   (paper: 8064)",
        f"total configurations  : {total}   (paper: 'close to 50 thousand')",
        f"total packets         : {total * PACKETS_PER_CONFIG:,}"
        f"   (paper: 'more than 200 million')",
    )
    report.shape_check(
        "8064 settings/distance, ~48k configs, >200M packets",
        TABLE_I_SPACE.settings_per_distance == 8064
        and 45_000 < total < 50_000
        and total * PACKETS_PER_CONFIG > 200_000_000,
    )
    assert total == len(TABLE_I_SPACE)
