"""Sec. VIII-B — the full energy-goodput trade-off curve via epsilon sweep.

The paper points at the epsilon-constraint method for its MOP formulation;
this bench traces the whole Pareto front of the case-study link — the curve
Fig. 1's single points sit on — and verifies its structure: the front is
mutually non-dominated, monotone (paying more energy never loses goodput),
and contains the joint operating point of Table IV.
"""

import pytest

from repro.core.optimization import (
    ModelEvaluator,
    TuningGrid,
    dominates,
    evaluate_grid,
    pareto_front,
    sweep_epsilon,
)
from repro.core.optimization.tradeoff import case_study_snr_map


@pytest.fixture(scope="module")
def evaluations():
    evaluator = ModelEvaluator(snr_by_level=case_study_snr_map())
    grid = TuningGrid(
        payload_values_bytes=tuple(range(4, 115, 2)),
        n_max_tries_values=(1, 2, 3, 5, 8),
        q_max_values=(30,),
    )
    return evaluate_grid(evaluator, grid, distance_m=40.0)


def test_pareto_tradeoff_curve(benchmark, report, evaluations):
    objectives = lambda e: (e.objective("goodput"), e.objective("energy"))
    # The interesting budgets span the non-dominated set's energy range; a
    # sweep over the full (dominated) range would collapse to one point.
    exact_for_bounds = pareto_front(evaluations, objectives)
    lo = min(e.u_eng_uj_per_bit for e in exact_for_bounds)
    hi = max(e.u_eng_uj_per_bit for e in exact_for_bounds)

    def trace_front():
        import numpy as np

        bounds = np.linspace(lo, hi, 24)
        return sweep_epsilon(evaluations, "goodput", "energy", bounds)

    front = benchmark(trace_front)

    report.header(
        "Sec. VIII-B: energy-goodput Pareto front of the case-study link"
    )
    report.emit(
        f"{'energy budget uJ/bit':>20}  {'goodput kb/s':>12}  "
        f"{'Ptx':>4}  {'l_D':>4}  {'N':>2}"
    )
    for point in front:
        report.emit(
            f"{point.u_eng_uj_per_bit:>20.3f}  {point.max_goodput_kbps:>12.2f}  "
            f"{point.config.ptx_level:>4}  {point.config.payload_bytes:>4}  "
            f"{point.config.n_max_tries:>2}"
        )

    goodputs = [p.max_goodput_kbps for p in front]
    energies = [p.u_eng_uj_per_bit for p in front]
    monotone = goodputs == sorted(goodputs) and energies == sorted(energies)
    vectors = [objectives(p) for p in front]
    non_dominated = not any(
        dominates(vectors[j], vectors[i])
        for i in range(len(front))
        for j in range(len(front))
        if i != j
    )
    exact_front = pareto_front(evaluations, objectives)
    exact_best = max(e.max_goodput_kbps for e in exact_front)
    covers_best = abs(goodputs[-1] - exact_best) < 1e-9
    report.emit(
        "",
        f"front points: {len(front)} (exact non-dominated set: "
        f"{len(exact_front)} of {len(evaluations)} configurations)",
        f"monotone trade-off: {monotone}; mutually non-dominated: "
        f"{non_dominated}; reaches the unconstrained goodput optimum: "
        f"{covers_best}",
    )
    held = monotone and non_dominated and covers_best and len(front) >= 4
    report.shape_check(
        "epsilon sweep traces a monotone non-dominated trade-off curve", held
    )
    assert held
