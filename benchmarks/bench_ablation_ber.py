"""Ablation — empirical-exponential vs analytic O-QPSK bit-error ground truth.

The paper observed a *smooth* PER transition where prior studies reported a
sharp cliff. This ablation swaps the channel's BER model and shows why the
default matters: the analytic O-QPSK curve compresses the grey zone into a
couple of dB, which would make the paper's payload-dependent joint effects
(Fig. 6) invisible.
"""

import numpy as np
import pytest

from repro.channel import HALLWAY_2012
from repro.campaign import sweep_snr_payload

SNRS = list(np.arange(3.0, 26.0, 1.0))


def transition_width_db(sweep):
    """SNR span over which PER(110 B) falls from 0.9 to 0.1."""
    series = sorted(
        (p.mean_snr_db, p.per) for p in sweep if p.payload_bytes == 110
    )
    snr_90 = next((s for s, per in series if per < 0.9), series[0][0])
    snr_10 = next((s for s, per in series if per < 0.1), series[-1][0])
    return snr_10 - snr_90


@pytest.fixture(scope="module")
def sweeps():
    empirical = sweep_snr_payload(
        SNRS, [20, 110], n_packets=2500, seed=20, environment=HALLWAY_2012
    )
    analytic_env = HALLWAY_2012.with_analytic_ber(implementation_loss_db=10.0)
    analytic = sweep_snr_payload(
        SNRS, [20, 110], n_packets=2500, seed=20, environment=analytic_env
    )
    return {"empirical": empirical, "analytic": analytic}


def test_ablation_ber_models(benchmark, report, sweeps):
    widths = benchmark(
        lambda: {name: transition_width_db(s) for name, s in sweeps.items()}
    )

    report.header("Ablation: empirical-exponential vs analytic O-QPSK BER")
    report.emit(f"{'SNR':>5}  {'empirical PER(110B)':>20}  {'analytic PER(110B)':>19}")
    emp = {p.mean_snr_db: p.per for p in sweeps["empirical"] if p.payload_bytes == 110}
    ana = {p.mean_snr_db: p.per for p in sweeps["analytic"] if p.payload_bytes == 110}
    for s in SNRS[::3]:
        report.emit(f"{s:>5.0f}  {emp[s]:>20.3f}  {ana[s]:>19.3f}")
    report.emit(
        "",
        f"PER 0.9->0.1 transition width: empirical {widths['empirical']:.0f} dB, "
        f"analytic {widths['analytic']:.0f} dB",
        "(the paper's measured links transition smoothly over >10 dB; the "
        "textbook curve is the 'sharp cliff' of prior studies)",
    )
    held = widths["empirical"] > widths["analytic"] + 3.0
    report.shape_check(
        "empirical ground truth is much smoother than the analytic cliff",
        held,
    )
    assert held
