"""Fig. 15(a–b) — delay vs SNR under two MAC configurations.

The paper: with Q_max = 30 and retransmissions, grey-zone delays are two to
three orders of magnitude above the Q_max = 1 case, because ρ ≥ 1 fills the
queue; outside the grey zone the two configurations nearly coincide.
"""

import pytest
from conftest import FIGURE_ENV

from repro.analysis import compute_metrics
from repro.config import StackConfig
from repro.sim import SimulationOptions, simulate_link

LEVELS = (7, 11, 15, 23, 31)
MACS = {
    "a: Q=1,  N=1": dict(q_max=1, n_max_tries=1),
    "b: Q=30, N=5": dict(q_max=30, n_max_tries=5),
}


@pytest.fixture(scope="module")
def delay_surface():
    surface = {}
    for mac_name, mac in MACS.items():
        for level in LEVELS:
            config = StackConfig(
                distance_m=35.0, ptx_level=level, payload_bytes=110,
                t_pkt_ms=30.0, d_retry_ms=0.0, **mac,
            )
            metrics = compute_metrics(
                simulate_link(
                    config,
                    options=SimulationOptions(
                        n_packets=400, seed=15, environment=FIGURE_ENV
                    ),
                )
            )
            surface[(mac_name, level)] = (
                metrics.mean_snr_db,
                metrics.mean_delay_s * 1e3,
            )
    return surface


def test_fig15_delay_vs_snr(benchmark, report, delay_surface):
    def grey_zone_ratio():
        lows = [
            (delay_surface[("b: Q=30, N=5", lvl)][1]
             / delay_surface[("a: Q=1,  N=1", lvl)][1])
            for lvl in LEVELS
            if delay_surface[("a: Q=1,  N=1", lvl)][0] < 12.0
        ]
        return max(lows) if lows else 0.0

    ratio = benchmark(grey_zone_ratio)

    report.header("Fig. 15: mean delay (ms) vs SNR, two MAC configs")
    report.emit(f"{'SNR (dB)':>8}" + "".join(f"  {name:>14}" for name in MACS))
    for level in LEVELS:
        snr = delay_surface[("a: Q=1,  N=1", level)][0]
        cells = "".join(
            f"  {delay_surface[(name, level)][1]:14.2f}" for name in MACS
        )
        report.emit(f"{snr:>8.1f}{cells}")
    report.emit(
        "",
        f"worst grey-zone delay ratio (Q=30,N=5 over Q=1,N=1): {ratio:.0f}x "
        f"(paper: 2-3 orders of magnitude)",
    )
    # Good-link contrast: the blow-up is concentrated in the grey zone.
    good_a = delay_surface[("a: Q=1,  N=1", 31)][1]
    good_b = delay_surface[("b: Q=30, N=5", 31)][1]
    good_ratio = good_b / good_a
    held = ratio > 30.0 and good_ratio < ratio / 3
    report.shape_check(
        "queueing blows delay up by >=1 order of magnitude only in the grey "
        "zone",
        held,
    )
    assert held
