"""Telemetry pipeline — vectorized batch decode vs per-uplink unpacking.

Not a paper figure: this measures the uplink ingestion tier
(`repro.telemetry`). The batch decoder turns N concatenated binary frames
into struct-of-arrays columns with one ``np.frombuffer`` pass plus one
vectorized cast per field; the naive alternative — ``struct.unpack`` per
frame, exactly what a per-uplink loop over the scalar codec does — is
timed on a sample and compared per-uplink.

Claims enforced every run:

* the batch decoder sustains >= 100,000 uplinks/sec;
* the batch decoder is >= 20x faster per uplink than the scalar
  ``struct.unpack`` loop.

The end-to-end bench runs the whole measured-fleet loop — simulator →
codec → ingest/estimator → fleet engine recommend — and reports the
per-step latency split. Results land in ``BENCH_telemetry.json`` at the
repo root.

Set ``BENCH_TELEMETRY_QUICK=1`` (the CI smoke mode) for fewer rounds and
smaller batches. Timing discipline matches ``bench_fleet``: per-case
untimed warmup, median of ``ROUNDS`` rounds, min/max recorded.
"""

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.optimization import TuningGrid
from repro.fleet import FleetEngine, FleetState
from repro.sim.rng import RngStreams
from repro.telemetry import (
    DeviceFleetSimulator,
    SnrEstimator,
    TelemetryIngestor,
    UPLINK_TEMPLATE_V1,
    UplinkCodec,
)

_QUICK = bool(os.environ.get("BENCH_TELEMETRY_QUICK"))

DECODE_UPLINKS = 50_000 if _QUICK else 400_000
SCALAR_SAMPLE = 5_000 if _QUICK else 20_000
ROUNDS = 3 if _QUICK else 5
E2E_LINKS = 256 if _QUICK else 1024
E2E_TICKS = 5 if _QUICK else 10

THROUGHPUT_FLOOR_PER_S = 100_000.0
SPEEDUP_FLOOR = 20.0
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"

#: Cross-test scratch shared between the decode and end-to-end benches.
_RESULTS = {}


def synthetic_payload(n_uplinks: int, codec: UplinkCodec) -> bytes:
    """N encoded uplinks with seeded, wire-representable measurements."""
    rng = RngStreams(0).stream("bench-telemetry")
    n_links = max(n_uplinks // 16, 1)
    columns = {
        "link_id": np.arange(n_uplinks, dtype=np.int64) % n_links,
        "seq": np.arange(n_uplinks, dtype=np.int64) % (1 << 16),
        "rssi_dbm": np.round(rng.uniform(-95.0, -40.0, n_uplinks), 2),
        "noise_dbm": np.round(rng.uniform(-100.0, -90.0, n_uplinks), 2),
        "plr": np.round(rng.uniform(0.0, 0.5, n_uplinks), 4),
    }
    return codec.encode_batch(columns)


def _median_timed(run, rounds: int):
    """(median_s, min_s, max_s) of ``run()`` over ``rounds`` rounds."""
    timings = []
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings), min(timings), max(timings)


def test_batch_decode_throughput(benchmark, report):
    """Vectorized decode rate, and its speedup over scalar unpacking."""
    codec = UplinkCodec(UPLINK_TEMPLATE_V1)
    payload = synthetic_payload(DECODE_UPLINKS, codec)
    frame_bytes = codec.frame_bytes

    codec.decode_batch(payload)  # warmup: first-touch + cast caches
    batch_s, batch_min_s, batch_max_s = _median_timed(
        lambda: codec.decode_batch(payload), ROUNDS
    )
    benchmark.pedantic(
        lambda: codec.decode_batch(payload), rounds=ROUNDS, iterations=1
    )
    uplinks_per_s = DECODE_UPLINKS / batch_s

    sample = payload[: SCALAR_SAMPLE * frame_bytes]
    frames = [
        sample[offset : offset + frame_bytes]
        for offset in range(0, len(sample), frame_bytes)
    ]

    def scalar_loop():
        for frame in frames:
            codec.decode(frame)

    scalar_loop()  # warmup
    scalar_s, _, _ = _median_timed(scalar_loop, ROUNDS)
    scalar_per_uplink_s = scalar_s / len(frames)
    batch_per_uplink_s = batch_s / DECODE_UPLINKS
    speedup = scalar_per_uplink_s / batch_per_uplink_s

    _RESULTS["decode"] = {
        "n_uplinks": DECODE_UPLINKS,
        "frame_bytes": frame_bytes,
        "batch_ms": batch_s * 1e3,
        "batch_ms_min": batch_min_s * 1e3,
        "batch_ms_max": batch_max_s * 1e3,
        "uplinks_per_second": uplinks_per_s,
        "scalar_sample": len(frames),
        "scalar_uplinks_per_second": 1.0 / scalar_per_uplink_s,
        "speedup_x": speedup,
    }
    report.header("Telemetry decode: one-pass batch vs struct.unpack loop")
    report.emit(
        f"template     : '{codec.template.name}' v{codec.template.version}, "
        f"{frame_bytes} B/frame",
        f"batch        : {DECODE_UPLINKS} uplinks in {batch_s * 1e3:8.2f} ms "
        f"({uplinks_per_s:12,.0f} uplinks/sec) "
        f"[min {batch_min_s * 1e3:.2f} / max {batch_max_s * 1e3:.2f} ms "
        f"over {ROUNDS} rounds]",
        f"scalar       : {len(frames)} uplinks sampled "
        f"({1.0 / scalar_per_uplink_s:12,.0f} uplinks/sec)",
        f"speedup      : {speedup:8.1f}x per uplink",
    )
    report.shape_check(
        f"batch decode >= {THROUGHPUT_FLOOR_PER_S:,.0f} uplinks/sec "
        f"({uplinks_per_s:,.0f} measured)",
        uplinks_per_s >= THROUGHPUT_FLOOR_PER_S,
    )
    report.shape_check(
        f"batch decode >= {SPEEDUP_FLOOR:.0f}x faster than the scalar "
        f"unpack loop ({speedup:,.1f}x measured)",
        speedup >= SPEEDUP_FLOOR,
    )
    assert uplinks_per_s >= THROUGHPUT_FLOOR_PER_S
    assert speedup >= SPEEDUP_FLOOR


def test_ingest_to_recommend_latency(benchmark, report):
    """End-to-end: simulator → codec → ingest → estimator → engine."""
    simulator_state = None  # built per round for identical traffic

    def build():
        rng = RngStreams(0).stream("bench-telemetry-e2e")
        base_snr_db = rng.uniform(0.0, 25.0, size=E2E_LINKS)
        truth = FleetState.from_base_snr(base_snr_db)
        serving = FleetState.from_base_snr(base_snr_db)
        simulator = DeviceFleetSimulator(
            truth, mode="periodic", seed=1, noise_db=0.5
        )
        ingestor = TelemetryIngestor(serving, SnrEstimator(alpha=0.25))
        engine = FleetEngine(grid=TuningGrid(), snr_quantum_db=0.25)
        return simulator, ingestor, engine

    def run_steps():
        simulator, ingestor, engine = build()
        ingest_s = 0.0
        solve_s = 0.0
        for step_index in range(E2E_TICKS):
            payload = simulator.tick()
            started = time.perf_counter()
            ingestor.ingest(payload)
            ingest_s += time.perf_counter() - started
            started = time.perf_counter()
            engine.step(ingestor.state, step_index=step_index)
            solve_s += time.perf_counter() - started
        return ingest_s, solve_s

    run_steps()  # warmup: grid evaluation caches, first-touch costs
    per_round = []
    for _ in range(ROUNDS):
        per_round.append(run_steps())
    ingest_ms = statistics.median(r[0] for r in per_round) / E2E_TICKS * 1e3
    solve_ms = statistics.median(r[1] for r in per_round) / E2E_TICKS * 1e3
    step_ms = ingest_ms + solve_ms
    benchmark.pedantic(run_steps, rounds=1, iterations=1)

    _RESULTS["end_to_end"] = {
        "n_links": E2E_LINKS,
        "n_ticks": E2E_TICKS,
        "ingest_ms_per_step": ingest_ms,
        "solve_ms_per_step": solve_ms,
        "end_to_end_ms_per_step": step_ms,
    }
    report.header("Telemetry end-to-end: uplink batch to fleet recommendation")
    report.emit(
        f"fleet        : {E2E_LINKS} links, {E2E_TICKS} ticks/round, "
        f"{ROUNDS} rounds",
        f"ingest       : {ingest_ms:8.2f} ms/step "
        f"(decode + sequence tracking + estimator)",
        f"solve        : {solve_ms:8.2f} ms/step (batched fleet engine)",
        f"end-to-end   : {step_ms:8.2f} ms from wire batch to fresh "
        f"configurations",
    )
    decode = _RESULTS.get("decode")
    assert decode is not None, "decode bench must run first"
    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "telemetry",
                "quick": _QUICK,
                "rounds": ROUNDS,
                "throughput_floor_uplinks_per_s": THROUGHPUT_FLOOR_PER_S,
                "speedup_floor_x": SPEEDUP_FLOOR,
                "decode": decode,
                "end_to_end": _RESULTS["end_to_end"],
            },
            indent=2,
        )
        + "\n"
    )
    report.emit(f"recorded     : {RESULT_PATH.name}")
    assert decode["uplinks_per_second"] >= THROUGHPUT_FLOOR_PER_S
    assert decode["speedup_x"] >= SPEEDUP_FLOOR
