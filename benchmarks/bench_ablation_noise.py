"""Ablation — sampled noise floor vs the constant −95 dBm assumption.

Fig. 5's methodological point: assuming a constant noise floor distorts the
SNR axis. This ablation quantifies the distortion: with the mixture floor,
per-transmission SNR spreads several dB around the constant-noise value, so
PER measured 'at an SNR' actually averages over a band — one of the reasons
measured PER curves are smoother than per-snapshot models predict.
"""

import numpy as np
import pytest

from repro.channel import HALLWAY_2012, LinkChannel
from repro.channel.noise import CONSTANT_NOISE_DBM


@pytest.fixture(scope="module")
def samples():
    channel = LinkChannel(
        HALLWAY_2012, 20.0, 23, np.random.default_rng(21)
    )
    observed = [channel.sample(0.05 * i) for i in range(8000)]
    real = np.array([s.snr_db for s in observed])
    constant = np.array([s.rssi_dbm - CONSTANT_NOISE_DBM for s in observed])
    return real, constant


def test_ablation_noise_floor(benchmark, report, samples):
    real, constant = samples

    def distortion():
        return {
            "mean_shift_db": float(real.mean() - constant.mean()),
            "extra_spread_db": float(real.std() - constant.std()),
            "p99_gap_db": float(
                np.percentile(real, 99) - np.percentile(constant, 99)
            ),
        }

    stats = benchmark(distortion)

    report.header("Ablation: sampled noise floor vs constant -95 dBm")
    report.emit(
        f"real SNR     : mean {real.mean():6.2f} dB, std {real.std():5.2f} dB",
        f"constant SNR : mean {constant.mean():6.2f} dB, "
        f"std {constant.std():5.2f} dB",
        f"mean shift   : {stats['mean_shift_db']:+.2f} dB",
        f"extra spread : {stats['extra_spread_db']:+.2f} dB",
        f"99th-pct gap : {stats['p99_gap_db']:+.2f} dB",
    )
    held = stats["extra_spread_db"] > 0.5 and abs(stats["mean_shift_db"]) < 1.0
    report.shape_check(
        "constant-noise SNR misses several dB of true per-packet spread",
        held,
    )
    assert held
