"""Fig. 5 — distribution of real SNR vs constant-noise (−95 dBm) SNR.

The paper's point: the noise floor fluctuates (average −95 dBm with an
interference tail), so SNR computed against a constant floor understates the
true SNR spread. We regenerate both distributions for one link.
"""

import numpy as np
import pytest

from repro.analysis.channel_stats import snr_distributions
from repro.channel import HALLWAY_2012


@pytest.fixture(scope="module")
def dists():
    return snr_distributions(
        HALLWAY_2012, distance_m=20.0, ptx_level=23, n_samples=20000, seed=5
    )


def test_fig05_snr_distributions(benchmark, report, dists):
    def summarize():
        return {
            "real_mean": dists.real_mean,
            "real_std": dists.real_std,
            "const_mean": dists.constant_mean,
            "const_std": dists.constant_std,
        }

    stats = benchmark(summarize)

    report.header("Fig. 5: real-noise vs constant-noise SNR distribution")
    report.emit(
        f"noise floor mean (sampled)     : "
        f"{HALLWAY_2012.noise.mean_dbm:.1f} dBm (paper: -95 dBm)",
        f"real SNR      : mean {stats['real_mean']:6.2f} dB, "
        f"std {stats['real_std']:5.2f} dB",
        f"constant SNR  : mean {stats['const_mean']:6.2f} dB, "
        f"std {stats['const_std']:5.2f} dB",
    )
    centers, density = dists.histogram("real", bin_width_db=2.0)
    bars = "".join(
        "#" if d > 0.02 else ("+" if d > 0.005 else ".") for d in density
    )
    report.emit(f"real SNR histogram ({centers[0]:.0f}..{centers[-1]:.0f} dB): {bars}")

    held = (
        stats["real_std"] > stats["const_std"]
        and abs(HALLWAY_2012.noise.mean_dbm - (-95.0)) < 0.5
        and abs(stats["real_mean"] - stats["const_mean"]) < 1.5
    )
    report.shape_check(
        "noise averages -95 dBm; real SNR wider than constant-noise SNR", held
    )
    assert held
