"""Benchmark: reprolint wall time, serial vs ``--jobs N`` process pool.

The lint gate runs on every CI push, so its latency is part of the
development loop the same way the kernels' latency is part of the serve
loop. This bench times a full lint of ``src/repro`` (all tiers, RPR0xx
through RPR3xx) twice — serial, and fanned out over a process pool with
the shared :class:`ProjectIndex` built once in the parent — asserts the
two runs return *identical* findings, and records both wall times (plus
the host's CPU count, without which the ratio is meaningless: on a
single-core CI runner the pool is pure overhead by construction) to
``BENCH_lint.json``.

Env knobs: ``BENCH_LINT_QUICK=1`` lints only ``src/repro/lintkit`` for a
fast smoke; ``BENCH_LINT_JOBS`` overrides the worker count.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.lintkit import Linter

__all__ = [
    "test_lint_serial_vs_parallel",
]

QUICK = os.environ.get("BENCH_LINT_QUICK") == "1"
REPO_ROOT = Path(__file__).resolve().parents[1]
LINT_TARGET = (
    REPO_ROOT / "src" / "repro" / "lintkit"
    if QUICK
    else REPO_ROOT / "src" / "repro"
)
JOBS = int(os.environ.get("BENCH_LINT_JOBS", "0")) or min(
    4, os.cpu_count() or 1
)
RESULT_PATH = REPO_ROOT / "BENCH_lint.json"
ROUNDS = 1 if QUICK else 2


def _time_lint(jobs: int):
    best = float("inf")
    findings = None
    for _ in range(ROUNDS):
        linter = Linter()
        started = time.perf_counter()
        findings = linter.lint_paths([LINT_TARGET], jobs=jobs)
        best = min(best, time.perf_counter() - started)
    return best, findings


def test_lint_serial_vs_parallel(benchmark, report):
    """Serial and pooled lint agree finding-for-finding; record both times."""
    serial_s, serial_findings = _time_lint(jobs=1)
    parallel_jobs = max(JOBS, 2)  # always exercise the pool machinery
    parallel_s, parallel_findings = _time_lint(jobs=parallel_jobs)

    # The pool must be a pure execution strategy: same findings, same order.
    assert parallel_findings == serial_findings

    benchmark.pedantic(
        lambda: Linter().lint_paths([LINT_TARGET], jobs=1),
        rounds=1,
        iterations=1,
    )

    cpu_count = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("nan")
    result = {
        "target": str(LINT_TARGET.relative_to(REPO_ROOT)),
        "quick": QUICK,
        "cpu_count": cpu_count,
        "findings": len(serial_findings),
        "serial_s": serial_s,
        "parallel_jobs": parallel_jobs,
        "parallel_s": parallel_s,
        "speedup": speedup,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    report.header("reprolint wall time: serial vs process pool")
    report.emit(
        f"target       : {result['target']}",
        f"cpu count    : {cpu_count}",
        f"findings     : {len(serial_findings)}",
        f"serial       : {serial_s * 1e3:8.0f} ms",
        f"--jobs {parallel_jobs}     : {parallel_s * 1e3:8.0f} ms",
        f"speedup      : {speedup:8.2f}x",
        f"results      : {RESULT_PATH.name}",
    )
    report.shape_check(
        "pooled lint reproduces the serial findings exactly",
        parallel_findings == serial_findings,
    )
    if cpu_count == 1:
        report.emit(
            "note: single-CPU host — the pool cannot beat serial here; "
            "wall times recorded for trend tracking only"
        )
    else:
        # With real cores available the pool must at least not be a
        # regression beyond pool-management noise.
        assert parallel_s < serial_s * 1.5


if __name__ == "__main__":
    pytest.main(
        [__file__, "--benchmark-only", "-q"]
    )
