"""Table II — system utilization from the service-time model.

The paper's exact numeric anchor: T_pkt = 30 ms, l_D = 110 B, N_maxTries = 3
at SNR {10, 20, 30} dB gives T_service {37.08, 21.39, 18.52} ms and ρ
{1.236, 0.713, 0.617} (with the 30 ms retry delay the rows imply).
"""

from repro.core import ServiceTimeModel
from repro.core.constants import TABLE_II_D_RETRY_MS, TABLE_II_ROWS


def test_table2_system_utilization(benchmark, report):
    model = ServiceTimeModel()

    def regenerate():
        rows = []
        for (t_pkt, snr, payload, tries), _ in TABLE_II_ROWS:
            service_s = model.paper_service_time_s(
                payload, snr, TABLE_II_D_RETRY_MS
            )
            rows.append((snr, service_s * 1e3, service_s / (t_pkt / 1e3)))
        return rows

    rows = benchmark(regenerate)

    report.header("Table II: system utilization via Eqs. 5-7")
    report.emit(
        f"{'SNR (dB)':>8}  {'T_service model':>15}  {'T_service paper':>15}  "
        f"{'rho model':>10}  {'rho paper':>10}"
    )
    errors = []
    for (snr, service_ms, rho), ((_, _, _, _), (paper_ms, paper_rho)) in zip(
        rows, TABLE_II_ROWS
    ):
        report.emit(
            f"{snr:>8.0f}  {service_ms:>15.2f}  {paper_ms:>15.2f}  "
            f"{rho:>10.3f}  {paper_rho:>10.3f}"
        )
        errors.append(abs(service_ms - paper_ms) / paper_ms)

    report.emit("", f"max relative error vs published rows: {max(errors):.1%}")
    crossing = rows[0][2] > 1.0 and rows[1][2] < 1.0
    report.shape_check(
        "rows within 6%; rho crosses 1 between SNR 20 and SNR 10",
        max(errors) < 0.06 and crossing,
    )
    assert max(errors) < 0.06
    assert crossing
