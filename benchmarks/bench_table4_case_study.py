"""Table IV — single-parameter vs multi-layer parameter adjustment.

Prints the published rows, the empirical-model reproduction, and an
event-simulator re-measurement side by side, then checks the paper's
conclusions: joint tuning achieves the highest goodput AND the lowest
energy, and each model row lands near its published counterpart.
"""

import pytest

from repro.analysis.stats import relative_error
from repro.core.optimization import (
    joint_wins,
    paper_table_iv_points,
    run_case_study_models,
    run_case_study_simulation,
)


@pytest.fixture(scope="module")
def all_points():
    model = run_case_study_models()
    simulated = run_case_study_simulation(model, n_packets=800, seed=7)
    return {"paper": paper_table_iv_points(), "model": model, "sim": simulated}


def test_table4_case_study(benchmark, report, all_points):
    def check_dominance():
        return joint_wins(all_points["model"]), joint_wins(all_points["sim"])

    model_wins, sim_wins = benchmark(check_dominance)

    report.header("Table IV: single-parameter vs multi-layer adjustment")
    for source in ("paper", "model", "sim"):
        report.emit(f"\n  [{source}]")
        report.emit(
            f"  {'strategy':<34}{'Ptx':>4}{'l_D':>5}{'N':>3}"
            f"{'goodput kb/s':>13}{'U_eng uJ/bit':>14}"
        )
        for p in all_points[source]:
            report.emit(
                f"  {p.strategy:<34}{p.config.ptx_level:>4}"
                f"{p.config.payload_bytes:>5}{p.config.n_max_tries:>3}"
                f"{p.goodput_kbps:>13.2f}{p.u_eng_uj_per_bit:>14.3f}"
            )

    paper_by_name = {p.strategy: p for p in all_points["paper"]}
    model_by_name = {p.strategy: p for p in all_points["model"]}
    energy_errors = {
        name: relative_error(
            model_by_name[name].u_eng_uj_per_bit,
            paper_by_name[name].u_eng_uj_per_bit,
        )
        for name in paper_by_name
        if name in model_by_name
    }
    report.emit("", "energy error vs published rows:")
    for name, err in energy_errors.items():
        report.emit(f"  {name:<34}{err:>8.1%}")
    report.emit(
        f"\njoint dominates all baselines: models={model_wins}, "
        f"simulator={sim_wins}",
    )
    held = model_wins and sim_wins and max(energy_errors.values()) < 0.30
    report.shape_check(
        "joint wins on both axes in models AND simulation; energies within "
        "30% of Table IV",
        held,
    )
    assert held
