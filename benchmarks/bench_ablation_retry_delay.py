"""Ablation — what the D_retry knob is actually for.

The paper sweeps D_retry (0/30/60 ms) as one of its seven parameters, but on
a memoryless channel a retry delay only adds latency. This ablation runs the
same configuration over (a) the default channel and (b) a Gilbert-Elliott
bursty channel whose fades last ~60 ms, showing that spacing retransmissions
rides fades out: D_retry buys an order of magnitude of radio loss at the
cost of delay — the loss/delay trade-off that justifies the knob's presence
in Table I.
"""

import numpy as np
import pytest
from conftest import FIGURE_ENV

from repro.analysis import compute_metrics
from repro.config import StackConfig
from repro.extensions import GilbertElliottChannel, GilbertElliottConfig
from repro.sim import LinkSimulator, SimulationOptions

RETRY_DELAYS_MS = (0.0, 30.0, 60.0, 120.0)
BURST = GilbertElliottConfig(
    good_mean_s=0.3, bad_mean_s=0.06, bad_extra_loss_db=40.0
)


def run(d_retry_ms, bursty):
    config = StackConfig(
        distance_m=20.0, ptx_level=31, n_max_tries=3, d_retry_ms=d_retry_ms,
        q_max=30, t_pkt_ms=200.0, payload_bytes=110,
    )
    options = SimulationOptions(n_packets=2000, seed=41, environment=FIGURE_ENV)
    channel = (
        GilbertElliottChannel(
            FIGURE_ENV, 20.0, 31, np.random.default_rng(40), BURST
        )
        if bursty
        else None
    )
    sim = LinkSimulator(config, options, channel=channel)
    return compute_metrics(sim.run())


@pytest.fixture(scope="module")
def results():
    return {
        (d, bursty): run(d, bursty)
        for d in RETRY_DELAYS_MS
        for bursty in (False, True)
    }


def test_ablation_retry_delay(benchmark, report, results):
    def loss_improvement():
        bursty_loss = {
            d: results[(d, True)].plr_radio for d in RETRY_DELAYS_MS
        }
        return bursty_loss[0.0] / max(bursty_loss[120.0], 1e-6)

    improvement = benchmark(loss_improvement)

    report.header("Ablation: D_retry on memoryless vs bursty channels")
    report.emit(
        f"{'D_retry':>8}  {'memoryless PLR':>14}  {'bursty PLR':>10}  "
        f"{'bursty delay ms':>15}"
    )
    for d in RETRY_DELAYS_MS:
        plain = results[(d, False)]
        bursty = results[(d, True)]
        report.emit(
            f"{d:>8.0f}  {plain.plr_radio:>14.4f}  {bursty.plr_radio:>10.4f}  "
            f"{bursty.mean_delay_s * 1e3:>15.1f}"
        )
    report.emit(
        "",
        f"on the bursty channel, D_retry 0 -> 120 ms cuts radio loss "
        f"{improvement:.0f}x (at a delay cost);",
        "on the memoryless channel it only adds delay — which is why the "
        "paper's guidelines mention D_retry solely through the service-time "
        "model.",
    )
    bursty_losses = [results[(d, True)].plr_radio for d in RETRY_DELAYS_MS]
    bursty_delays = [
        results[(d, True)].mean_delay_s for d in RETRY_DELAYS_MS
    ]
    plain_losses = [results[(d, False)].plr_radio for d in RETRY_DELAYS_MS]
    held = (
        improvement > 4.0
        and bursty_losses == sorted(bursty_losses, reverse=True)
        and bursty_delays == sorted(bursty_delays)
        and max(plain_losses) - min(plain_losses) < 0.02
    )
    report.shape_check(
        "retry delay trades delay for loss only when fades are bursty", held
    )
    assert held
