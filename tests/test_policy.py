"""Policy-table tests: solver equivalence, serve tiering, fleet gather.

The pinned invariant is exact equivalence: a :class:`PolicyTable` bin
must reproduce :func:`solve_epsilon_constraint` at that bin's center —
the same winning configuration (same first-index tie-break), the same
objective value bit for bit, and the same :class:`InfeasibleError`
message when nothing is feasible. The sweeps below check *every* bin of
the compiled axis, not a sample.
"""

import numpy as np
import pytest

from repro.core.optimization import (
    Constraint,
    ModelEvaluator,
    PolicyTable,
    TuningGrid,
    evaluate_grid_columns,
    masked_argmin_rows,
    snr_map_from_reference,
    solve_epsilon_constraint,
)
from repro.errors import FleetError, InfeasibleError, OptimizationError
from repro.fleet import FleetEngine, FleetState
from repro.serve import (
    FleetRecommendRequest,
    LinkSpec,
    Oracle,
    RecommendRequest,
    TIER_LRU,
    TIER_MISS,
    TIER_POLICY,
)

SMALL_GRID = TuningGrid(
    ptx_levels=(3, 15, 31),
    payload_values_bytes=(20, 65, 110),
    n_max_tries_values=(1, 3),
    q_max_values=(1, 30),
)
AXIS_DB = (0.0, 20.0)
QUANTUM_DB = 0.5


def exact_solve(grid, snr_db, objective="energy", constraints=()):
    """The reference answer: a fresh per-link grid evaluation + solve."""
    evaluator = ModelEvaluator(snr_by_level=snr_map_from_reference(snr_db))
    grid_eval = evaluate_grid_columns(evaluator, grid, 10.0)
    return solve_epsilon_constraint(grid_eval, objective, constraints)


def compile_table(grid=SMALL_GRID, objective="energy", constraints=()):
    return PolicyTable.compile(
        grid=grid,
        objective=objective,
        constraints=constraints,
        snr_quantum_db=QUANTUM_DB,
        snr_range_db=AXIS_DB,
    )


class TestPolicyEquivalence:
    @pytest.mark.parametrize("objective", ["energy", "goodput", "delay"])
    def test_every_bin_matches_the_solver(self, objective):
        table = compile_table(objective=objective)
        assert len(table) == 41
        for index in range(len(table)):
            center = table.bin_center_db(index)
            expected = exact_solve(SMALL_GRID, center, objective)
            assert table.lookup(center) == expected

    def test_constrained_bins_match_including_infeasible_messages(self):
        # Tight loss + delay bounds: low-SNR bins become infeasible, so
        # both the feasible answers and the error diagnosis are swept.
        constraints = (
            Constraint(objective="loss", upper_bound=0.005),
            Constraint(objective="delay", upper_bound=60.0),
        )
        table = compile_table(constraints=constraints)
        assert table.feasible.any() and not table.feasible.all()
        for index in range(len(table)):
            center = table.bin_center_db(index)
            try:
                expected = exact_solve(
                    SMALL_GRID, center, "energy", constraints
                )
            except InfeasibleError as exc:
                assert not table.feasible[index]
                with pytest.raises(InfeasibleError) as exc_info:
                    table.lookup(center)
                assert str(exc_info.value) == str(exc)
            else:
                assert table.feasible[index]
                assert table.lookup(center) == expected

    def test_all_infeasible_grid(self):
        constraints = (Constraint(objective="loss", upper_bound=-1.0),)
        table = compile_table(constraints=constraints)
        assert not table.feasible.any()
        for index in (0, len(table) // 2, len(table) - 1):
            center = table.bin_center_db(index)
            with pytest.raises(InfeasibleError) as exc_info:
                table.lookup(center)
            with pytest.raises(InfeasibleError) as expected_info:
                exact_solve(SMALL_GRID, center, "energy", constraints)
            assert str(exc_info.value) == str(expected_info.value)

    def test_single_config_grid(self):
        grid = TuningGrid(
            ptx_levels=(31,),
            payload_values_bytes=(65,),
            n_max_tries_values=(3,),
            q_max_values=(30,),
        )
        table = compile_table(grid=grid)
        assert table.n_configs == 1
        for index in range(len(table)):
            center = table.bin_center_db(index)
            assert table.lookup(center) == exact_solve(grid, center)

    def test_half_bin_edges_quantize_like_np_round(self):
        # Half-edges sit exactly between bins; the policy resolves them
        # the way every quantizer in the repo does — np.round (ties to
        # even) — and answers with that bin's center answer.
        table = compile_table()
        for index in range(len(table) - 1):
            edge = table.bin_center_db(index) + QUANTUM_DB / 2
            expected_bin = int(np.round(edge / QUANTUM_DB)) - table.bin_origin
            assert table.bin_index(edge) == expected_bin
            assert table.lookup(edge) == table.lookup(
                table.bin_center_db(expected_bin)
            )

    def test_off_axis_lookup_raises(self):
        table = compile_table()
        assert not table.covers(AXIS_DB[1] + 5.0)
        assert not table.covers(AXIS_DB[0] - 5.0)
        with pytest.raises(OptimizationError):
            table.lookup(AXIS_DB[1] + 5.0)

    def test_stats_shape(self):
        table = compile_table()
        stats = table.stats()
        assert stats["n_bins"] == len(table)
        assert stats["n_configs"] == len(SMALL_GRID)
        assert stats["table_bytes"] == table.nbytes
        assert stats["compile_ms"] >= 0.0


class TestMaskedArgminRows:
    def test_ties_break_to_first_index(self):
        objective = np.array([[2.0, 1.0, 1.0, 3.0]])
        feasible = np.ones_like(objective, dtype=bool)
        chosen, row_feasible = masked_argmin_rows(objective, feasible)
        assert chosen[0] == 1 and row_feasible[0]

    def test_degenerate_all_inf_feasible_picks_first_feasible(self):
        # Every feasible value +inf: a full-row argmin would land on the
        # (finite) infeasible element; the solver's compacted argmin
        # picks the first feasible index instead.
        objective = np.array([[0.0, np.inf, np.inf]])
        feasible = np.array([[False, True, True]])
        chosen, row_feasible = masked_argmin_rows(objective, feasible)
        assert chosen[0] == 1 and row_feasible[0]

    def test_infeasible_row_is_flagged(self):
        objective = np.array([[1.0, 2.0], [3.0, 4.0]])
        feasible = np.array([[False, False], [True, False]])
        chosen, row_feasible = masked_argmin_rows(objective, feasible)
        assert not row_feasible[0] and row_feasible[1]
        assert chosen[1] == 0


@pytest.fixture
def policy_oracle():
    return Oracle(grid=SMALL_GRID, lru_capacity=4, policy=True)


class TestOraclePolicyTier:
    def test_warm_path_never_touches_the_solver(self, policy_oracle):
        for snr_db in (6.0, 9.25, 6.0):
            result = policy_oracle.recommend(
                RecommendRequest(link=LinkSpec(snr_db=snr_db))
            )
            assert result.cache_tier == TIER_POLICY
        info = policy_oracle.policy_info()
        assert info["solver_solves"] == 0
        assert info["lookups"] == 3
        assert info["compiles"] == 1

    def test_policy_answer_equals_uncached_at_bin_centers(
        self, policy_oracle
    ):
        for snr_db in (4.0, 10.25, 17.5):
            request = RecommendRequest(link=LinkSpec(snr_db=snr_db))
            result = policy_oracle.recommend(request)
            assert result.evaluation == policy_oracle.uncached_recommend(
                request
            )

    def test_constrained_requests_fall_back_to_the_solver(
        self, policy_oracle
    ):
        request = RecommendRequest(
            link=LinkSpec(snr_db=6.0),
            constraints=(Constraint(objective="rho", upper_bound=1.0),),
        )
        result = policy_oracle.recommend(request)
        assert result.cache_tier == TIER_MISS
        info = policy_oracle.policy_info()
        assert info["fallbacks"] == 1
        assert info["solver_solves"] == 1

    def test_off_axis_snr_falls_back(self):
        oracle = Oracle(
            grid=SMALL_GRID,
            policy=True,
            policy_snr_range_db=(0.0, 10.0),
        )
        result = oracle.recommend(
            RecommendRequest(link=LinkSpec(snr_db=30.0))
        )
        assert result.cache_tier == TIER_MISS
        assert oracle.policy_info()["fallbacks"] == 1

    def test_distance_links_answer_from_the_reference_snr_bin(
        self, policy_oracle
    ):
        result = policy_oracle.recommend(
            RecommendRequest(link=LinkSpec(distance_m=20.0))
        )
        assert result.cache_tier == TIER_POLICY
        assert result.evaluation.config.distance_m == 20.0

    def test_disabled_oracle_returns_none(self):
        oracle = Oracle(grid=SMALL_GRID, policy=False)
        request = RecommendRequest(link=LinkSpec(snr_db=6.0))
        assert oracle.policy_recommend(request) is None
        assert oracle.recommend(request).cache_tier == TIER_MISS

    def test_bin_quantized_lru_shares_tables(self, policy_oracle):
        # Constrained requests take the table path; 6.0 and 6.01 dB land
        # in the same 0.25 dB policy bin, so the second is an LRU hit.
        constraints = (Constraint(objective="rho", upper_bound=1.0),)
        tiers = [
            policy_oracle.recommend(
                RecommendRequest(
                    link=LinkSpec(snr_db=snr_db), constraints=constraints
                )
            ).cache_tier
            for snr_db in (6.0, 6.01)
        ]
        assert tiers == [TIER_MISS, TIER_LRU]
        info = policy_oracle.policy_info()
        assert info["bin_lookups"] == 2
        assert info["bin_hits"] == 1
        assert info["bin_hit_rate"] == 0.5

    def test_fleet_recommend_answers_from_the_policy(self, policy_oracle):
        request = FleetRecommendRequest(
            links=(
                LinkSpec(snr_db=6.0),
                LinkSpec(snr_db=6.0),
                LinkSpec(snr_db=12.5),
            )
        )
        result = policy_oracle.recommend_fleet(request)
        assert result.tier_counts() == {TIER_POLICY: 3}
        assert policy_oracle.policy_info()["solver_solves"] == 0


class TestFleetEnginePolicy:
    def fleet_state(self, snr_db):
        snr = np.asarray(snr_db, dtype=float)
        return FleetState(
            base_snr_db=snr.copy(),
            snr_db=snr.copy(),
            noise_dbm=np.full(snr.shape, -90.0),
            config_index=np.full(snr.shape, -1, dtype=np.int64),
            objective_value=np.full(snr.shape, np.nan),
        )

    def test_policy_step_identical_to_exact(self):
        rng = np.random.default_rng(0)
        snr_db = rng.uniform(0.0, 25.0, size=300)
        policy_state = self.fleet_state(snr_db)
        exact_state = self.fleet_state(snr_db)
        FleetEngine(grid=SMALL_GRID, use_policy=True).step(policy_state)
        FleetEngine(grid=SMALL_GRID, use_policy=False).step(exact_state)
        np.testing.assert_array_equal(
            policy_state.config_index, exact_state.config_index
        )
        np.testing.assert_array_equal(
            policy_state.objective_value, exact_state.objective_value
        )

    def test_off_axis_links_fall_back_to_the_exact_solve(self):
        snr_db = np.array([5.0, 8.0, 15.0, 18.0])
        engine = FleetEngine(
            grid=SMALL_GRID,
            use_policy=True,
            policy_snr_range_db=(0.0, 10.0),
        )
        policy_state = self.fleet_state(snr_db)
        report = engine.step(policy_state)
        assert report.n_policy_links == 2
        assert report.n_fallback_links == 2
        exact_state = self.fleet_state(snr_db)
        FleetEngine(grid=SMALL_GRID, use_policy=False).step(exact_state)
        np.testing.assert_array_equal(
            policy_state.config_index, exact_state.config_index
        )
        np.testing.assert_array_equal(
            policy_state.objective_value, exact_state.objective_value
        )

    def test_zero_quantum_disables_the_policy(self):
        engine = FleetEngine(
            grid=SMALL_GRID, snr_quantum_db=0.0, use_policy=True
        )
        assert engine.use_policy is False
        report = engine.step(self.fleet_state([6.0, 7.0]))
        assert report.n_policy_links == 0
        assert report.n_fallback_links == 0

    def test_invalid_policy_range_raises(self):
        with pytest.raises(FleetError):
            FleetEngine(grid=SMALL_GRID, policy_snr_range_db=(5.0, 1.0))

    def test_report_stats_carry_policy_counts(self):
        engine = FleetEngine(grid=SMALL_GRID, use_policy=True)
        report = engine.step(self.fleet_state([6.0, 7.0, 7.0]))
        stats = report.stats()
        assert stats["n_policy_links"] == 3
        assert stats["n_fallback_links"] == 0
