"""Detailed sender-pipeline behaviours: CCA failures, ACK policy, ordering."""

import numpy as np
import pytest

from repro.analysis import compute_metrics
from repro.channel import QUIET_HALLWAY
from repro.config import StackConfig
from repro.mac import AckPolicy, CsmaParameters
from repro.sim import LinkSimulator, PacketFate, SimulationOptions
from repro.sim.trace import LinkTrace


def simulate(config, csma=None, ack=None, n_packets=200, seed=0):
    options = SimulationOptions(
        n_packets=n_packets,
        seed=seed,
        environment=QUIET_HALLWAY,
        csma=csma or CsmaParameters(),
        ack=ack or AckPolicy(),
    )
    return LinkSimulator(config, options).run()


@pytest.fixture
def good_config():
    return StackConfig(
        distance_m=10.0, ptx_level=31, n_max_tries=3, q_max=1,
        t_pkt_ms=100.0, payload_bytes=50,
    )


class TestCcaFailures:
    def test_busy_channel_produces_cca_failures(self, good_config):
        trace = simulate(
            good_config,
            csma=CsmaParameters(cca_busy_prob=0.8, max_cca_attempts=2),
            n_packets=300,
        )
        cca_failures = sum(p.n_cca_failures for p in trace.packets)
        assert cca_failures > 0
        trace.validate()  # attempt accounting stays consistent

    def test_cca_failures_consume_attempt_budget(self, good_config):
        """A channel-access failure counts as a try: packets can be dropped
        without a single frame on air."""
        config = good_config.with_updates(n_max_tries=1)
        trace = simulate(
            config,
            csma=CsmaParameters(cca_busy_prob=0.95, max_cca_attempts=2),
            n_packets=300,
        )
        silent_drops = [
            p
            for p in trace.packets
            if p.fate is PacketFate.RADIO_DROP and p.n_cca_failures == p.n_tries
        ]
        assert silent_drops
        # Those packets transmitted nothing: no energy spent on air.
        assert all(p.tx_energy_j == 0.0 for p in silent_drops)

    def test_clear_channel_never_fails_cca(self, good_config):
        trace = simulate(good_config, n_packets=200)
        assert all(p.n_cca_failures == 0 for p in trace.packets)


class TestAckPolicies:
    def test_ack_disabled_assumes_success(self, good_config):
        """Without ACKs the sender fires once and always believes it worked
        (broadcast-style), so PLR_radio as seen by the sender is zero even
        on a weak link."""
        weak = good_config.with_updates(distance_m=35.0, ptx_level=7)
        trace = simulate(
            weak, ack=AckPolicy(enabled=False), n_packets=300
        )
        assert all(p.fate is PacketFate.DELIVERED for p in trace.packets)
        assert all(p.n_tries == 1 for p in trace.packets)
        # ...while the receiver actually missed some frames.
        received = sum(1 for p in trace.packets if p.received)
        assert received < len(trace.packets)

    def test_ack_loss_off_equates_delivery_and_ack(self, good_config):
        trace = simulate(
            good_config.with_updates(distance_m=35.0, ptx_level=11),
            ack=AckPolicy(ack_loss_modelled=False),
            n_packets=400,
        )
        for tx in trace.transmissions:
            assert tx.acked == tx.data_delivered


class TestServiceOrdering:
    def test_fifo_service_order(self, good_config):
        """Packets leave the MAC in generation order (FIFO queue)."""
        config = good_config.with_updates(t_pkt_ms=10.0, q_max=30)
        trace = simulate(config, n_packets=300)
        serviced = [
            p for p in trace.packets if p.fate is not PacketFate.QUEUE_DROP
        ]
        dequeue_times = [p.dequeued_s for p in sorted(serviced, key=lambda p: p.seq)]
        assert dequeue_times == sorted(dequeue_times)

    def test_no_service_overlap(self, good_config):
        """At most one packet is in MAC service at any time."""
        config = good_config.with_updates(t_pkt_ms=10.0, q_max=30)
        trace = simulate(config, n_packets=300)
        serviced = sorted(
            (p for p in trace.packets if p.fate is not PacketFate.QUEUE_DROP),
            key=lambda p: p.dequeued_s,
        )
        for a, b in zip(serviced, serviced[1:]):
            assert a.completed_s <= b.dequeued_s + 1e-12

    def test_queue_drop_records_queue_length(self, good_config):
        config = good_config.with_updates(t_pkt_ms=5.0, payload_bytes=110, q_max=2)
        trace = simulate(config, n_packets=300)
        drops = trace.packets_with_fate(PacketFate.QUEUE_DROP)
        assert drops
        assert all(p.queue_len_at_arrival == 2 for p in drops)


class TestEnergyAccounting:
    def test_per_packet_energy_sums_to_total(self, good_config):
        trace = simulate(good_config, n_packets=200)
        per_packet = sum(p.tx_energy_j for p in trace.packets)
        assert per_packet == pytest.approx(trace.tx_energy_j, rel=1e-9)

    def test_tx_energy_proportional_to_transmissions(self, good_config):
        from repro.radio.energy import tx_energy_j

        trace = simulate(good_config, n_packets=200)
        expected = tx_energy_j(
            good_config.ptx_level,
            good_config.payload_bytes,
            trace.n_transmissions,
        )
        assert trace.tx_energy_j == pytest.approx(expected, rel=1e-9)
