"""Metric-computation tests (repro.analysis.metrics)."""

import math

import pytest

from repro.analysis import compute_metrics
from repro.errors import SimulationError
from repro.sim.trace import LinkTrace, PacketFate, PacketRecord, TransmissionRecord


def tx(seq, attempt, acked, delivered=None, t=0.0):
    return TransmissionRecord(
        packet_seq=seq,
        attempt=attempt,
        tx_time_s=t,
        rssi_dbm=-80.0,
        noise_dbm=-95.0,
        lqi=100.0,
        data_delivered=acked if delivered is None else delivered,
        acked=acked,
    )


def delivered_packet(seq, payload=50, gen=0.0, tries=1):
    return PacketRecord(
        seq=seq,
        payload_bytes=payload,
        generated_s=gen,
        fate=PacketFate.DELIVERED,
        dequeued_s=gen + 0.01,
        completed_s=gen + 0.03,
        n_tries=tries,
        first_delivery_s=gen + 0.025,
    )


def radio_drop(seq, payload=50, gen=0.0, tries=3):
    return PacketRecord(
        seq=seq,
        payload_bytes=payload,
        generated_s=gen,
        fate=PacketFate.RADIO_DROP,
        dequeued_s=gen + 0.01,
        completed_s=gen + 0.05,
        n_tries=tries,
    )


def queue_drop(seq, payload=50, gen=0.0):
    return PacketRecord(
        seq=seq, payload_bytes=payload, generated_s=gen, fate=PacketFate.QUEUE_DROP
    )


class TestComputeMetrics:
    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            compute_metrics(LinkTrace())

    def test_per_is_eq1(self):
        """PER = non-ACKed transmissions / total transmissions (Eq. 1)."""
        trace = LinkTrace(
            packets=[delivered_packet(0, tries=2)],
            transmissions=[tx(0, 1, acked=False), tx(0, 2, acked=True)],
            duration_s=1.0,
        )
        assert compute_metrics(trace).per == pytest.approx(0.5)

    def test_loss_split(self):
        trace = LinkTrace(
            packets=[
                delivered_packet(0),
                radio_drop(1),
                queue_drop(2),
                queue_drop(3),
            ],
            duration_s=1.0,
        )
        m = compute_metrics(trace)
        assert m.plr_queue == pytest.approx(0.5)  # 2 of 4 arrivals
        assert m.plr_radio == pytest.approx(0.5)  # 1 of 2 serviced
        assert m.plr_total == pytest.approx(0.75)  # 3 of 4 arrivals

    def test_goodput_counts_only_delivered_payload(self):
        trace = LinkTrace(
            packets=[delivered_packet(0, payload=100), radio_drop(1, payload=100)],
            duration_s=2.0,
        )
        m = compute_metrics(trace)
        assert m.goodput_bps == pytest.approx(100 * 8 / 2.0)
        assert m.goodput_kbps == pytest.approx(0.4)

    def test_zero_duration_goodput(self):
        trace = LinkTrace(packets=[delivered_packet(0)], duration_s=0.0)
        assert compute_metrics(trace).goodput_bps == 0.0

    def test_energy_per_info_bit(self):
        trace = LinkTrace(
            packets=[delivered_packet(0, payload=100)],
            duration_s=1.0,
            tx_energy_j=8e-5,
        )
        m = compute_metrics(trace)
        assert m.energy_per_info_bit_j == pytest.approx(8e-5 / 800)
        assert m.energy_per_info_bit_uj == pytest.approx(0.1)

    def test_energy_infinite_without_delivery(self):
        trace = LinkTrace(
            packets=[radio_drop(0)], duration_s=1.0, tx_energy_j=1e-5
        )
        assert math.isinf(compute_metrics(trace).energy_per_info_bit_j)

    def test_delay_only_over_delivered(self):
        trace = LinkTrace(
            packets=[delivered_packet(0), radio_drop(1)], duration_s=1.0
        )
        m = compute_metrics(trace)
        assert m.mean_delay_s == pytest.approx(0.025)

    def test_mean_service_time_over_serviced(self):
        trace = LinkTrace(
            packets=[delivered_packet(0), radio_drop(1)], duration_s=1.0
        )
        m = compute_metrics(trace)
        assert m.mean_service_time_s == pytest.approx((0.02 + 0.04) / 2)

    def test_channel_stats_from_transmissions(self):
        trace = LinkTrace(
            packets=[delivered_packet(0)],
            transmissions=[tx(0, 1, acked=True)],
            duration_s=1.0,
        )
        m = compute_metrics(trace)
        assert m.mean_rssi_dbm == pytest.approx(-80.0)
        assert m.mean_snr_db == pytest.approx(15.0)
        assert m.mean_lqi == pytest.approx(100.0)

    def test_delivery_ratio(self):
        trace = LinkTrace(
            packets=[delivered_packet(0), radio_drop(1), queue_drop(2)],
            duration_s=1.0,
        )
        assert compute_metrics(trace).delivery_ratio == pytest.approx(1 / 3)

    def test_counts(self, small_trace):
        m = compute_metrics(small_trace)
        assert m.n_packets == 200
        assert (
            m.n_delivered + m.n_queue_dropped + m.n_radio_dropped == m.n_packets
        )
        assert m.n_acked_transmissions <= m.n_transmissions
