"""CLI tests (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestRunConfig:
    def test_prints_metrics(self, capsys):
        code = main(
            [
                "run-config",
                "--distance-m", "10",
                "--ptx-level", "31",
                "--payload-bytes", "50",
                "--packets", "100",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "goodput" in out
        assert "U_eng" in out

    def test_invalid_config_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run-config", "--ptx-level", "30", "--packets", "10"])


class TestSweep:
    def test_writes_dataset(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep",
                "--distance-m", "10.0",
                "--q-max", "1",
                "--limit", "3",
                "--packets", "30",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        from repro.campaign import CampaignDataset

        assert len(CampaignDataset.load(out_file)) == 3

    def test_resume_checkpoints_and_continues(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.jsonl"
        argv = [
            "sweep",
            "--distance-m", "10.0",
            "--q-max", "1",
            "--limit", "3",
            "--packets", "30",
            "--resume",
            "--output", str(out_file),
        ]
        assert main(argv) == 0
        from repro.campaign import CampaignDataset

        first = CampaignDataset.load(out_file).summaries
        assert len(first) == 3
        # Drop the last row; --resume must redo only that configuration.
        lines = out_file.read_text().splitlines()
        out_file.write_text("\n".join(lines[:3]) + "\n")
        assert main(argv) == 0
        assert CampaignDataset.load(out_file).summaries == first
        out = capsys.readouterr().out
        assert "holds 3 summaries" in out


class TestServeParser:
    def test_defaults_precompute_table1(self):
        from repro.config import TABLE_I_SPACE

        args = build_parser().parse_args(["serve"])
        assert args.precompute == TABLE_I_SPACE.distances_m
        assert args.port == 8080

    def test_precompute_none_and_custom(self):
        args = build_parser().parse_args(["serve", "--precompute", "none"])
        assert args.precompute == ()
        args = build_parser().parse_args(["serve", "--precompute", "5,12.5"])
        assert args.precompute == (5.0, 12.5)

    def test_precompute_garbage_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--precompute", "garbage"])


class TestCaseStudy:
    def test_prints_tables(self, capsys):
        code = main(["case-study"])
        out = capsys.readouterr().out
        assert code == 0
        assert "paper (Table IV)" in out
        assert "joint (our work)" in out
        assert "dominates all baselines (models): True" in out


class TestGuidelines:
    def test_prints_recommendations(self, capsys):
        code = main(["guidelines", "--distance-m", "35.0"])
        out = capsys.readouterr().out
        assert code == 0
        for section in ("energy", "goodput", "delay", "loss"):
            assert section in out


class TestValidate:
    def test_validate_report(self, tmp_path, capsys):
        dataset_path = tmp_path / "ds.jsonl"
        main(
            [
                "sweep",
                "--distance-m", "10.0",
                "--q-max", "1",
                "--limit", "4",
                "--packets", "50",
                "--output", str(dataset_path),
            ]
        )
        capsys.readouterr()
        code = main(["validate", "--dataset", str(dataset_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean_service_time_ms" in out
        assert "describe this environment" in out

    def test_validate_missing_dataset(self, tmp_path):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            main(["validate", "--dataset", str(tmp_path / "none.jsonl")])


class TestExportTrace:
    def test_export_and_reload(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        code = main(
            [
                "export-trace",
                "--distance-m", "10",
                "--packets", "40",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        from repro.sim import load_trace

        trace, config = load_trace(out_file)
        assert len(trace.packets) == 40
        assert config is not None and config.distance_m == 10.0

    def test_packets_only(self, tmp_path):
        out_file = tmp_path / "trace.jsonl"
        main(
            [
                "export-trace",
                "--packets", "20",
                "--packets-only",
                "--output", str(out_file),
            ]
        )
        from repro.sim import load_trace

        trace, _ = load_trace(out_file)
        assert len(trace.packets) == 20
        assert not trace.transmissions


class TestLinkBudget:
    def test_prints_budget_table(self, capsys):
        code = main(["link-budget", "--distance-m", "35", "--required-snr", "17"])
        out = capsys.readouterr().out
        assert code == 0
        assert "path loss" in out
        assert "cheapest level" in out
        assert "coverage" in out

    def test_impossible_requirement(self, capsys):
        code = main(["link-budget", "--distance-m", "35", "--required-snr", "90"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no power level reaches" in out


class TestSensitivity:
    def test_prints_rankings(self, capsys):
        code = main(["sensitivity", "--distance-m", "35"])
        out = capsys.readouterr().out
        assert code == 0
        for metric in ("energy", "goodput", "delay", "loss"):
            assert f"{metric}:" in out
        assert "ptx_level" in out and "payload_bytes" in out


class TestFleet:
    FAST = ["--links", "12", "--payload-step", "40"]

    def test_runs_and_prints_steps(self, capsys):
        code = main(["fleet", *self.FAST, "--steps", "3", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "12 links" in out
        assert "step    0" in out and "step    2" in out
        assert "final: " in out

    def test_constraint_and_objective_flags(self, capsys):
        code = main(
            ["fleet", *self.FAST, "--steps", "2", "--objective", "goodput",
             "--constraint", "delay=60"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mean goodput" in out

    def test_bad_constraint_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises((ConfigurationError, SystemExit)):
            main(["fleet", *self.FAST, "--constraint", "delay"])

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        path = tmp_path / "fleet.jsonl"
        straight = tmp_path / "straight.jsonl"
        base = ["fleet", *self.FAST, "--seed", "3"]
        assert main([*base, "--steps", "5",
                     "--checkpoint", str(straight)]) == 0
        assert main([*base, "--steps", "2", "--checkpoint", str(path)]) == 0
        code = main([*base, "--steps", "5", "--checkpoint", str(path),
                     "--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed 2 checkpointed step(s), executed 3" in out
        assert path.read_bytes() == straight.read_bytes()
