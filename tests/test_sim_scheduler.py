"""Event scheduler tests (repro.sim.scheduler)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulerError
from repro.sim.events import EventKind
from repro.sim.scheduler import EventScheduler


def noop(event):
    pass


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert EventScheduler().now_s == 0.0

    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        fired = []
        for delay in (3.0, 1.0, 2.0):
            sched.schedule(
                delay, EventKind.CALLBACK, lambda e: fired.append(e.time_s)
            )
        sched.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sched = EventScheduler()
        fired = []
        for tag in ("a", "b", "c"):
            sched.schedule(
                1.0, EventKind.CALLBACK, lambda e: fired.append(e.payload), tag
            )
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        sched.schedule(2.5, EventKind.CALLBACK, noop)
        sched.run()
        assert sched.now_s == 2.5

    def test_cannot_schedule_into_past(self):
        sched = EventScheduler()
        sched.schedule(1.0, EventKind.CALLBACK, noop)
        sched.run()
        with pytest.raises(SchedulerError):
            sched.schedule_at(0.5, EventKind.CALLBACK, noop)
        with pytest.raises(SchedulerError):
            sched.schedule(-0.1, EventKind.CALLBACK, noop)

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        fired = []

        def chain(event):
            fired.append(sched.now_s)
            if len(fired) < 5:
                sched.schedule(1.0, EventKind.CALLBACK, chain)

        sched.schedule(0.0, EventKind.CALLBACK, chain)
        sched.run()
        assert fired == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_cancelled_events_skipped(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(
            1.0, EventKind.CALLBACK, lambda e: fired.append("cancelled")
        )
        sched.schedule(2.0, EventKind.CALLBACK, lambda e: fired.append("kept"))
        event.cancel()
        sched.run()
        assert fired == ["kept"]

    def test_run_returns_executed_count(self):
        sched = EventScheduler()
        for i in range(4):
            sched.schedule(float(i), EventKind.CALLBACK, noop)
        assert sched.run() == 4
        assert sched.processed == 4

    def test_event_budget_enforced(self):
        sched = EventScheduler()

        def forever(event):
            sched.schedule(1.0, EventKind.CALLBACK, forever)

        sched.schedule(0.0, EventKind.CALLBACK, forever)
        with pytest.raises(SchedulerError):
            sched.run(max_events=100)

    def test_run_until_partial(self):
        sched = EventScheduler()
        fired = []
        for delay in (1.0, 2.0, 3.0):
            sched.schedule(delay, EventKind.CALLBACK, lambda e: fired.append(e.time_s))
        executed = sched.run_until(2.0)
        assert executed == 2
        assert fired == [1.0, 2.0]
        assert sched.now_s == 2.0
        assert sched.pending == 1

    def test_run_until_cannot_go_backwards(self):
        sched = EventScheduler()
        sched.run_until(5.0)
        with pytest.raises(SchedulerError):
            sched.run_until(4.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60))
    def test_any_delays_fire_sorted(self, delays):
        """Property: events always execute in non-decreasing time order."""
        sched = EventScheduler()
        fired = []
        for d in delays:
            sched.schedule(d, EventKind.CALLBACK, lambda e: fired.append(e.time_s))
        sched.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
