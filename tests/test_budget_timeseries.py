"""Link-budget and time-series analysis tests."""

import numpy as np
import pytest

from repro.analysis import (
    delivery_ratio_over_time,
    detect_degradation,
    goodput_over_time,
    per_over_time,
)
from repro.channel import HALLWAY_2012, LinkBudget, QUIET_HALLWAY
from repro.config import StackConfig
from repro.errors import AnalysisError, ChannelError
from repro.extensions import MobileLinkChannel, MobilityTrace
from repro.radio import cc2420
from repro.sim import LinkSimulator, SimulationOptions, simulate_link


class TestLinkBudget:
    def setup_method(self):
        self.budget = LinkBudget(HALLWAY_2012)

    def test_row_consistency(self):
        row = self.budget.at(20.0, 23)
        assert row.tx_power_dbm == -3.0
        assert row.mean_rssi_dbm == pytest.approx(
            row.tx_power_dbm - row.path_loss_db
        )
        assert row.mean_snr_db == pytest.approx(
            row.mean_rssi_dbm - HALLWAY_2012.noise.mean_dbm
        )

    def test_table_covers_all_levels(self):
        rows = self.budget.table(20.0)
        assert [r.ptx_level for r in rows] == list(cc2420.PA_LEVELS)
        snrs = [r.mean_snr_db for r in rows]
        assert snrs == sorted(snrs)

    def test_sensitivity_margin(self):
        strong = self.budget.at(5.0, 31)
        weak = self.budget.at(35.0, 3)
        assert strong.sensitivity_margin_db > 30
        assert weak.sensitivity_margin_db < 2

    def test_cheapest_level(self):
        level = self.budget.cheapest_level_for_snr(20.0, required_snr_db=19.0)
        assert level is not None
        assert self.budget.at(20.0, level).mean_snr_db >= 19.0
        # The next-cheaper level must miss the requirement (or not exist).
        idx = cc2420.PA_LEVELS.index(level)
        if idx > 0:
            lower = cc2420.PA_LEVELS[idx - 1]
            assert self.budget.at(20.0, lower).mean_snr_db < 19.0

    def test_cheapest_level_none_when_impossible(self):
        assert self.budget.cheapest_level_for_snr(35.0, 60.0) is None

    def test_max_distance_monotone_in_power(self):
        d_low = self.budget.max_distance_for_snr(11, 12.0)
        d_high = self.budget.max_distance_for_snr(31, 12.0)
        assert d_high > d_low

    def test_max_distance_meets_requirement(self):
        distance = self.budget.max_distance_for_snr(31, 19.0)
        tx = cc2420.output_power_dbm(31)
        snr = (
            tx
            - HALLWAY_2012.pathloss.median_loss_db(distance)
            - HALLWAY_2012.noise.mean_dbm
        )
        assert snr == pytest.approx(19.0, abs=0.05)

    def test_max_distance_errors(self):
        with pytest.raises(ChannelError):
            self.budget.max_distance_for_snr(3, 80.0)
        with pytest.raises(ChannelError):
            self.budget.max_distance_for_snr(31, 10.0, lo_m=5.0, hi_m=2.0)

    def test_coverage_map(self):
        coverage = self.budget.coverage_map(12.0)
        assert set(coverage) <= set(cc2420.PA_LEVELS)
        values = [coverage[lvl] for lvl in sorted(coverage)]
        assert values == sorted(values)

    def test_at_rejects_bad_distance(self):
        with pytest.raises(ChannelError):
            self.budget.at(0.0, 31)


@pytest.fixture(scope="module")
def mobile_trace():
    """A walk that degrades the link partway through the run."""
    walk = MobilityTrace.walk(start_m=10.0, end_m=120.0, duration_s=25.0)
    config = StackConfig(
        distance_m=10.0, ptx_level=11, n_max_tries=1, q_max=1,
        t_pkt_ms=50.0, payload_bytes=110,
    )
    options = SimulationOptions(
        n_packets=500, seed=3, environment=QUIET_HALLWAY
    )
    sim = LinkSimulator(
        config,
        options,
        channel=MobileLinkChannel(
            QUIET_HALLWAY, walk, 11, np.random.default_rng(8)
        ),
    )
    return sim.run()


class TestTimeSeries:
    def test_per_series_rises_over_walk(self, mobile_trace):
        series = per_over_time(mobile_trace, window_s=2.0).nonempty()
        assert series.values[-1] > series.values[0] + 0.2

    def test_goodput_series_falls_over_walk(self, mobile_trace):
        series = goodput_over_time(mobile_trace, window_s=2.0).nonempty()
        assert series.values[0] > series.values[-1]

    def test_delivery_ratio_series(self, mobile_trace):
        series = delivery_ratio_over_time(mobile_trace, window_s=2.0).nonempty()
        assert series.values[0] > 0.9
        assert series.values[-1] < 0.6

    def test_counts_conserve_packets(self, mobile_trace):
        series = delivery_ratio_over_time(mobile_trace, window_s=2.0)
        assert series.counts.sum() == len(mobile_trace.packets)

    def test_detect_degradation_fires_mid_walk(self, mobile_trace):
        series = per_over_time(mobile_trace, window_s=2.0)
        when = detect_degradation(series, threshold=0.3, above_is_bad=True)
        assert when is not None
        assert 2.0 < when < mobile_trace.duration_s

    def test_detect_degradation_none_on_good_link(self):
        config = StackConfig(
            distance_m=5.0, ptx_level=31, q_max=1, t_pkt_ms=50.0,
            payload_bytes=50,
        )
        trace = simulate_link(
            config, n_packets=200, seed=1, environment=QUIET_HALLWAY
        )
        series = per_over_time(trace, window_s=1.0)
        assert detect_degradation(series, threshold=0.5) is None

    def test_validation(self, mobile_trace):
        with pytest.raises(AnalysisError):
            per_over_time(mobile_trace, window_s=0.0)
        with pytest.raises(AnalysisError):
            detect_degradation(
                per_over_time(mobile_trace), threshold=0.5, min_count=0
            )
