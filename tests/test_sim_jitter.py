"""Application arrival-jitter tests (SimulationOptions.arrival_jitter)."""

import numpy as np
import pytest

from repro.analysis import compute_metrics
from repro.channel import QUIET_HALLWAY
from repro.config import StackConfig
from repro.errors import SimulationError
from repro.sim import SimulationOptions, simulate_link


def run(jitter, seed=0, n_packets=300, t_pkt_ms=50.0):
    config = StackConfig(
        distance_m=10.0, ptx_level=31, n_max_tries=1, q_max=1,
        t_pkt_ms=t_pkt_ms, payload_bytes=50,
    )
    options = SimulationOptions(
        n_packets=n_packets, seed=seed, environment=QUIET_HALLWAY,
        arrival_jitter=jitter,
    )
    return simulate_link(config, options=options)


class TestArrivalJitter:
    def test_zero_jitter_is_periodic(self):
        trace = run(0.0)
        gaps = np.diff([p.generated_s for p in trace.packets])
        assert np.allclose(gaps, 0.05)

    def test_jittered_gaps_vary_within_bounds(self):
        trace = run(0.3)
        gaps = np.diff([p.generated_s for p in trace.packets])
        assert gaps.std() > 0.001
        assert gaps.min() >= 0.05 * 0.7 - 1e-9
        assert gaps.max() <= 0.05 * 1.3 + 1e-9

    def test_mean_rate_preserved(self):
        trace = run(0.3, n_packets=2000)
        gaps = np.diff([p.generated_s for p in trace.packets])
        assert gaps.mean() == pytest.approx(0.05, rel=0.03)

    def test_deterministic_under_seed(self):
        a = run(0.3, seed=4)
        b = run(0.3, seed=4)
        assert [p.generated_s for p in a.packets] == [
            p.generated_s for p in b.packets
        ]

    def test_jitter_does_not_perturb_channel(self):
        """The arrival stream is independent: channel outcomes at the same
        seed are driven by their own RNG stream."""
        periodic = run(0.0, seed=9)
        jittered = run(0.3, seed=9)
        assert [p.fate for p in periodic.packets] == [
            p.fate for p in jittered.packets
        ]

    def test_jitter_increases_queueing_near_saturation(self):
        """Variability in arrivals feeds queue loss when rho is near 1."""
        def queue_drops(jitter):
            config = StackConfig(
                distance_m=10.0, ptx_level=31, n_max_tries=1, q_max=1,
                t_pkt_ms=17.0, payload_bytes=110,  # rho ~ 0.97
            )
            options = SimulationOptions(
                n_packets=1500, seed=2, environment=QUIET_HALLWAY,
                arrival_jitter=jitter,
            )
            return compute_metrics(
                simulate_link(config, options=options)
            ).plr_queue

        assert queue_drops(0.6) > queue_drops(0.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            SimulationOptions(arrival_jitter=1.0)
        with pytest.raises(SimulationError):
            SimulationOptions(arrival_jitter=-0.1)
