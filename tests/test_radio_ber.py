"""Bit-error model tests (repro.radio.ber)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import RadioError
from repro.radio.ber import AnalyticOQPSKBer, EmpiricalExpBer


class TestEmpiricalExpBer:
    def setup_method(self):
        self.model = EmpiricalExpBer()

    def test_decreases_with_snr(self):
        assert self.model.bit_error_probability(
            20.0
        ) < self.model.bit_error_probability(5.0)

    def test_clamped_at_half(self):
        assert self.model.bit_error_probability(-100.0) == 0.5

    @given(st.floats(min_value=-20, max_value=60))
    def test_in_valid_range(self, snr):
        p = self.model.bit_error_probability(snr)
        assert 0.0 <= p <= 0.5

    def test_vectorized(self):
        snrs = np.array([0.0, 10.0, 20.0])
        p = self.model.bit_error_probability(snrs)
        assert p.shape == (3,)
        assert np.all(np.diff(p) < 0)

    def test_frame_error_increases_with_length(self):
        short = self.model.frame_error_probability(12.0, 24)
        long = self.model.frame_error_probability(12.0, 133)
        assert long > short

    def test_frame_error_bounds(self):
        assert 0.0 <= self.model.frame_error_probability(12.0, 133) <= 1.0

    def test_frame_error_matches_binomial(self):
        p_bit = self.model.bit_error_probability(15.0)
        expected = 1.0 - (1.0 - p_bit) ** (8 * 100)
        assert self.model.frame_error_probability(15.0, 100) == pytest.approx(
            expected, rel=1e-9
        )

    def test_success_complements_error(self):
        err = self.model.frame_error_probability(10.0, 129)
        ok = self.model.frame_success_probability(10.0, 129)
        assert err + ok == pytest.approx(1.0)

    def test_calibration_matches_paper_grey_zone(self):
        # At the 19 dB low-impact border the max-size frame PER should be
        # near the paper's observed ~0.1 (Fig. 6d).
        per_19 = self.model.frame_error_probability(19.0, 133)
        assert 0.03 < per_19 < 0.2
        # Deep in the grey zone the max frame is mostly lost.
        per_5 = self.model.frame_error_probability(5.0, 133)
        assert per_5 > 0.35

    def test_rejects_bad_coefficients(self):
        with pytest.raises(RadioError):
            EmpiricalExpBer(coefficient=0.0)
        with pytest.raises(RadioError):
            EmpiricalExpBer(exponent_per_db=0.1)

    def test_rejects_bad_frame(self):
        with pytest.raises(RadioError):
            self.model.frame_error_probability(10.0, 0)


class TestAnalyticOQPSKBer:
    def setup_method(self):
        self.model = AnalyticOQPSKBer(implementation_loss_db=0.0)

    def test_high_snr_near_zero(self):
        assert self.model.bit_error_probability(15.0) < 1e-10

    def test_low_snr_near_half(self):
        assert self.model.bit_error_probability(-20.0) > 0.4

    def test_monotone_decreasing(self):
        snrs = np.linspace(-10, 15, 60)
        p = self.model.bit_error_probability(snrs)
        assert np.all(np.diff(p) <= 1e-12)

    def test_implementation_loss_shifts_curve(self):
        lossy = AnalyticOQPSKBer(implementation_loss_db=10.0)
        # The lossy model at SNR x equals the clean model at x − 10.
        assert lossy.bit_error_probability(12.0) == pytest.approx(
            self.model.bit_error_probability(2.0), rel=1e-9
        )

    def test_cliff_is_sharper_than_empirical(self):
        """The ablation claim: the analytic curve has a sharper transition.

        Measured as the SNR span over which the 133-byte frame PER falls
        from 0.9 to 0.1 — the paper observed real links are much smoother
        than the textbook curve.
        """
        analytic = AnalyticOQPSKBer(implementation_loss_db=10.0)
        empirical = EmpiricalExpBer()
        snrs = np.linspace(-5, 40, 2000)

        def transition_width(model):
            per = np.asarray(
                [model.frame_error_probability(s, 133) for s in snrs]
            )
            hi = snrs[np.argmax(per < 0.9)]
            lo = snrs[np.argmax(per < 0.1)]
            return lo - hi

        assert transition_width(analytic) < transition_width(empirical)
