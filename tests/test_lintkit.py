"""Tests for the reprolint static-analysis toolkit (repro.lintkit).

Each RPR rule gets a fixture-driven test proving it detects its target
violation and stays quiet on conforming code; the suite also pins the
suppression syntax, the JSON reporter schema, baseline round-tripping, the
CLI wiring, and — crucially — that ``src/repro`` itself is lint-clean with
an empty baseline.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.errors import LintError
from repro.lintkit import (
    Finding,
    Linter,
    Severity,
    all_rules,
    filter_findings,
    iter_python_files,
    lint_paths,
    load_baseline,
    per_rule_counts,
    render_json,
    render_text,
    save_baseline,
)
from repro.lintkit.constant_registry import (
    is_distinctive,
    load_registry,
    match_constant,
    significant_digits,
)
from repro.lintkit.rules.rpr001_units import has_unit_suffix, unit_suffix

SRC_REPRO = Path(repro.__file__).resolve().parent


def lint_snippet(tmp_path, code, select=None, filename="snippet.py"):
    path = tmp_path / filename
    path.write_text(code)
    return lint_paths([path], select=select)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestRuleRegistry:
    def test_all_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
            "RPR101", "RPR102", "RPR103", "RPR104",
            "RPR201", "RPR202", "RPR203", "RPR204", "RPR205",
            "RPR301", "RPR302", "RPR303", "RPR304", "RPR305",
        ]

    def test_unknown_select_rejected(self):
        with pytest.raises(LintError):
            Linter(select={"RPR999"})


class TestRPR001UnitSuffixes:
    def test_detects_time_scale_mix(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(t_ms, d_s):\n    return t_ms + d_s\n",
            select={"RPR001"},
        )
        assert rule_ids(findings) == ["RPR001"]
        assert "time scales" in findings[0].message

    def test_detects_cross_dimension_compare(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(t_s, n_bytes):\n    return t_s > n_bytes\n",
            select={"RPR001"},
        )
        assert rule_ids(findings) == ["RPR001"]
        assert "dimensions" in findings[0].message

    def test_detects_unitless_float_parameter(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def api(timeout: float) -> float:\n    return timeout\n",
            select={"RPR001"},
        )
        assert rule_ids(findings) == ["RPR001"]
        assert "timeout" in findings[0].message

    def test_allows_db_dbm_mix_and_same_unit(self, tmp_path):
        code = (
            "def rssi(tx_dbm, loss_db, margin_db):\n"
            "    return tx_dbm - loss_db + margin_db\n"
        )
        assert lint_snippet(tmp_path, code, select={"RPR001"}) == []

    def test_allows_membership_test_against_db_mapping(self, tmp_path):
        code = (
            "def f(distance_m, offsets_db):\n"
            "    return distance_m in offsets_db\n"
        )
        assert lint_snippet(tmp_path, code, select={"RPR001"}) == []

    def test_multiplication_is_exempt(self, tmp_path):
        code = "def f(rate_bps, t_s):\n    return rate_bps * t_s\n"
        assert lint_snippet(tmp_path, code, select={"RPR001"}) == []

    def test_suffix_helpers(self):
        assert unit_suffix("t_ms") == "ms"
        assert unit_suffix("s") is None
        assert unit_suffix("q_max") is None
        assert has_unit_suffix("energy_uj_per_bit")
        assert not has_unit_suffix("timeout")

    def test_private_functions_not_checked_for_params(self, tmp_path):
        code = "def _internal(timeout: float):\n    return timeout\n"
        assert lint_snippet(tmp_path, code, select={"RPR001"}) == []


class TestRPR002Determinism:
    def test_detects_stdlib_random(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import random\n\ndef f():\n    return random.random()\n",
            select={"RPR002"},
        )
        assert rule_ids(findings) == ["RPR002"]

    def test_detects_numpy_global_state_via_alias(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import numpy as np\n\ndef f():\n    np.random.seed(0)\n"
            "    return np.random.rand(3)\n",
            select={"RPR002"},
        )
        assert rule_ids(findings) == ["RPR002", "RPR002"]

    def test_detects_from_import_alias(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "from random import randint as ri\n\ndef f():\n    return ri(0, 9)\n",
            select={"RPR002"},
        )
        assert rule_ids(findings) == ["RPR002"]

    def test_detects_wall_clock(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\nfrom datetime import datetime\n\n"
            "def f():\n    return time.time(), datetime.now()\n",
            select={"RPR002"},
        )
        assert rule_ids(findings) == ["RPR002", "RPR002"]

    def test_allows_explicit_generators(self, tmp_path):
        code = (
            "import numpy as np\n\n"
            "def f(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    seq = np.random.SeedSequence(seed)\n"
            "    return rng, seq\n"
        )
        assert lint_snippet(tmp_path, code, select={"RPR002"}) == []

    def test_sanctioned_rng_module_exempt(self):
        findings = lint_paths([SRC_REPRO / "sim" / "rng.py"], select={"RPR002"})
        assert findings == []


class TestRPR003PaperConstants:
    def test_detects_rehardcoded_turnaround(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "T = 0.224e-3\n",
            select={"RPR003"},
        )
        assert rule_ids(findings) == ["RPR003"]
        assert "TURNAROUND_TIME_S" in findings[0].message

    def test_detects_rehardcoded_ack_timeout(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f():\n    return 8.192e-3\n",
            select={"RPR003"},
        )
        assert rule_ids(findings) == ["RPR003"]
        assert "ACK_WAIT_TIMEOUT_S" in findings[0].message

    def test_non_distinctive_values_ignored(self, tmp_path):
        # 12.0 equals GREY_ZONE_HIGH_DB but has too few significant digits
        # to attribute; 0.5 is just a number.
        code = "x = 12.0\ny = 0.5\nz = 114\n"
        assert lint_snippet(tmp_path, code, select={"RPR003"}) == []

    def test_registry_contents(self):
        registry = load_registry(SRC_REPRO)
        names = {c.name for c in registry}
        assert "TURNAROUND_TIME_S" in names
        assert "ACK_WAIT_TIMEOUT_S" in names
        assert "PER_FIT.alpha" in names  # constructor keyword constants
        assert "DEFAULT_PATH_LOSS_EXPONENT" in names

    def test_match_tolerance(self):
        registry = load_registry(SRC_REPRO)
        assert match_constant(0.000224, registry).name == "TURNAROUND_TIME_S"
        assert match_constant(0.000225, registry) is None

    def test_significant_digits(self):
        assert significant_digits(0.224e-3) == 3
        assert significant_digits(250_000) == 2
        assert significant_digits(1.380649e-23) == 7
        assert is_distinctive(8.192e-3)
        assert not is_distinctive(12.0)


class TestRPR004ExceptionDiscipline:
    def test_detects_bare_value_error(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(x):\n    if x < 0:\n        raise ValueError('bad')\n",
            select={"RPR004"},
        )
        assert rule_ids(findings) == ["RPR004"]
        assert "ValueError" in findings[0].message

    @pytest.mark.parametrize("exc", ["TypeError", "RuntimeError", "KeyError"])
    def test_detects_other_builtins(self, tmp_path, exc):
        findings = lint_snippet(
            tmp_path,
            f"def f():\n    raise {exc}('bad')\n",
            select={"RPR004"},
        )
        assert rule_ids(findings) == ["RPR004"]

    def test_allows_repro_errors_and_reraise(self, tmp_path):
        code = (
            "from repro.errors import ChannelError, errors\n"
            "def f():\n"
            "    try:\n"
            "        raise ChannelError('x')\n"
            "    except ChannelError:\n"
            "        raise\n"
            "def g():\n    raise errors.SimulationError('y')\n"
            "def h():\n    raise NotImplementedError\n"
        )
        assert lint_snippet(tmp_path, code, select={"RPR004"}) == []

    def test_unresolvable_raise_ignored(self, tmp_path):
        code = "def f(exc):\n    raise exc\n"
        assert lint_snippet(tmp_path, code, select={"RPR004"}) == []


class TestRPR005PublicApi:
    def test_detects_missing_dunder_all(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            '"""Doc."""\n\ndef api():\n    """Doc."""\n',
            select={"RPR005"},
        )
        assert any("does not define __all__" in f.message for f in findings)

    def test_detects_phantom_export_and_unlisted_public(self, tmp_path):
        code = (
            '"""Doc."""\n\n'
            '__all__ = ["ghost"]\n\n'
            "def api():\n"
            '    """Doc."""\n'
        )
        findings = lint_snippet(tmp_path, code, select={"RPR005"})
        messages = " | ".join(f.message for f in findings)
        assert "ghost" in messages
        assert "missing from __all__" in messages

    def test_detects_missing_docstrings(self, tmp_path):
        code = '__all__ = ["api"]\n\ndef api():\n    pass\n'
        findings = lint_snippet(tmp_path, code, select={"RPR005"})
        messages = " | ".join(f.message for f in findings)
        assert "module is missing a docstring" in messages
        assert "'api' is missing a docstring" in messages

    def test_clean_module_passes(self, tmp_path):
        code = (
            '"""Doc."""\n\n'
            '__all__ = ["api", "LIMIT"]\n\n'
            "LIMIT = 3\n\n"
            "def api():\n"
            '    """Doc."""\n'
        )
        assert lint_snippet(tmp_path, code, select={"RPR005"}) == []


class TestSuppressions:
    def test_line_suppression(self, tmp_path):
        code = "def f():\n    raise ValueError('x')  # reprolint: disable=RPR004\n"
        assert lint_snippet(tmp_path, code, select={"RPR004"}) == []

    def test_line_suppression_wrong_rule_still_reports(self, tmp_path):
        code = "def f():\n    raise ValueError('x')  # reprolint: disable=RPR001\n"
        assert rule_ids(lint_snippet(tmp_path, code, select={"RPR004"})) == [
            "RPR004"
        ]

    def test_bare_disable_suppresses_all_on_line(self, tmp_path):
        code = "def f():\n    raise TypeError('x')  # reprolint: disable\n"
        assert lint_snippet(tmp_path, code, select={"RPR004"}) == []

    def test_file_wide_suppression(self, tmp_path):
        code = (
            "# reprolint: disable-file=RPR005\n"
            "def f():\n    pass\n"
        )
        assert lint_snippet(tmp_path, code, select={"RPR005"}) == []

    def test_multiple_codes_on_one_line(self, tmp_path):
        code = (
            "def f(t_ms, d_s):\n"
            "    raise ValueError(t_ms + d_s)"
            "  # reprolint: disable=RPR001,RPR004\n"
        )
        assert lint_snippet(tmp_path, code, select={"RPR001", "RPR004"}) == []

    def test_unknown_rule_id_suppresses_nothing(self, tmp_path):
        code = (
            "def f():\n"
            "    raise ValueError('x')  # reprolint: disable=RPR404\n"
        )
        assert rule_ids(lint_snippet(tmp_path, code, select={"RPR004"})) == [
            "RPR004"
        ]

    @pytest.mark.parametrize(
        "comment",
        [
            "# reprolint: enable=RPR004",  # unknown directive kind
            "# reprolint disable=RPR004",  # missing colon
            "# lint: disable=RPR004",  # wrong tool name
        ],
    )
    def test_malformed_directive_is_ignored(self, tmp_path, comment):
        code = f"def f():\n    raise ValueError('x')  {comment}\n"
        assert rule_ids(lint_snippet(tmp_path, code, select={"RPR004"})) == [
            "RPR004"
        ]

    def test_trailing_equals_acts_as_bare_disable(self, tmp_path):
        code = "def f():\n    raise ValueError('x')  # reprolint: disable=\n"
        assert lint_snippet(tmp_path, code, select={"RPR004"}) == []


class TestIterPythonFiles:
    def test_duplicate_inputs_deduplicated(self, tmp_path):
        path = tmp_path / "a.py"
        path.write_text("x = 1\n")
        files = list(iter_python_files([path, path, tmp_path]))
        assert files == [path]

    def test_symlink_to_same_file_deduplicated(self, tmp_path):
        real = tmp_path / "real.py"
        real.write_text("x = 1\n")
        link = tmp_path / "alias.py"
        link.symlink_to(real)
        files = list(iter_python_files([tmp_path]))
        assert len(files) == 1

    def test_symlinked_directory_not_double_counted(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "mod.py").write_text("x = 1\n")
        mirror = tmp_path / "mirror"
        mirror.symlink_to(package, target_is_directory=True)
        files = list(iter_python_files([package, mirror]))
        assert len(files) == 1


class TestReporters:
    def _findings(self, tmp_path):
        return lint_snippet(
            tmp_path, "def f():\n    raise ValueError('x')\n", select={"RPR004"}
        )

    def test_text_report(self, tmp_path):
        findings = self._findings(tmp_path)
        text = render_text(findings)
        assert "RPR004 error" in text
        assert "found 1 problem(s)" in text
        assert render_text([]) == "no problems found"

    def test_json_report_schema(self, tmp_path):
        findings = self._findings(tmp_path)
        document = json.loads(render_json(findings))
        assert document["version"] == 1
        assert document["count"] == 1
        assert document["summary"] == {"warning": 0, "error": 1}
        row = document["findings"][0]
        assert set(row) == {
            "path", "line", "col", "rule", "severity", "message", "suggestion"
        }
        assert row["rule"] == "RPR004"
        assert row["severity"] == "error"
        assert row["line"] == 2

    def test_per_rule_counts_sorted_by_rule_id(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f():\n    raise ValueError('a')\n"
            "def g(t_ms, d_s):\n    raise TypeError(t_ms + d_s)\n",
            select={"RPR001", "RPR004"},
        )
        assert per_rule_counts(findings) == {"RPR001": 1, "RPR004": 2}
        assert per_rule_counts([]) == {}

    def test_text_statistics_block(self, tmp_path):
        findings = self._findings(tmp_path)
        text = render_text(findings, statistics=True)
        assert "per-rule statistics:" in text
        assert "  RPR004  1" in text
        empty = render_text([], statistics=True)
        assert "per-rule statistics:" in empty
        assert "(no findings)" in empty
        assert "per-rule statistics:" not in render_text(findings)

    def test_json_statistics_key(self, tmp_path):
        findings = self._findings(tmp_path)
        document = json.loads(render_json(findings, statistics=True))
        assert document["statistics"] == {"RPR004": 1}
        assert "statistics" not in json.loads(render_json(findings))


class TestBaseline:
    def test_round_trip_filters_grandfathered(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f():\n    raise ValueError('x')\n", select={"RPR004"}
        )
        baseline_path = tmp_path / "baseline.json"
        save_baseline(findings, baseline_path)
        baseline = load_baseline(baseline_path)
        new, grandfathered = filter_findings(findings, baseline)
        assert new == []
        assert len(grandfathered) == 1

    def test_second_occurrence_not_grandfathered(self, tmp_path):
        one = lint_snippet(
            tmp_path, "def f():\n    raise ValueError('x')\n", select={"RPR004"}
        )
        baseline_path = tmp_path / "baseline.json"
        save_baseline(one, baseline_path)
        two = lint_snippet(
            tmp_path,
            "def f():\n    raise ValueError('x')\n"
            "def g():\n    raise ValueError('x')\n",
            select={"RPR004"},
        )
        new, grandfathered = filter_findings(two, load_baseline(baseline_path))
        assert len(grandfathered) == 1
        assert len(new) == 1

    def test_malformed_baseline_raises_lint_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(LintError):
            load_baseline(bad)


class TestEngine:
    def test_syntax_error_becomes_rpr000(self, tmp_path):
        findings = lint_snippet(tmp_path, "def f(:\n")
        assert rule_ids(findings) == ["RPR000"]
        assert findings[0].severity is Severity.ERROR

    def test_missing_path_raises(self):
        with pytest.raises(LintError):
            lint_paths([Path("/no/such/dir-xyz")])

    def test_findings_sorted_by_location(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f():\n    raise ValueError('a')\n"
            "def g():\n    raise TypeError('b')\n",
            select={"RPR004"},
        )
        assert [f.line for f in findings] == [2, 4]

    def test_finding_value_semantics(self):
        finding = Finding("a.py", 1, 0, "RPR004", Severity.ERROR, "m")
        assert finding.key() == ("a.py", "RPR004", "m")
        assert "a.py:1:0: RPR004 error: m" == finding.format()


class TestCli:
    def test_lint_clean_file_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text('"""Doc."""\n\n__all__ = []\n')
        assert cli_main(["lint", str(path)]) == 0
        assert "no problems found" in capsys.readouterr().out

    def test_lint_bad_file_exit_one_and_json(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f():\n    raise ValueError('x')\n")
        code = cli_main(
            ["lint", "--format", "json", "--select", "RPR004", str(path)]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 1

    def test_write_and_use_baseline(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f():\n    raise ValueError('x')\n")
        baseline = tmp_path / "base.json"
        assert cli_main(
            ["lint", "--select", "RPR004", "--baseline", str(baseline),
             "--write-baseline", str(path)]
        ) == 0
        capsys.readouterr()
        assert cli_main(
            ["lint", "--select", "RPR004", "--baseline", str(baseline),
             str(path)]
        ) == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
            "RPR101", "RPR102", "RPR103", "RPR104",
            "RPR201", "RPR202", "RPR203", "RPR204", "RPR205",
        ):
            assert rule_id in out

    def test_explain_prints_rationale_and_examples(self, capsys):
        assert cli_main(["lint", "--explain", "RPR202"]) == 0
        out = capsys.readouterr().out
        assert "RPR202" in out
        assert "why it matters:" in out
        assert "bad:" in out
        assert "good:" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert cli_main(["lint", "--explain", "rpr201"]) == 0
        assert "RPR201" in capsys.readouterr().out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert cli_main(["lint", "--explain", "RPR999"]) == 2
        err = capsys.readouterr().err
        assert "RPR999" in err
        assert "RPR201" in err  # known ids are listed

    def test_update_baseline_reports_delta(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f():\n    raise ValueError('x')\n")
        baseline = tmp_path / "base.json"
        assert cli_main(
            ["lint", "--select", "RPR004", "--baseline", str(baseline),
             "--update-baseline", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "+1 added, -0 removed" in out
        # Fixing the violation and regenerating empties the baseline again.
        path.write_text("def f():\n    return 1\n")
        assert cli_main(
            ["lint", "--select", "RPR004", "--baseline", str(baseline),
             "--update-baseline", str(path)]
        ) == 0
        assert "+0 added, -1 removed" in capsys.readouterr().out
        assert load_baseline(baseline) == {}

    def test_statistics_flag_text_and_json(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f():\n    raise ValueError('x')\n")
        assert cli_main(
            ["lint", "--select", "RPR004", "--statistics", str(path)]
        ) == 1
        out = capsys.readouterr().out
        assert "per-rule statistics:" in out
        assert "RPR004  1" in out
        assert cli_main(
            ["lint", "--format", "json", "--select", "RPR004",
             "--statistics", str(path)]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["statistics"] == {"RPR004": 1}


class TestSelfCheck:
    def test_src_repro_is_lint_clean_with_empty_baseline(self):
        """The acceptance gate: the package passes its own linter."""
        findings = lint_paths([SRC_REPRO])
        assert findings == [], render_text(findings)

    def test_committed_baseline_is_empty(self):
        baseline_path = SRC_REPRO.parents[1] / "reprolint-baseline.json"
        if baseline_path.is_file():
            assert load_baseline(baseline_path) == {}
