"""Columnar kernel tests (repro.core.optimization.kernels).

The contract under test: the vectorized kernels agree with the scalar
``ModelEvaluator`` reference within 1e-9 relative tolerance on every
metric, over the full default grid and at the edges of the knob ranges —
and every consumer wired onto them (grid shim, epsilon-constraint solver,
sweep tables in ``repro.serve``) returns the same answers it returned
when it looped over scalar rows.
"""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.core.optimization import (
    ConfigEvaluation,
    Constraint,
    GridEvaluation,
    ModelEvaluator,
    TuningGrid,
    best_by,
    default_bounds_for,
    evaluate_columns,
    evaluate_grid,
    evaluate_grid_columns,
    evaluate_grid_scalar,
    joint_tuning,
    pareto_front,
    snr_map_from_reference,
    solve_epsilon_constraint,
    sweep_epsilon,
)
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    OptimizationError,
)

RTOL = 1e-9

#: Metric fields shared by ConfigEvaluation rows and GridEvaluation columns.
METRIC_FIELDS = (
    "snr_db",
    "max_goodput_kbps",
    "u_eng_uj_per_bit",
    "delay_ms",
    "rho",
    "plr_radio",
    "plr_queue",
    "plr_total",
)

OBJECTIVES = ("energy", "goodput", "delay", "loss", "loss_radio", "rho")

#: Edge-of-range knobs: extreme payloads, single/large queue, min/max
#: attempt budgets, across the grey zone into the high-SNR plateau.
EDGE_GRID = TuningGrid(
    payload_values_bytes=(2, 114),
    n_max_tries_values=(1, 8),
    q_max_values=(1, 30),
    d_retry_values_ms=(0.0, 30.0),
    t_pkt_values_ms=(10.0, 30.0),
)


@pytest.fixture(scope="module", params=[2.0, 6.0, 18.0])
def evaluator(request):
    return ModelEvaluator(snr_by_level=snr_map_from_reference(request.param))


def assert_evaluations_close(fast, slow):
    """Same winning config; metrics within the kernel tolerance.

    Dataclass ``==`` would demand bit-exact floats, but the kernel is only
    pinned to the scalar path within 1e-9 (measured ~1e-15).
    """
    assert fast.config == slow.config
    for name in METRIC_FIELDS:
        a, b = getattr(fast, name), getattr(slow, name)
        assert a == pytest.approx(b, rel=RTOL) or (
            np.isinf(a) and np.isinf(b)
        ), name


def assert_rows_match_columns(rows, grid_eval):
    assert len(rows) == len(grid_eval)
    for name in METRIC_FIELDS:
        kernel = getattr(grid_eval, name)
        scalar = np.asarray([getattr(row, name) for row in rows], dtype=float)
        assert np.array_equal(np.isfinite(kernel), np.isfinite(scalar)), name
        finite = np.isfinite(scalar)
        assert np.allclose(
            kernel[finite], scalar[finite], rtol=RTOL, atol=0.0
        ), name


class TestKernelEquivalence:
    def test_full_default_grid(self, evaluator):
        rows = evaluate_grid_scalar(evaluator, TuningGrid())
        grid_eval = evaluate_grid_columns(evaluator, TuningGrid())
        assert_rows_match_columns(rows, grid_eval)

    def test_edge_knob_values(self, evaluator):
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID)
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        assert_rows_match_columns(rows, grid_eval)

    def test_every_objective_column(self, evaluator):
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID)
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        for objective in OBJECTIVES:
            kernel = grid_eval.objective_column(objective)
            scalar = np.asarray(
                [row.objective(objective) for row in rows], dtype=float
            )
            finite = np.isfinite(scalar)
            assert np.array_equal(finite, np.isfinite(kernel)), objective
            assert np.allclose(
                kernel[finite], scalar[finite], rtol=RTOL, atol=0.0
            ), objective

    def test_rows_materialize_in_grid_order(self, evaluator):
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        configs = list(EDGE_GRID.configs(10.0))
        assert [row.config for row in grid_eval.rows()] == configs
        assert grid_eval.config_at(0) == configs[0]
        assert grid_eval.config_at(len(configs) - 1) == configs[-1]

    def test_shim_equals_scalar_reference(self, evaluator):
        shim = evaluate_grid(evaluator, EDGE_GRID)
        reference = evaluate_grid_scalar(evaluator, EDGE_GRID)
        assert [e.config for e in shim] == [e.config for e in reference]
        for fast, slow in zip(shim, reference):
            for name in METRIC_FIELDS:
                a, b = getattr(fast, name), getattr(slow, name)
                assert a == pytest.approx(b, rel=RTOL) or (
                    np.isinf(a) and np.isinf(b)
                )


class TestGridEvaluationContainer:
    def test_columns_are_read_only(self, evaluator):
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        with pytest.raises((ValueError, RuntimeError)):
            grid_eval.rho[0] = 0.0

    def test_unknown_objective_rejected(self, evaluator):
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        with pytest.raises(OptimizationError):
            grid_eval.objective_column("throughput")

    def test_objective_matrix_shape(self, evaluator):
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        matrix = grid_eval.objective_matrix(("energy", "delay"))
        assert matrix.shape == (len(grid_eval), 2)
        with pytest.raises(OptimizationError):
            grid_eval.objective_matrix(())

    def test_empty_grid_rejected_up_front(self, evaluator):
        with pytest.raises(OptimizationError):
            evaluate_grid_columns(evaluator, TuningGrid(ptx_levels=()))
        with pytest.raises(OptimizationError):
            evaluate_grid(evaluator, TuningGrid(payload_values_bytes=()))

    def test_invalid_knobs_rejected(self, evaluator):
        with pytest.raises(ConfigurationError):
            evaluate_columns(
                evaluator,
                ptx_level=31,
                payload_bytes=500,
                n_max_tries=1,
                d_retry_ms=0.0,
                q_max=1,
                t_pkt_ms=30.0,
            )

    def test_unknown_power_level_rejected(self, evaluator):
        with pytest.raises(OptimizationError):
            evaluate_columns(
                evaluator,
                ptx_level=2,
                payload_bytes=50,
                n_max_tries=1,
                d_retry_ms=0.0,
                q_max=1,
                t_pkt_ms=30.0,
            )

    def test_broadcasting_scalars(self, evaluator):
        grid_eval = evaluate_columns(
            evaluator,
            ptx_level=31,
            payload_bytes=[20, 65, 110],
            n_max_tries=3,
            d_retry_ms=0.0,
            q_max=1,
            t_pkt_ms=30.0,
        )
        assert len(grid_eval) == 3
        config = grid_eval.config_at(1)
        assert config.payload_bytes == 65
        row = grid_eval.row(1)
        scalar = evaluator.evaluate(config)
        assert row.delay_ms == pytest.approx(scalar.delay_ms, rel=RTOL)


class TestSolverEquivalence:
    def test_best_by_accepts_columns_and_rows(self, evaluator):
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID)
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        for objective in OBJECTIVES:
            assert (
                best_by(grid_eval, objective).config
                == best_by(rows, objective).config
            )

    def test_best_by_tie_breaks_to_lowest_index(self):
        config = StackConfig()
        tied = [
            ConfigEvaluation(
                config=config.with_updates(payload_bytes=payload),
                snr_db=6.0,
                max_goodput_kbps=10.0,
                u_eng_uj_per_bit=1.0,
                delay_ms=20.0,
                rho=0.5,
                plr_radio=0.1,
                plr_queue=0.0,
                plr_total=0.1,
            )
            for payload in (10, 20, 30)
        ]
        assert best_by(tied, "energy") is tied[0]

    def test_epsilon_constraint_matches_row_solver(self, evaluator):
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID)
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        constraints = (Constraint(objective="rho", upper_bound=1.0),)
        for objective in OBJECTIVES:
            assert_evaluations_close(
                solve_epsilon_constraint(grid_eval, objective, constraints),
                solve_epsilon_constraint(rows, objective, constraints),
            )

    def test_infeasible_message_identical(self, evaluator):
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID)
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        constraints = (Constraint(objective="loss", upper_bound=-1.0),)
        with pytest.raises(InfeasibleError) as from_columns:
            solve_epsilon_constraint(grid_eval, "energy", constraints)
        with pytest.raises(InfeasibleError) as from_rows:
            solve_epsilon_constraint(rows, "energy", constraints)
        assert str(from_columns.value) == str(from_rows.value)

    def test_sweep_and_bounds_accept_columns(self, evaluator):
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID)
        grid_eval = evaluate_grid_columns(evaluator, EDGE_GRID)
        bounds = default_bounds_for(grid_eval, "energy", n_points=8)
        assert np.allclose(
            bounds, default_bounds_for(rows, "energy", n_points=8), rtol=RTOL
        )
        front_cols = sweep_epsilon(grid_eval, "goodput", "energy", bounds)
        front_rows = sweep_epsilon(rows, "goodput", "energy", bounds)
        assert [e.config for e in front_cols] == [
            e.config for e in front_rows
        ]

    def test_joint_tuning_still_answers(self, evaluator):
        best = joint_tuning(evaluator, StackConfig(), grid=EDGE_GRID)
        assert isinstance(best, ConfigEvaluation)
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID)
        try:
            reference = solve_epsilon_constraint(
                rows,
                "goodput",
                (Constraint(objective="energy", upper_bound=0.25),),
            )
        except InfeasibleError:
            # joint_tuning relaxes to best achievable energy + 5%.
            best_energy = min(e.u_eng_uj_per_bit for e in rows)
            reference = solve_epsilon_constraint(
                rows,
                "goodput",
                (
                    Constraint(
                        objective="energy", upper_bound=best_energy * 1.05
                    ),
                ),
            )
        assert best.config == reference.config

    def test_pareto_front_unchanged(self, evaluator):
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID)

        def objectives(e):
            return (e.u_eng_uj_per_bit, -e.max_goodput_kbps)

        front = pareto_front(rows, objectives)
        # reference O(n^2) Python filter
        vectors = [objectives(e) for e in rows]
        expected = [
            item
            for i, item in enumerate(rows)
            if not any(
                all(x <= y for x, y in zip(vectors[j], vectors[i]))
                and any(x < y for x, y in zip(vectors[j], vectors[i]))
                for j in range(len(rows))
                if j != i
            )
        ]
        assert [e.config for e in front] == [e.config for e in expected]


class TestServeAnswersUnchanged:
    """The kernel swap must not change what the oracle recommends."""

    def test_sweep_table_winners_match_row_solver(self, hallway_env):
        from repro.serve import LinkSpec, SweepTable

        link = LinkSpec(distance_m=20.0)
        evaluator = ModelEvaluator(snr_by_level=link.snr_map(hallway_env))
        table = SweepTable.build(evaluator, EDGE_GRID, 20.0)
        rows = evaluate_grid_scalar(evaluator, EDGE_GRID, 20.0)
        for objective in OBJECTIVES:
            assert_evaluations_close(
                table.solve(objective),
                solve_epsilon_constraint(rows, objective),
            )
        constraints = (Constraint(objective="rho", upper_bound=1.0),)
        assert_evaluations_close(
            table.solve("goodput", constraints),
            solve_epsilon_constraint(rows, "goodput", constraints),
        )

    def test_sweep_table_lazy_rows_and_stats(self, hallway_env):
        from repro.serve import LinkSpec, SweepTable

        link = LinkSpec(distance_m=20.0)
        evaluator = ModelEvaluator(snr_by_level=link.snr_map(hallway_env))
        table = SweepTable.build(evaluator, EDGE_GRID, 20.0)
        assert isinstance(table.grid_eval, GridEvaluation)
        assert "evaluations" not in vars(table)  # not materialized yet
        assert len(table.evaluations) == len(table)
        assert "evaluations" in vars(table)  # cached after first access
        stats = table.stats()
        assert stats["configurations"] == len(EDGE_GRID)
        assert stats["build_ms"] >= 0.0

    def test_grid_eval_histogram_in_oracle_and_metrics(self):
        from repro.serve import (
            LinkSpec,
            Oracle,
            OracleService,
            RecommendRequest,
        )

        oracle = Oracle(grid=EDGE_GRID, lru_capacity=4)
        service = OracleService(oracle, workers=1)
        try:
            assert oracle.grid_eval_ms.count == 0
            oracle.recommend(
                RecommendRequest(link=LinkSpec(distance_m=10.0))
            )
            assert oracle.grid_eval_ms.count == 1
            info = oracle.cache_info()
            assert info["grid_eval_ms"]["count"] == 1
            assert info["grid_eval_ms"]["sum_ms"] >= 0.0
            snapshot = service.metrics.as_dict()
            assert snapshot["latency"]["grid_eval_ms"]["count"] == 1
        finally:
            service.close()
