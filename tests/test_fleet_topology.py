"""Fleet topology, state-column, and drift tests (repro.fleet)."""

import numpy as np
import pytest

from repro.channel.environment import HALLWAY_2012
from repro.errors import FleetError
from repro.fleet import (
    FleetDrift,
    FleetState,
    FleetTopology,
    build_topology,
    grid_topology,
    link_base_snr_db,
    random_geometric_topology,
)
from repro.fleet.topology import MIN_LINK_DISTANCE_M
from repro.serve import LinkSpec


class TestGridTopology:
    def test_link_count_honored(self):
        topology = grid_topology(64, seed=7)
        assert len(topology) == 64
        assert len(topology.links) == 64
        assert len(topology.environments) == 64
        assert len(topology.edges) == 64

    def test_same_seed_same_placement(self):
        a = grid_topology(50, seed=3)
        b = grid_topology(50, seed=3)
        assert np.array_equal(a.positions_m, b.positions_m)
        assert a.links == b.links

    def test_different_seed_different_placement(self):
        a = grid_topology(50, seed=3)
        b = grid_topology(50, seed=4)
        assert not np.array_equal(a.positions_m, b.positions_m)

    def test_positions_are_read_only(self):
        topology = grid_topology(10, seed=0)
        with pytest.raises((ValueError, RuntimeError)):
            topology.positions_m[0, 0] = 99.0

    def test_distances_respect_floor(self):
        topology = grid_topology(200, seed=1, spacing_m=1.0, jitter_m=0.9)
        for link in topology.links:
            assert link.distance_m >= MIN_LINK_DISTANCE_M

    def test_snr_link_mode(self):
        topology = grid_topology(8, seed=0, link_mode="snr")
        for link in topology.links:
            assert link.snr_db is not None
            assert link.distance_m is None

    def test_stats_shape(self):
        stats = grid_topology(12, seed=0).stats()
        assert stats["kind"] == "grid"
        assert stats["n_links"] == 12
        assert stats["n_nodes"] >= 2


class TestRandomTopology:
    def test_link_count_and_determinism(self):
        a = random_geometric_topology(40, seed=9)
        b = random_geometric_topology(40, seed=9)
        assert len(a) == 40
        assert np.array_equal(a.positions_m, b.positions_m)
        assert a.links == b.links

    def test_edges_respect_max_distance(self):
        topology = random_geometric_topology(30, seed=2, max_distance_m=25.0)
        positions = topology.positions_m
        for i, j in topology.edges:
            d = float(np.hypot(*(positions[i] - positions[j])))
            assert d <= 25.0

    def test_impossible_placement_rejected(self):
        # A micrometre radio range never links anything; the node-count
        # growth gives up at its cap instead of allocating forever.
        with pytest.raises(FleetError, match="could not place"):
            random_geometric_topology(10, seed=0, max_distance_m=1e-6)


class TestBuildTopology:
    def test_dispatch(self):
        assert build_topology("grid", 10).kind == "grid"
        assert build_topology("random", 10).kind == "random"

    def test_unknown_kind_rejected(self):
        with pytest.raises(FleetError, match="unknown topology kind"):
            build_topology("torus", 10)

    @pytest.mark.parametrize("n_links", [0, -1])
    def test_bad_link_count_rejected(self, n_links):
        with pytest.raises(FleetError):
            build_topology("grid", n_links)


class TestFleetState:
    def test_from_topology_columns(self):
        topology = grid_topology(20, seed=0)
        state = FleetState.from_topology(topology)
        assert len(state) == 20
        assert state.config_index.dtype == np.int64
        assert np.all(state.config_index == -1)
        assert np.all(np.isnan(state.objective_value))
        assert np.array_equal(state.snr_db, state.base_snr_db)

    def test_base_snr_matches_link_helper(self):
        topology = grid_topology(10, seed=1)
        state = FleetState.from_topology(topology)
        expected = [
            link_base_snr_db(link, env)
            for link, env in zip(topology.links, topology.environments)
        ]
        assert np.array_equal(state.base_snr_db, np.asarray(expected))

    def test_snr_link_base_is_reference_snr(self):
        # A reference-SNR link at the reference level IS its own base SNR.
        assert link_base_snr_db(
            LinkSpec(snr_db=4.0, reference_level=31), HALLWAY_2012
        ) == pytest.approx(4.0)

    def test_copy_is_independent(self):
        state = FleetState.from_topology(grid_topology(5, seed=0))
        clone = state.copy()
        clone.snr_db[0] += 1.0
        clone.config_index[0] = 7
        assert state.snr_db[0] != clone.snr_db[0]
        assert state.config_index[0] == -1

    def test_misaligned_columns_rejected(self):
        with pytest.raises(FleetError):
            FleetState(
                base_snr_db=np.zeros(3),
                snr_db=np.zeros(2),
                noise_dbm=np.full(3, -90.0),
                config_index=np.zeros(3, dtype=np.int64),
                objective_value=np.zeros(3),
            )


class TestFleetDrift:
    def test_same_seed_same_trajectory(self):
        topology = grid_topology(16, seed=5)
        trajectories = []
        for _ in range(2):
            state = FleetState.from_topology(topology)
            drift = FleetDrift(topology, seed=11)
            trajectories.append(
                np.stack([drift.step(state).copy() for _ in range(4)])
            )
        assert np.array_equal(trajectories[0], trajectories[1])

    def test_different_seed_different_trajectory(self):
        topology = grid_topology(16, seed=5)
        state_a = FleetState.from_topology(topology)
        state_b = FleetState.from_topology(topology)
        snr_a = FleetDrift(topology, seed=1).step(state_a)
        snr_b = FleetDrift(topology, seed=2).step(state_b)
        assert not np.array_equal(snr_a, snr_b)

    def test_links_drift_independently(self):
        topology = grid_topology(8, seed=5)
        state = FleetState.from_topology(topology)
        drift = FleetDrift(topology, seed=3)
        delta = drift.step(state) - state.base_snr_db
        assert len(np.unique(delta)) > 1

    def test_clock_advances_by_interval(self):
        topology = grid_topology(4, seed=0)
        drift = FleetDrift(topology, seed=0, step_interval_s=2.5)
        state = FleetState.from_topology(topology)
        drift.step(state)
        drift.step(state)
        assert drift.now_s == pytest.approx(5.0)

    def test_bad_interval_rejected(self):
        topology = grid_topology(4, seed=0)
        with pytest.raises(FleetError):
            FleetDrift(topology, seed=0, step_interval_s=0.0)

    def test_wrong_state_length_rejected(self):
        drift = FleetDrift(grid_topology(4, seed=0), seed=0)
        other = FleetState.from_topology(grid_topology(6, seed=0))
        with pytest.raises(FleetError):
            drift.step(other)
