"""Golden regression pins: canonical runs with fixed seeds.

These freeze the *exact* numeric outputs of a handful of canonical
computations so accidental behaviour changes (a reordered RNG draw, a
constant tweak, an off-by-one in the event pipeline) surface immediately.
Loose tolerances are deliberate NOT used here — a golden test that drifts
should fail, and whoever changes the behaviour updates the pin consciously.

If you intentionally change the simulator's draw order, timing constants or
calibration, re-record with:

    python -m tests.test_regression_golden
"""

import pytest

from repro.analysis import compute_metrics
from repro.channel import HALLWAY_2012, QUIET_HALLWAY
from repro.config import StackConfig
from repro.core import ServiceTimeModel
from repro.sim import FastLink, SimulationOptions, simulate_link

#: (description, factory) -> pinned values; regenerate via __main__ below.
GOLDEN = {
    "des_quiet_grey_zone": {
        "per": 0.23831775700934577,
        "plr_radio": 0.022,
        "goodput_kbps": 8.621364965306704,
        "mean_tries": 1.284,
        "tx_energy_j": 0.05962895999999897,
    },
    "des_hallway_queueing": {
        "per": 0.017681728880157177,
        "plr_queue": 0.0,
        "mean_delay_ms": 16.883907999999092,
    },
    "fastlink_reference": {
        "per": 0.3647527381347494,
        "plr_radio": 0.04300000000000004,
        "mean_service_time_s": 0.02738632954288834,
    },
    "service_model_table2": {
        "t10_ms": 35.433558866680144,
        "t20_ms": 20.916805345102507,
        "t30_ms": 18.517202127398917,
    },
}


def compute_des_quiet_grey_zone():
    config = StackConfig(
        distance_m=35.0, ptx_level=15, n_max_tries=3, q_max=1,
        t_pkt_ms=100.0, payload_bytes=110,
    )
    m = compute_metrics(
        simulate_link(
            config,
            options=SimulationOptions(
                n_packets=500, seed=12345, environment=QUIET_HALLWAY
            ),
        )
    )
    return {
        "per": m.per,
        "plr_radio": m.plr_radio,
        "goodput_kbps": m.goodput_kbps,
        "mean_tries": m.mean_tries,
        "tx_energy_j": m.tx_energy_j,
    }


def compute_des_hallway_queueing():
    config = StackConfig(
        distance_m=20.0, ptx_level=23, n_max_tries=3, q_max=30,
        t_pkt_ms=30.0, payload_bytes=110,
    )
    m = compute_metrics(
        simulate_link(
            config,
            options=SimulationOptions(
                n_packets=500, seed=777, environment=HALLWAY_2012
            ),
        )
    )
    return {
        "per": m.per,
        "plr_queue": m.plr_queue,
        "mean_delay_ms": m.mean_delay_s * 1e3,
    }


def compute_fastlink_reference():
    result = FastLink(seed=2024).run(
        mean_snr_db=9.0, payload_bytes=110, n_packets=2000, n_max_tries=3
    )
    return {
        "per": result.per,
        "plr_radio": result.plr_radio,
        "mean_service_time_s": result.mean_service_time_s,
    }


def compute_service_model_table2():
    model = ServiceTimeModel()
    return {
        "t10_ms": model.paper_service_time_s(110, 10.0, 30.0) * 1e3,
        "t20_ms": model.paper_service_time_s(110, 20.0, 30.0) * 1e3,
        "t30_ms": model.paper_service_time_s(110, 30.0, 30.0) * 1e3,
    }


_COMPUTERS = {
    "des_quiet_grey_zone": compute_des_quiet_grey_zone,
    "des_hallway_queueing": compute_des_hallway_queueing,
    "fastlink_reference": compute_fastlink_reference,
    "service_model_table2": compute_service_model_table2,
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden(name):
    computed = _COMPUTERS[name]()
    for key, expected in GOLDEN[name].items():
        assert computed[key] == pytest.approx(expected, rel=1e-9), (
            f"{name}.{key} drifted: {computed[key]!r} != {expected!r}; "
            f"if intentional, re-record with `python -m tests.test_regression_golden`"
        )


if __name__ == "__main__":  # pragma: no cover - recording helper
    print("GOLDEN = {")
    for name, fn in _COMPUTERS.items():
        print(f'    "{name}": {{')
        for key, value in fn().items():
            print(f'        "{key}": {value!r},')
        print("    },")
    print("}")
