"""Routing subsystem tests: table construction determinism, vectorized
path composition pinned to the scalar reference, the relay-load fixed
point, and the routed engine's end-to-end contract."""

import numpy as np
import pytest

from repro.core.optimization import Constraint, TuningGrid
from repro.errors import FleetError, RoutingError
from repro.fleet import (
    FleetEngine,
    FleetState,
    grid_topology,
    random_geometric_topology,
)
from repro.routing import (
    RoutedFleetEngine,
    RoutingTable,
    build_routes,
    compose_paths,
    compose_paths_scalar,
    iterate_relay_load,
    per_hop_loss_budget,
    routes_for_topology,
    select_sink,
)

TINY_GRID = TuningGrid(
    ptx_levels=(3, 15, 31),
    payload_values_bytes=(20, 60, 110),
    n_max_tries_values=(1, 3),
    q_max_values=(1, 30),
)

#: A 3-level chain-of-stars: sink 0, relays 1 and 2, leaves 3..6.
THREE_LEVEL_EDGES = ((0, 1), (1, 2), (1, 3), (2, 4), (2, 5), (2, 6))


def three_level_table():
    return build_routes(7, THREE_LEVEL_EDGES, sink=0)


def snr_state(snr_values):
    snr = np.asarray(snr_values, dtype=float)
    return FleetState(
        base_snr_db=snr.copy(),
        snr_db=snr.copy(),
        noise_dbm=np.full(snr.shape, -90.0),
        config_index=np.full(snr.shape, -1, dtype=np.int64),
        objective_value=np.full(snr.shape, np.nan),
    )


def random_edge_metrics(n_edges, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "energy_uj_per_bit": rng.uniform(0.05, 2.0, n_edges),
        "delay_ms": rng.uniform(1.0, 80.0, n_edges),
        "plr_total": rng.uniform(0.0, 0.4, n_edges),
        "goodput_kbps": rng.uniform(5.0, 120.0, n_edges),
    }


class TestTableConstruction:
    def test_three_level_shape(self):
        table = three_level_table()
        assert table.sink == 0
        assert table.max_hops == 3
        assert table.n_paths == 4
        assert list(table.hop_count) == [0, 1, 2, 2, 3, 3, 3]
        assert list(table.parent[1:]) == [0, 1, 1, 2, 2, 2]
        assert list(table.relay_nodes) == [1, 2]
        assert list(table.leaf_nodes) == [3, 4, 5, 6]

    def test_columns_frozen(self):
        table = three_level_table()
        with pytest.raises(ValueError):
            table.parent[0] = 5

    def test_default_sink_is_highest_degree(self):
        assert select_sink(7, THREE_LEVEL_EDGES) == 2
        table = build_routes(7, THREE_LEVEL_EDGES)
        assert table.sink == 2

    def test_bfs_ties_break_to_lowest_parent(self):
        # Node 3 is reachable at hop 1 from both 0 and 1 (ring); BFS must
        # pick the lowest-indexed parent deterministically.
        edges = ((0, 1), (0, 3), (1, 3), (1, 2), (2, 3))
        table = build_routes(4, edges, sink=0)
        assert table.parent[3] == 0

    def test_mesh_prefers_cheap_multi_hop(self):
        # Direct edge 0-2 costs 10; the 0-1-2 detour costs 2. Mesh takes
        # the detour, tree (min-hop) takes the direct edge.
        edges = ((0, 1), (1, 2), (0, 2))
        costs = [1.0, 1.0, 10.0]
        mesh = build_routes(3, edges, sink=0, strategy="mesh", edge_cost=costs)
        tree = build_routes(3, edges, sink=0, strategy="tree")
        assert mesh.parent[2] == 1
        assert tree.parent[2] == 0

    def test_disconnected_component_raises(self):
        edges = ((0, 1), (2, 3))
        with pytest.raises(RoutingError, match="disconnected"):
            build_routes(4, edges, sink=0)

    def test_degree_zero_nodes_excluded_not_failed(self):
        table = build_routes(4, ((0, 1), (1, 2)), sink=0)
        assert table.hop_count[3] == -1
        assert table.n_in_tree == 3

    def test_self_loop_rejected(self):
        with pytest.raises(RoutingError, match="self-loop"):
            build_routes(3, ((0, 0), (0, 1)), sink=0)

    def test_bad_strategy_rejected(self):
        with pytest.raises(RoutingError, match="strategy"):
            build_routes(3, ((0, 1),), strategy="flood")

    def test_same_seed_same_tree(self):
        topo_a = grid_topology(60, seed=7)
        topo_b = grid_topology(60, seed=7)
        table_a = routes_for_topology(topo_a, strategy="mesh")
        table_b = routes_for_topology(topo_b, strategy="mesh")
        assert np.array_equal(table_a.parent, table_b.parent)
        assert np.array_equal(table_a.parent_edge, table_b.parent_edge)

    def test_children_csr_consistent(self):
        table = three_level_table()
        for node in range(table.n_nodes):
            for child in table.children_of(node):
                assert table.parent[child] == node


class TestComposition:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("strategy", ["tree", "mesh"])
    def test_vectorized_matches_scalar_within_1e9(self, seed, strategy):
        topology = grid_topology(200, seed=seed)
        table = routes_for_topology(topology, strategy=strategy)
        metrics = random_edge_metrics(len(topology), seed=seed)
        fast = compose_paths(table, **metrics)
        slow = compose_paths_scalar(table, **metrics)
        for name in (
            "energy_uj_per_bit",
            "delay_ms",
            "delivery_prob",
            "goodput_kbps",
        ):
            got = getattr(fast, name)
            want = getattr(slow, name)
            assert np.array_equal(np.isnan(got), np.isnan(want))
            finite = ~np.isnan(want) & np.isfinite(want)
            assert np.abs(got[finite] - want[finite]).max() <= 1e-9

    def test_semantics_on_known_chain(self):
        # 0 <- 1 <- 2: sums, product, min are hand-checkable.
        table = build_routes(3, ((0, 1), (1, 2)), sink=0)
        paths = compose_paths(
            table,
            energy_uj_per_bit=np.array([1.0, 2.0]),
            delay_ms=np.array([10.0, 20.0]),
            plr_total=np.array([0.1, 0.2]),
            goodput_kbps=np.array([50.0, 30.0]),
        )
        assert paths.energy_uj_per_bit[2] == pytest.approx(3.0)
        assert paths.delay_ms[2] == pytest.approx(30.0)
        assert paths.delivery_prob[2] == pytest.approx(0.9 * 0.8)
        assert paths.goodput_kbps[2] == pytest.approx(30.0)
        assert paths.energy_uj_per_bit[table.sink] == 0.0
        assert paths.delivery_prob[table.sink] == 1.0

    def test_leaf_feasibility_thresholds(self):
        table = build_routes(3, ((0, 1), (1, 2)), sink=0)
        paths = compose_paths(
            table,
            energy_uj_per_bit=np.zeros(2),
            delay_ms=np.zeros(2),
            plr_total=np.array([0.1, 0.2]),
            goodput_kbps=np.ones(2),
        )
        # Path loss = 1 - 0.9*0.8 = 0.28.
        assert paths.leaf_feasible(0.30).tolist() == [True]
        assert paths.leaf_feasible(0.20).tolist() == [False]
        assert paths.leaf_feasible(None).tolist() == [True]

    def test_wrong_column_length_raises(self):
        table = three_level_table()
        with pytest.raises(RoutingError, match="per-edge"):
            compose_paths(
                table,
                energy_uj_per_bit=np.zeros(3),
                delay_ms=np.zeros(3),
                plr_total=np.zeros(3),
                goodput_kbps=np.zeros(3),
            )


class TestRelayLoad:
    def uplink_columns(self, table, t_pkt_ms=100.0, plr_radio=0.05):
        n = table.n_nodes
        return {
            "service_delay_s": np.full(n, 0.004),
            "service_scv": 1.0,
            "q_max": np.full(n, 30.0),
            "t_pkt_ms": np.full(n, t_pkt_ms),
            "plr_radio": np.full(n, plr_radio),
            "link_up": np.ones(n, dtype=bool),
        }

    def test_converges_on_three_level_tree(self):
        table = three_level_table()
        load = iterate_relay_load(table, **self.uplink_columns(table))
        assert load.converged
        assert load.max_residual_pps <= 1e-9
        assert load.n_iterations < 64

    def test_flow_conservation_at_fixed_point(self):
        table = three_level_table()
        load = iterate_relay_load(table, **self.uplink_columns(table))
        # Each relay's arrival = own rate + delivered child traffic.
        own_pps = 1e3 / 100.0
        for relay in table.relay_nodes:
            children = table.children_of(relay)
            expected = own_pps + load.delivered_pps[children].sum()
            assert load.arrival_pps[relay] == pytest.approx(
                expected, abs=1e-6
            )

    def test_leaves_keep_their_sampling_rate(self):
        table = three_level_table()
        load = iterate_relay_load(table, **self.uplink_columns(table))
        for leaf in table.leaf_nodes:
            assert load.arrival_pps[leaf] == pytest.approx(1e3 / 100.0)
            assert load.t_pkt_eff_ms[leaf] == pytest.approx(100.0)

    def test_relays_see_more_load_than_leaves(self):
        table = three_level_table()
        load = iterate_relay_load(table, **self.uplink_columns(table))
        leaf = table.leaf_nodes[0]
        for relay in table.relay_nodes:
            assert load.arrival_pps[relay] > load.arrival_pps[leaf]
            assert load.t_pkt_eff_ms[relay] < load.t_pkt_eff_ms[leaf]
            assert (
                load.metrics["rho"][relay] > load.metrics["rho"][leaf]
            )

    def test_down_link_delivers_nothing(self):
        table = three_level_table()
        columns = self.uplink_columns(table)
        columns["link_up"] = columns["link_up"].copy()
        columns["link_up"][2] = False
        load = iterate_relay_load(table, **columns)
        assert load.delivered_pps[2] == 0.0
        # Node 1 then only aggregates its own traffic plus node 3's.
        expected = 1e3 / 100.0 + load.delivered_pps[3]
        assert load.arrival_pps[1] == pytest.approx(expected, abs=1e-6)

    def test_deterministic(self):
        table = three_level_table()
        first = iterate_relay_load(table, **self.uplink_columns(table))
        second = iterate_relay_load(table, **self.uplink_columns(table))
        assert np.array_equal(first.arrival_pps, second.arrival_pps)
        assert first.n_iterations == second.n_iterations

    def test_bad_damping_rejected(self):
        table = three_level_table()
        with pytest.raises(RoutingError, match="damping"):
            iterate_relay_load(
                table, damping=0.0, **self.uplink_columns(table)
            )

    def test_wrong_shape_rejected(self):
        table = three_level_table()
        columns = self.uplink_columns(table)
        columns["q_max"] = np.ones(3)
        with pytest.raises(RoutingError, match="q_max"):
            iterate_relay_load(table, **columns)


class TestPerHopBudget:
    def test_budget_composes_back_to_eps(self):
        eps = 0.1
        hops = 5
        budget = per_hop_loss_budget(eps, hops)
        assert 1.0 - (1.0 - budget) ** hops == pytest.approx(eps)

    def test_single_hop_budget_is_eps(self):
        assert per_hop_loss_budget(0.2, 1) == pytest.approx(0.2)

    def test_bad_eps_rejected(self):
        with pytest.raises(RoutingError):
            per_hop_loss_budget(0.0, 3)
        with pytest.raises(RoutingError):
            per_hop_loss_budget(1.0, 3)


class TestRoutedEngine:
    def routed(self, table, **kwargs):
        kwargs.setdefault("grid", TINY_GRID)
        return RoutedFleetEngine(table, **kwargs)

    def test_congestion_degrades_constrained_paths(self):
        # The same fleet solved with and without relay congestion: the
        # congested paths must lose strictly more (relays queue at the
        # aggregated arrival rate, inflating blocking loss).
        topology = grid_topology(60, seed=4)
        table = routes_for_topology(topology)
        with_congestion = self.routed(table, congestion=True)
        without = self.routed(table, congestion=False)
        with_congestion.step(snr_state(np.full(len(topology), 8.0)))
        without.step(snr_state(np.full(len(topology), 8.0)))
        congested = with_congestion.last_paths
        free = without.last_paths
        leaves = table.leaf_nodes
        assert (
            congested.loss_prob[leaves] >= free.loss_prob[leaves] - 1e-12
        ).all()
        assert congested.loss_prob[leaves].max() > free.loss_prob[
            leaves
        ].max() + 1e-6
        assert (
            congested.delay_ms[leaves].max() > free.delay_ms[leaves].max()
        )

    def test_path_eps_folds_into_link_constraints(self):
        table = three_level_table()
        engine = self.routed(table, path_loss_eps=0.1)
        budget = per_hop_loss_budget(0.1, table.max_hops)
        assert engine.per_hop_loss_bound == pytest.approx(budget)
        assert any(
            constraint.objective == "loss"
            and constraint.upper_bound == pytest.approx(budget)
            for constraint in engine.engine.constraints
        )

    def test_user_constraints_preserved(self):
        table = three_level_table()
        engine = self.routed(
            table,
            path_loss_eps=0.1,
            constraints=(Constraint("delay", 40.0),),
        )
        objectives = [c.objective for c in engine.engine.constraints]
        assert "delay" in objectives and "loss" in objectives

    def test_report_carries_path_columns(self):
        table = three_level_table()
        engine = self.routed(table, path_loss_eps=0.5)
        report = engine.step(snr_state(np.full(6, 20.0)))
        assert report.n_paths == table.n_paths
        assert 0 <= report.n_paths_feasible <= report.n_paths
        assert report.relay_converged
        assert report.relay_iterations >= 1
        assert np.isfinite(report.network_energy_uj_per_bit)
        stats = report.stats()
        assert stats["n_paths"] == table.n_paths
        assert "n_paths_feasible" in stats

    def test_infeasible_link_kills_its_paths(self):
        table = three_level_table()
        engine = self.routed(table, congestion=False, path_loss_eps=0.2)
        snr = np.full(6, 25.0)
        snr[0] = -40.0  # edge 0 = the 0-1 uplink every path crosses
        report = engine.step(snr_state(snr))
        assert report.n_infeasible >= 1
        assert report.n_paths_feasible == 0

    def test_deterministic_across_engines(self):
        topology = grid_topology(80, seed=11)
        table = routes_for_topology(topology)
        state_a = FleetState.from_topology(topology)
        state_b = FleetState.from_topology(topology)
        report_a = self.routed(table, path_loss_eps=0.3).step(state_a)
        report_b = self.routed(table, path_loss_eps=0.3).step(state_b)
        assert np.array_equal(report_a.config_index, report_b.config_index)
        assert report_a.n_paths_feasible == report_b.n_paths_feasible
        assert report_a.network_energy_uj_per_bit == pytest.approx(
            report_b.network_energy_uj_per_bit
        )

    def test_network_energy_is_uplink_sum(self):
        table = three_level_table()
        engine = self.routed(table, congestion=False)
        report = engine.step(snr_state(np.full(6, 20.0)))
        per_edge = engine.last_paths  # composition ran; recompute by hand
        nodes = table.uplink_nodes
        # Sum each leaf-adjacent contribution via the scalar reference:
        # total network energy equals the sum over tree uplink edges.
        assert report.network_energy_uj_per_bit > 0.0
        assert per_edge.energy_uj_per_bit[nodes].max() <= (
            report.network_energy_uj_per_bit + 1e-12
        )

    def test_routing_info_round_trips(self):
        table = three_level_table()
        engine = self.routed(table, path_loss_eps=0.2)
        info = engine.routing_info()
        assert info["sink"] == 0
        assert info["path_loss_eps"] == 0.2
        assert info["congestion"] is True
        assert info["n_paths"] == 4


class TestTopologyConnectivity:
    def test_grid_topology_is_connected(self):
        stats = grid_topology(100, seed=0).stats()
        assert stats["n_components"] == 1

    def test_random_topology_reports_components(self):
        stats = random_geometric_topology(50, seed=0).stats()
        assert stats["n_components"] >= 1
        assert stats["n_isolated_nodes"] >= 0

    def test_require_connected_raises_on_fragmented_scatter(self):
        fragmented = None
        for seed in range(60):
            topology = random_geometric_topology(
                12, seed=seed, area_side_m=200.0, max_distance_m=40.0
            )
            if topology.stats()["n_components"] > 1:
                fragmented = seed
                break
        assert fragmented is not None, "no fragmenting seed found"
        with pytest.raises(FleetError, match="components"):
            random_geometric_topology(
                12,
                seed=fragmented,
                area_side_m=200.0,
                max_distance_m=40.0,
                require_connected=True,
            )

    def test_require_connected_passes_dense_scatter(self):
        topology = random_geometric_topology(
            50, seed=1, require_connected=True
        )
        assert topology.stats()["n_components"] == 1


class TestRoutedRunner:
    def test_checkpoint_header_and_rows_carry_routing(self, tmp_path):
        import json

        from repro.fleet import FleetDrift, run_fleet

        topology = grid_topology(24, seed=5)
        table = routes_for_topology(topology)
        engine = RoutedFleetEngine(table, grid=TINY_GRID, path_loss_eps=0.5)
        drift = FleetDrift(topology, seed=5)
        path = tmp_path / "routed.jsonl"
        result = run_fleet(topology, engine, drift, 3, checkpoint_path=path)
        lines = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        header, rows = lines[0], lines[1:]
        assert header["routing"]["sink"] == table.sink
        assert header["routing"]["path_loss_eps"] == 0.5
        for row in rows:
            assert row["n_paths"] == table.n_paths
            assert 0 <= row["n_paths_feasible"] <= table.n_paths
        assert result.n_steps_executed == 3

    def test_resume_is_bit_identical(self, tmp_path):
        from repro.fleet import FleetDrift, run_fleet

        topology = grid_topology(24, seed=6)
        table = routes_for_topology(topology)

        def fresh_engine():
            return RoutedFleetEngine(
                table, grid=TINY_GRID, path_loss_eps=0.5
            )

        full_path = tmp_path / "full.jsonl"
        run_fleet(
            topology,
            fresh_engine(),
            FleetDrift(topology, seed=6),
            4,
            checkpoint_path=full_path,
        )
        partial_path = tmp_path / "partial.jsonl"
        run_fleet(
            topology,
            fresh_engine(),
            FleetDrift(topology, seed=6),
            2,
            checkpoint_path=partial_path,
        )
        resumed = run_fleet(
            topology,
            fresh_engine(),
            FleetDrift(topology, seed=6),
            4,
            checkpoint_path=partial_path,
            resume=True,
        )
        assert resumed.n_steps_replayed == 2
        assert full_path.read_text() == partial_path.read_text()
