"""End-to-end telemetry: the pinned invariant and the full HTTP loop."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.optimization import TuningGrid
from repro.fleet import (
    FleetDrift,
    FleetEngine,
    FleetState,
    grid_topology,
    run_fleet,
)
from repro.serve import Oracle, OracleService, make_server
from repro.telemetry import (
    DeviceFleetSimulator,
    SnrEstimator,
    TelemetryIngestor,
    TelemetrySnrSource,
    UPLINK_TEMPLATE_EXACT,
)

TINY_GRID = TuningGrid(
    ptx_levels=(3, 31),
    payload_values_bytes=(20, 110),
    n_max_tries_values=(1, 3),
    q_max_values=(1,),
)


def measured_source(topology, seed, alpha=1.0):
    """Drift-driven simulator + ingestor pair over a topology."""
    truth = FleetState.from_topology(topology)
    serving = FleetState.from_topology(topology)
    simulator = DeviceFleetSimulator(
        truth,
        template=UPLINK_TEMPLATE_EXACT,
        mode="periodic",
        seed=0,
        drift=FleetDrift(topology, seed=seed),
    )
    ingestor = TelemetryIngestor(serving, SnrEstimator(alpha=alpha))
    return TelemetrySnrSource(simulator, ingestor), serving


class TestNoiselessInvariant:
    """Pinned: noiseless uplinks reproduce the drift trajectory exactly.

    A periodic simulator with no measurement noise, the bit-exact f64
    template, and an ``alpha=1.0`` estimator is the identity channel —
    the measured pipeline (drift → encode → wire → decode → estimator)
    must land on *bit-for-bit* the same SNR column as stepping the drift
    directly. Any quantization, reordering, or arithmetic drift in the
    codec/estimator path breaks this.
    """

    SEED = 2015
    N_STEPS = 20

    def test_measured_trajectory_is_bit_identical_to_drift(self):
        topology = grid_topology(24, seed=self.SEED)
        source, serving = measured_source(topology, self.SEED)
        reference_state = FleetState.from_topology(topology)
        reference_drift = FleetDrift(topology, seed=self.SEED)
        for _ in range(self.N_STEPS):
            expected = reference_drift.step(reference_state).copy()
            measured = source.step(serving)
            assert np.array_equal(measured, expected)
            report = source.last_report
            assert report.n_accepted == len(topology)
            assert report.n_duplicate == 0
            assert report.n_gap_uplinks == 0

    def test_run_fleet_rows_match_under_measured_source(self, tmp_path):
        """The fleet runner produces identical checkpoint rows whether the
        SNR source is the synthetic drift or the measured pipeline."""
        topology = grid_topology(12, seed=self.SEED)
        engine = FleetEngine(grid=TINY_GRID, snr_quantum_db=0.25)
        drift_result = run_fleet(
            topology,
            engine,
            FleetDrift(topology, seed=self.SEED),
            n_steps=6,
            checkpoint_path=tmp_path / "drift.jsonl",
        )
        source, serving = measured_source(topology, self.SEED)
        measured_result = run_fleet(
            topology,
            FleetEngine(grid=TINY_GRID, snr_quantum_db=0.25),
            source,
            n_steps=6,
            checkpoint_path=tmp_path / "measured.jsonl",
            initial_state=serving,
        )
        assert measured_result.rows == drift_result.rows

    def test_initial_state_length_mismatch_raises(self):
        from repro.errors import FleetError

        topology = grid_topology(8, seed=0)
        source, serving = measured_source(topology, 0)
        with pytest.raises(FleetError):
            run_fleet(
                grid_topology(4, seed=0),
                FleetEngine(grid=TINY_GRID),
                source,
                n_steps=1,
                initial_state=serving,
            )


@pytest.fixture
def telemetry_server():
    """A full serving stack with telemetry ingestion enabled."""
    n_links = 16
    base_snr_db = np.linspace(5.0, 24.0, n_links)
    ingestor = TelemetryIngestor(
        FleetState.from_base_snr(base_snr_db),
        SnrEstimator(alpha=1.0),
    )
    service = OracleService(
        Oracle(grid=TINY_GRID), workers=2, ingestor=ingestor
    )
    http_server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server, ingestor, base_snr_db
    http_server.shutdown()
    http_server.server_close()
    service.close()
    thread.join(timeout=5.0)


def get(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def post_json(server, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post_binary(server, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/v1/telemetry",
        data=payload,
        headers={"Content-Type": "application/octet-stream"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHttpLoop:
    """Simulator → wire → /v1/telemetry → estimator → /v1/fleet/recommend."""

    def test_binary_ingest_updates_state_and_recommendations_follow(
        self, telemetry_server
    ):
        server, ingestor, base_snr_db = telemetry_server
        n_links = len(base_snr_db)
        # The truth fleet has drifted 4 dB below the serving tier's prior.
        truth = FleetState.from_base_snr(base_snr_db - 4.0)
        simulator = DeviceFleetSimulator(
            truth, template=UPLINK_TEMPLATE_EXACT, mode="periodic", seed=3
        )
        for _ in range(3):
            status, body = post_binary(server, simulator.tick())
            assert status == 200
            assert body["report"]["n_accepted"] == n_links

        # The estimator (alpha=1) has adopted the measured SNRs exactly.
        np.testing.assert_array_equal(
            ingestor.state.snr_db, truth.snr_db
        )
        status, snapshot = get(server, "/v1/telemetry/state")
        assert status == 200
        assert snapshot["n_links"] == n_links
        assert snapshot["n_links_measured"] == n_links
        assert snapshot["snr_mean_db"] == pytest.approx(
            float(np.mean(base_snr_db)) - 4.0
        )

        # Close the loop: recommend for the measured fleet over HTTP.
        status, body = post_json(
            server,
            "/v1/fleet/recommend",
            {
                "links": [
                    {"snr_db": snr} for snr in ingestor.state.snr_db.tolist()
                ],
                "objective": "energy",
            },
        )
        assert status == 200
        assert body["n_links"] == n_links
        assert all("recommendation" in r for r in body["results"])
        # Degraded links need more headroom than their priors would have:
        # the recommended configs must differ somewhere from the ones the
        # un-measured (4 dB more optimistic) fleet would get.
        status, prior = post_json(
            server,
            "/v1/fleet/recommend",
            {
                "links": [{"snr_db": snr} for snr in base_snr_db.tolist()],
                "objective": "energy",
            },
        )
        assert status == 200
        measured_configs = [
            r["recommendation"]["config"] for r in body["results"]
        ]
        prior_configs = [
            r["recommendation"]["config"] for r in prior["results"]
        ]
        assert measured_configs != prior_configs

    def test_json_batch_and_metrics_identity(self, telemetry_server):
        server, ingestor, base_snr_db = telemetry_server
        uplinks = [
            {"link_id": 0, "seq": 0, "snr_db": 12.5, "plr": 0.0},
            {"link_id": 0, "seq": 0, "snr_db": 12.5, "plr": 0.0},  # dup
            {"link_id": 1, "seq": 0, "snr_db": 9.25, "plr": 0.0},
            {"link_id": 999, "seq": 0, "snr_db": 1.0, "plr": 0.0},
        ]
        status, body = post_json(
            server,
            "/v1/telemetry",
            {"uplinks": uplinks, "template_version": 2},
        )
        assert status == 200
        report = body["report"]
        assert report["n_accepted"] == 2
        assert report["n_duplicate"] == 1
        assert report["n_unknown_link"] == 1
        assert ingestor.state.snr_db[0] == 12.5

        status, metrics = get(server, "/metrics")
        assert status == 200
        counters = metrics["counters"]
        assert counters["telemetry_batches_total"] == 1
        assert counters["telemetry_uplinks_total"] == (
            counters["telemetry_accepted_total"]
            + counters["telemetry_duplicate_total"]
            + counters["telemetry_out_of_order_total"]
            + counters["telemetry_unknown_link_total"]
        )
        assert metrics["latency"]["telemetry_batch_uplinks"]["count"] == 1
        assert metrics["latency"]["telemetry_decode_ms"]["count"] == 1

    def test_defective_batches_map_to_400_with_field(self, telemetry_server):
        server, _, _ = telemetry_server
        status, body = post_binary(server, b"\x02\x00\x01")  # truncated
        assert status == 400
        assert body["error"]["type"] == "ProtocolError"
        assert body["error"]["code"] == "protocol_error"
        assert body["error"]["field"] == "payload"
        status, body = post_json(
            server,
            "/v1/telemetry",
            {"uplinks": [{"link_id": 0}], "template_version": 2},
        )
        assert status == 400
        assert body["error"]["field"] == "seq"
        status, metrics = get(server, "/metrics")
        assert metrics["counters"]["requests_rejected_protocol"] >= 2

    def test_telemetry_disabled_server_maps_to_404(self):
        service = OracleService(Oracle(grid=TINY_GRID), workers=1)
        http_server = make_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        try:
            status, body = post_json(
                http_server,
                "/v1/telemetry",
                {"uplinks": [], "template_version": 1},
            )
            assert status in (400, 404)
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                get(http_server, "/v1/telemetry/state")
            assert exc_info.value.code == 404
        finally:
            http_server.shutdown()
            http_server.server_close()
            service.close()
            thread.join(timeout=5.0)
