"""Queue and queueing-theory tests (repro.queueing)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.queueing import (
    BoundedFifoQueue,
    QueueingRegime,
    mg1_mean_wait_s,
    mm1k_blocking_probability,
    mm1k_mean_queue_length,
    utilization,
)


class TestBoundedFifoQueue:
    def test_fifo_order(self):
        q = BoundedFifoQueue(5)
        for i in range(5):
            assert q.offer(i, float(i))
        assert [q.poll(10.0 + i) for i in range(5)] == [0, 1, 2, 3, 4]

    def test_drops_when_full(self):
        q = BoundedFifoQueue(2)
        assert q.offer("a", 0.0)
        assert q.offer("b", 0.1)
        assert not q.offer("c", 0.2)
        stats = q.stats()
        assert stats.arrivals == 3
        assert stats.dropped == 1
        assert stats.drop_rate == pytest.approx(1 / 3)

    def test_poll_empty_returns_none(self):
        q = BoundedFifoQueue(1)
        assert q.poll(0.0) is None

    def test_peek_does_not_remove(self):
        q = BoundedFifoQueue(2)
        q.offer("x", 0.0)
        assert q.peek() == "x"
        assert len(q) == 1

    def test_drain(self):
        q = BoundedFifoQueue(3)
        for i in range(3):
            q.offer(i, float(i))
        assert q.drain(5.0) == [0, 1, 2]
        assert q.is_empty
        assert q.stats().departures == 3

    def test_time_average_occupancy(self):
        q = BoundedFifoQueue(10)
        q.offer("a", 0.0)  # occupancy 1 over [0, 2]
        q.poll(2.0)  # occupancy 0 over [2, 4]
        stats = q.stats(now_s=4.0)
        assert stats.time_average_occupancy == pytest.approx(0.5)

    def test_time_must_not_go_backwards(self):
        q = BoundedFifoQueue(2)
        q.offer("a", 1.0)
        with pytest.raises(SimulationError):
            q.offer("b", 0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError):
            BoundedFifoQueue(0)

    @given(
        capacity=st.integers(min_value=1, max_value=10),
        ops=st.lists(st.booleans(), min_size=1, max_size=200),
    )
    def test_invariants_under_any_op_sequence(self, capacity, ops):
        """Occupancy never exceeds capacity; counters always balance."""
        q = BoundedFifoQueue(capacity)
        t = 0.0
        pushed = 0
        for is_offer in ops:
            t += 0.1
            if is_offer:
                q.offer(pushed, t)
                pushed += 1
            else:
                q.poll(t)
            assert 0 <= len(q) <= capacity
        stats = q.stats()
        assert stats.arrivals == pushed
        assert stats.accepted + stats.dropped == stats.arrivals
        assert stats.accepted - stats.departures == len(q)
        assert stats.peak_occupancy <= capacity

    @given(items=st.lists(st.integers(), min_size=1, max_size=50))
    def test_fifo_property(self, items):
        """Whatever goes in comes out in the same order (no drops)."""
        q = BoundedFifoQueue(len(items))
        for i, item in enumerate(items):
            assert q.offer(item, float(i))
        out = [q.poll(100.0 + i) for i in range(len(items))]
        assert out == items


class TestUtilization:
    def test_paper_table_ii_rho(self):
        # T_service = 37.08 ms, T_pkt = 30 ms → ρ = 1.236 (paper Table II).
        assert utilization(37.08e-3, 30e-3) == pytest.approx(1.236)

    def test_validation(self):
        with pytest.raises(SimulationError):
            utilization(-1.0, 1.0)
        with pytest.raises(SimulationError):
            utilization(1.0, 0.0)


class TestQueueingRegime:
    def test_stable(self):
        r = QueueingRegime(0.5)
        assert r.stable and not r.heavy_traffic and not r.overloaded

    def test_heavy(self):
        r = QueueingRegime(0.9)
        assert r.stable and r.heavy_traffic

    def test_overloaded(self):
        r = QueueingRegime(1.2)
        assert r.overloaded and not r.stable

    def test_describe_mentions_regime(self):
        assert "overloaded" in QueueingRegime(1.5).describe()
        assert "light" in QueueingRegime(0.3).describe()


class TestMg1:
    def test_wait_grows_with_rho(self):
        w1 = mg1_mean_wait_s(0.01, 1.0, 0.05)  # rho 0.2
        w2 = mg1_mean_wait_s(0.04, 1.0, 0.05)  # rho 0.8
        assert w2 > w1

    def test_infinite_at_saturation(self):
        assert math.isinf(mg1_mean_wait_s(0.05, 1.0, 0.05))

    def test_deterministic_service_halves_wait(self):
        exp = mg1_mean_wait_s(0.02, 1.0, 0.05)
        det = mg1_mean_wait_s(0.02, 0.0, 0.05)
        assert det == pytest.approx(exp / 2)

    def test_rejects_negative_scv(self):
        with pytest.raises(SimulationError):
            mg1_mean_wait_s(0.01, -1.0, 0.05)


class TestMm1k:
    def test_blocking_increases_with_rho(self):
        assert mm1k_blocking_probability(1.5, 5) > mm1k_blocking_probability(0.5, 5)

    def test_blocking_decreases_with_capacity(self):
        assert mm1k_blocking_probability(0.9, 30) < mm1k_blocking_probability(0.9, 2)

    def test_rho_one_limit(self):
        assert mm1k_blocking_probability(1.0, 4) == pytest.approx(0.2)

    def test_zero_rho_never_blocks(self):
        assert mm1k_blocking_probability(0.0, 3) == 0.0

    def test_mean_queue_length_bounds(self):
        for rho in (0.2, 0.9, 1.0, 2.0):
            length = mm1k_mean_queue_length(rho, 10)
            assert 0.0 <= length <= 10.0

    def test_mean_length_at_rho_one(self):
        assert mm1k_mean_queue_length(1.0, 6) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            mm1k_blocking_probability(-0.1, 3)
        with pytest.raises(SimulationError):
            mm1k_mean_queue_length(0.5, 0)
