"""CC2420 constants tests (repro.radio.cc2420)."""

import pytest

from repro.errors import RadioError
from repro.radio import cc2420


class TestPaTable:
    def test_eight_levels(self):
        assert len(cc2420.PA_LEVELS) == 8
        assert cc2420.PA_LEVELS == (3, 7, 11, 15, 19, 23, 27, 31)

    def test_level_31_is_0dbm(self):
        assert cc2420.output_power_dbm(31) == 0.0

    def test_level_3_is_minus_25dbm(self):
        assert cc2420.output_power_dbm(3) == -25.0

    def test_power_monotone_in_level(self):
        powers = [cc2420.output_power_dbm(lvl) for lvl in cc2420.PA_LEVELS]
        assert powers == sorted(powers)

    def test_current_monotone_in_level(self):
        currents = [cc2420.tx_current_a(lvl) for lvl in cc2420.PA_LEVELS]
        assert currents == sorted(currents)

    def test_unknown_level_raises(self):
        with pytest.raises(RadioError):
            cc2420.output_power_dbm(12)
        with pytest.raises(RadioError):
            cc2420.tx_current_a(0)


class TestEnergy:
    def test_tx_energy_per_bit_at_max_power(self):
        # 1.8 V × 17.4 mA / 250 kb/s ≈ 0.125 µJ/bit — the value the paper's
        # Table IV energies back-solve to.
        assert cc2420.tx_energy_per_bit_j(31) == pytest.approx(1.2528e-7, rel=1e-3)

    def test_tx_energy_decreases_with_level(self):
        assert cc2420.tx_energy_per_bit_j(3) < cc2420.tx_energy_per_bit_j(31)

    def test_rx_power(self):
        assert cc2420.rx_power_w() == pytest.approx(1.8 * 18.8e-3)


class TestHelpers:
    def test_nearest_pa_level_exact(self):
        assert cc2420.nearest_pa_level(0.0) == 31
        assert cc2420.nearest_pa_level(-25.0) == 3

    def test_nearest_pa_level_between(self):
        assert cc2420.nearest_pa_level(-12.0) == 11  # −10 is closer than −15

    def test_nearest_pa_level_tie_prefers_cheaper(self):
        # −12.5 dBm is equidistant from −10 (lvl 11) and −15 (lvl 7).
        assert cc2420.nearest_pa_level(-12.5) == 7

    def test_clamp_rssi(self):
        assert cc2420.clamp_rssi(-120.0) == cc2420.RSSI_MIN_DBM
        assert cc2420.clamp_rssi(5.0) == cc2420.RSSI_MAX_DBM
        assert cc2420.clamp_rssi(-50.0) == -50.0

    def test_symbol_time(self):
        assert cc2420.SYMBOL_TIME_S == pytest.approx(16e-6)
        assert cc2420.DATA_RATE_BPS == 250_000
