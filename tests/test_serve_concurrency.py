"""Threaded stress tests for repro.serve's shared-state primitives.

These tests hammer :class:`LruCache`, :class:`ServiceMetrics` /
:class:`LatencyHistogram`, and :class:`_Pending` from many threads at
once and compare the final counters against a single-threaded ground
truth. They are the runtime complement of the RPR201/RPR202 static
checks: the linter proves every access is inside a critical section, and
these tests prove the critical sections compose into the documented
invariants (``hits + misses == lookups``, histogram ``count`` equals
observations, exactly one winner resolves a pending request).

Thread counts and iteration counts are sized to finish in well under a
second while still interleaving heavily (a tight loop over a lock is the
best contention generator pytest can afford).
"""

import threading

import pytest

from repro.errors import ServeError
from repro.serve.cache import LruCache
from repro.serve.metrics import LatencyHistogram, ServiceMetrics
from repro.serve.service import _Pending

N_THREADS = 16
N_OPS = 400


def run_threads(worker, n_threads=N_THREADS):
    """Start ``n_threads`` running ``worker(thread_index)``; join them all.

    A barrier lines the threads up so they enter the hot loop together —
    without it the first thread often finishes before the last one starts
    and nothing actually interleaves.
    """
    barrier = threading.Barrier(n_threads)
    errors = []

    def wrapped(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class TestLruCacheUnderContention:
    def test_counters_match_single_thread_ground_truth(self):
        # Keys are partitioned per thread, so every thread knows exactly
        # which of its lookups hit: the first get of each key misses, the
        # second (after put) hits. The aggregate counters must equal the
        # sum of the per-thread ground truths.
        cache = LruCache(capacity=N_THREADS * N_OPS)

        def worker(index):
            for op in range(N_OPS):
                key = (index, op)
                assert cache.get(key) is None
                cache.put(key, op)
                assert cache.get(key) == op

        run_threads(worker)
        stats = cache.stats()
        assert stats.misses == N_THREADS * N_OPS
        assert stats.hits == N_THREADS * N_OPS
        assert stats.lookups == stats.hits + stats.misses
        assert stats.size == N_THREADS * N_OPS
        assert stats.evictions == 0

    def test_lookup_invariant_holds_with_shared_keys_and_eviction(self):
        # All threads fight over the same tiny key space in a cache too
        # small to hold it. Hits and misses are nondeterministic, but the
        # accounting identity and the capacity bound must hold exactly.
        cache = LruCache(capacity=8)
        lookups_per_thread = N_OPS

        def worker(index):
            for op in range(lookups_per_thread):
                key = op % 32
                if cache.get(key) is None:
                    cache.put(key, key)

        run_threads(worker)
        stats = cache.stats()
        assert stats.lookups == N_THREADS * lookups_per_thread
        assert stats.hits + stats.misses == stats.lookups
        assert stats.size <= 8
        assert len(cache) == stats.size

    def test_snapshot_is_internally_consistent_while_hammered(self):
        # A reader thread snapshots stats while writers churn; every
        # snapshot must satisfy hits + misses == lookups (the identity is
        # taken under the same lock as the counters, so a torn read would
        # be a real bug, not test flakiness).
        cache = LruCache(capacity=16)
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                stats = cache.stats()
                if stats.hits + stats.misses != stats.lookups:
                    bad.append(stats)

        observer = threading.Thread(target=reader)
        observer.start()
        try:

            def worker(index):
                for op in range(N_OPS):
                    key = (index * 7 + op) % 64
                    if cache.get(key) is None:
                        cache.put(key, key)

            run_threads(worker)
        finally:
            stop.set()
            observer.join()
        assert bad == []


class TestMetricsUnderContention:
    def test_counter_increments_are_not_lost(self):
        metrics = ServiceMetrics()

        def worker(index):
            for _ in range(N_OPS):
                metrics.increment("requests_total")
                metrics.increment("batch.items_total", by=3)

        run_threads(worker)
        assert metrics.counter("requests_total") == N_THREADS * N_OPS
        assert metrics.counter("batch.items_total") == N_THREADS * N_OPS * 3

    def test_histogram_count_and_sum_match_observations(self):
        histogram = LatencyHistogram(buckets=(0.001, 0.01, 0.1, 1.0))
        per_thread = [0.0005 * (index + 1) for index in range(N_THREADS)]

        def worker(index):
            for _ in range(N_OPS):
                histogram.observe(per_thread[index])

        run_threads(worker)
        assert histogram.count == N_THREADS * N_OPS
        expected_sum = sum(value * N_OPS for value in per_thread)
        summary = histogram.as_dict()
        assert summary["count"] == N_THREADS * N_OPS
        assert summary["sum_s"] == pytest.approx(expected_sum)
        bucket_total = sum(b["count"] for b in summary["buckets"])
        assert bucket_total == N_THREADS * N_OPS

    def test_first_use_histogram_creation_race_yields_one_instance(self):
        # 16 threads race metrics.histogram("x") on first use; they must
        # all get the same object and no observation may land in an
        # orphaned histogram that lost the creation race.
        metrics = ServiceMetrics()
        seen = [None] * N_THREADS

        def worker(index):
            histogram = metrics.histogram("serve.latency")
            seen[index] = histogram
            for _ in range(N_OPS):
                metrics.observe("serve.latency", 0.002)

        run_threads(worker)
        assert all(h is seen[0] for h in seen)
        assert metrics.histogram("serve.latency").count == N_THREADS * N_OPS


class TestPendingSingleOutcome:
    def test_exactly_one_resolver_wins(self):
        # Half the threads try to resolve, half try to reject the same
        # pending request. Exactly one outcome may stick.
        for _ in range(20):
            pending = _Pending(request=None, deadline_s=1.0, now_s=0.0)
            wins = [0] * N_THREADS

            def worker(index):
                if index % 2 == 0:
                    won = pending.resolve(("value", index))
                else:
                    won = pending.reject(ServeError(f"rejected by {index}"))
                wins[index] = 1 if won else 0

            run_threads(worker)
            assert sum(wins) == 1
            assert pending.wait(timeout_s=1.0)
            winner = wins.index(1)
            if winner % 2 == 0:
                assert pending.outcome() == ("value", winner)
            else:
                with pytest.raises(ServeError):
                    pending.outcome()

    def test_outcome_visible_to_waiter_thread(self):
        # The waiter must observe the value written by the resolver after
        # Event.wait returns — pinning the lock-protected handoff that
        # RPR201 flagged when outcome() read the fields without the lock.
        pending = _Pending(request=None, deadline_s=1.0, now_s=0.0)
        results = []

        def waiter():
            assert pending.wait(timeout_s=5.0)
            results.append(pending.outcome())

        thread = threading.Thread(target=waiter)
        thread.start()
        assert pending.resolve("answer")
        thread.join()
        assert results == ["answer"]
