"""Link-state estimation and adaptive-tuner tests (repro.core)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import StackConfig
from repro.core import (
    AdaptivePayloadTuner,
    EnergyModel,
    EwmaEstimator,
    JointEffectZone,
    LinkStateEstimator,
    WindowedPerEstimator,
)
from repro.errors import ReproError


class TestEwmaEstimator:
    def test_first_value_is_mean(self):
        est = EwmaEstimator()
        est.update(5.0)
        assert est.mean == 5.0

    def test_converges_to_constant(self):
        est = EwmaEstimator(alpha=0.2)
        for _ in range(100):
            est.update(7.0)
        assert est.mean == pytest.approx(7.0)
        assert est.std == pytest.approx(0.0, abs=1e-6)

    def test_tracks_step_change(self):
        est = EwmaEstimator(alpha=0.2)
        for _ in range(50):
            est.update(0.0)
        for _ in range(50):
            est.update(10.0)
        assert est.mean > 9.0

    def test_std_estimates_noise(self):
        rng = np.random.default_rng(0)
        est = EwmaEstimator(alpha=0.05)
        for x in rng.normal(0.0, 2.0, 5000):
            est.update(x)
        assert est.std == pytest.approx(2.0, rel=0.3)

    def test_nan_before_data(self):
        assert math.isnan(EwmaEstimator().mean)

    def test_reset(self):
        est = EwmaEstimator()
        est.update(1.0)
        est.reset()
        assert est.count == 0 and math.isnan(est.mean)

    def test_validation(self):
        with pytest.raises(ReproError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ReproError):
            EwmaEstimator(alpha=1.5)

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=200))
    def test_mean_within_observed_range(self, values):
        est = EwmaEstimator(alpha=0.3)
        for v in values:
            est.update(v)
        assert min(values) - 1e-9 <= est.mean <= max(values) + 1e-9


class TestWindowedPerEstimator:
    def test_exact_window_counts(self):
        est = WindowedPerEstimator(window=4)
        for acked in (True, False, True, False):
            est.update(acked)
        assert est.per == pytest.approx(0.5)

    def test_window_slides(self):
        est = WindowedPerEstimator(window=2)
        est.update(False)
        est.update(False)
        assert est.per == 1.0
        est.update(True)
        est.update(True)
        assert est.per == 0.0

    def test_nan_before_data(self):
        assert math.isnan(WindowedPerEstimator().per)

    def test_confidence(self):
        est = WindowedPerEstimator(window=10)
        assert not est.confident
        for _ in range(5):
            est.update(True)
        assert est.confident

    def test_validation(self):
        with pytest.raises(ReproError):
            WindowedPerEstimator(window=0)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    def test_per_in_unit_interval(self, outcomes):
        est = WindowedPerEstimator(window=50)
        for o in outcomes:
            est.update(o)
        assert 0.0 <= est.per <= 1.0
        # Cross-check against a direct recount of the window.
        window = outcomes[-50:]
        assert est.per == pytest.approx(
            sum(not o for o in window) / len(window)
        )


class TestLinkStateEstimator:
    def test_estimate_before_data_raises(self):
        with pytest.raises(ReproError):
            LinkStateEstimator(payload_bytes=110).estimate()

    def test_zone_classification(self):
        est = LinkStateEstimator(payload_bytes=110)
        for _ in range(50):
            est.observe(snr_db=8.0, acked=True)
        snapshot = est.estimate()
        assert snapshot.zone is JointEffectZone.HIGH_IMPACT
        assert snapshot.snr_db == pytest.approx(8.0)

    def test_per_model_ratio_flags_mismatch(self):
        """A link much lossier than Eq. 3 predicts shows ratio >> 1."""
        est = LinkStateEstimator(payload_bytes=20)
        rng = np.random.default_rng(1)
        for _ in range(200):
            est.observe(snr_db=25.0, acked=bool(rng.random() > 0.5))
        snapshot = est.estimate()
        assert snapshot.per_model_ratio > 5.0

    def test_stability_flag(self):
        est = LinkStateEstimator(payload_bytes=110, snr_alpha=0.3)
        rng = np.random.default_rng(2)
        for _ in range(300):
            est.observe(snr_db=rng.normal(15.0, 8.0), acked=True)
        assert not est.estimate().stable
        est2 = LinkStateEstimator(payload_bytes=110)
        for _ in range(300):
            est2.observe(snr_db=15.0, acked=True)
        assert est2.estimate().stable

    def test_validation(self):
        with pytest.raises(ReproError):
            LinkStateEstimator(payload_bytes=0)


class TestAdaptivePayloadTuner:
    def base_config(self):
        return StackConfig(
            distance_m=20.0, ptx_level=31, n_max_tries=3, q_max=1,
            t_pkt_ms=100.0, payload_bytes=114,
        )

    def test_no_retune_on_steady_good_link(self):
        tuner = AdaptivePayloadTuner(config=self.base_config())
        for _ in range(300):
            tuner.observe(snr_db=25.0, acked=True)
        assert tuner.config.payload_bytes == 114
        assert not tuner.events

    def test_retunes_when_link_degrades(self):
        tuner = AdaptivePayloadTuner(config=self.base_config())
        for _ in range(100):
            tuner.observe(snr_db=25.0, acked=True)
        for _ in range(400):
            tuner.observe(snr_db=7.0, acked=True)
        assert tuner.config.payload_bytes < 114
        assert tuner.events
        event = tuner.events[0]
        assert event.old_config.payload_bytes == 114
        assert "optimal payload" in event.reason

    def test_matches_model_optimum(self):
        tuner = AdaptivePayloadTuner(config=self.base_config())
        for _ in range(500):
            tuner.observe(snr_db=8.0, acked=True)
        expected, _ = EnergyModel().optimal_payload_bytes(31, tuner.current_estimate().snr_db)
        assert tuner.config.payload_bytes == expected

    def test_hysteresis_limits_thrash(self):
        tuner = AdaptivePayloadTuner(
            config=self.base_config(), hysteresis_db=3.0
        )
        rng = np.random.default_rng(3)
        for _ in range(2000):
            tuner.observe(snr_db=rng.normal(10.0, 1.0), acked=True)
        # A 1 dB-noise link inside the hysteresis band retunes at most once
        # or twice, not on every check.
        assert len(tuner.events) <= 2

    def test_goodput_objective(self):
        tuner = AdaptivePayloadTuner(
            config=self.base_config(), objective="goodput"
        )
        for _ in range(400):
            tuner.observe(snr_db=6.0, acked=True)
        assert tuner.config.payload_bytes < 114

    def test_validation(self):
        with pytest.raises(ReproError):
            AdaptivePayloadTuner(config=self.base_config(), objective="magic")
        with pytest.raises(ReproError):
            AdaptivePayloadTuner(config=self.base_config(), hysteresis_db=-1.0)
        with pytest.raises(ReproError):
            AdaptivePayloadTuner(config=self.base_config(), check_every=0)
