"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import HALLWAY_2012, QUIET_HALLWAY, LinkChannel
from repro.config import StackConfig
from repro.sim import SimulationOptions, simulate_link


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def quiet_env():
    """The hallway environment with all temporal dynamics disabled."""
    return QUIET_HALLWAY


@pytest.fixture
def hallway_env():
    """The full reconstructed hallway environment."""
    return HALLWAY_2012


@pytest.fixture
def default_config():
    """A mid-quality link configuration used by many tests."""
    return StackConfig(
        distance_m=20.0,
        ptx_level=23,
        n_max_tries=3,
        d_retry_ms=0.0,
        q_max=30,
        t_pkt_ms=50.0,
        payload_bytes=65,
    )


@pytest.fixture
def small_trace(default_config):
    """A short deterministic DES run shared by analysis tests."""
    options = SimulationOptions(n_packets=200, seed=3)
    return simulate_link(default_config, options=options)


@pytest.fixture
def quiet_channel(quiet_env, rng):
    """A dynamics-free channel at 20 m / P_tx 23."""
    return LinkChannel(quiet_env, 20.0, 23, rng)
