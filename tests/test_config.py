"""StackConfig and ParameterSpace tests (repro.config)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import (
    MAX_PAYLOAD_BYTES,
    ParameterSpace,
    SMOKE_SPACE,
    StackConfig,
    TABLE_I_SPACE,
    VALID_PTX_LEVELS,
)
from repro.errors import ConfigurationError


class TestStackConfigValidation:
    def test_defaults_valid(self):
        StackConfig()  # must not raise

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ConfigurationError):
            StackConfig(distance_m=0.0)

    def test_rejects_invalid_ptx(self):
        with pytest.raises(ConfigurationError):
            StackConfig(ptx_level=30)

    @pytest.mark.parametrize("level", VALID_PTX_LEVELS)
    def test_accepts_all_valid_ptx(self, level):
        assert StackConfig(ptx_level=level).ptx_level == level

    def test_rejects_zero_tries(self):
        with pytest.raises(ConfigurationError):
            StackConfig(n_max_tries=0)

    def test_rejects_negative_retry_delay(self):
        with pytest.raises(ConfigurationError):
            StackConfig(d_retry_ms=-1.0)

    def test_rejects_zero_queue(self):
        with pytest.raises(ConfigurationError):
            StackConfig(q_max=0)

    def test_rejects_zero_interval(self):
        with pytest.raises(ConfigurationError):
            StackConfig(t_pkt_ms=0.0)

    def test_rejects_oversized_payload(self):
        with pytest.raises(ConfigurationError):
            StackConfig(payload_bytes=MAX_PAYLOAD_BYTES + 1)

    def test_rejects_zero_payload(self):
        with pytest.raises(ConfigurationError):
            StackConfig(payload_bytes=0)

    def test_rejects_non_integer_tries(self):
        with pytest.raises(ConfigurationError):
            StackConfig(n_max_tries=1.5)


class TestStackConfigBehaviour:
    def test_frozen(self):
        with pytest.raises(AttributeError):
            StackConfig().payload_bytes = 5  # type: ignore[misc]

    def test_hashable_and_equal(self):
        a = StackConfig(payload_bytes=20)
        b = StackConfig(payload_bytes=20)
        assert a == b and hash(a) == hash(b)

    def test_with_updates_validates(self):
        cfg = StackConfig()
        with pytest.raises(ConfigurationError):
            cfg.with_updates(payload_bytes=500)

    def test_with_updates_changes_only_given(self):
        cfg = StackConfig(payload_bytes=20, q_max=30)
        out = cfg.with_updates(payload_bytes=40)
        assert out.payload_bytes == 40 and out.q_max == 30

    def test_flags(self):
        assert not StackConfig(n_max_tries=1).retransmissions_enabled
        assert StackConfig(n_max_tries=2).retransmissions_enabled
        assert not StackConfig(q_max=1).queueing_enabled
        assert StackConfig(q_max=30).queueing_enabled

    def test_offered_load(self):
        cfg = StackConfig(payload_bytes=110, t_pkt_ms=30.0)
        assert cfg.offered_load_bps == pytest.approx(110 * 8 / 0.03)

    @given(
        payload=st.integers(min_value=1, max_value=MAX_PAYLOAD_BYTES),
        ptx=st.sampled_from(VALID_PTX_LEVELS),
        tries=st.integers(min_value=1, max_value=10),
        qmax=st.integers(min_value=1, max_value=50),
        tpkt=st.floats(min_value=1.0, max_value=1000.0),
        retry=st.floats(min_value=0.0, max_value=500.0),
    )
    def test_dict_roundtrip(self, payload, ptx, tries, qmax, tpkt, retry):
        cfg = StackConfig(
            payload_bytes=payload,
            ptx_level=ptx,
            n_max_tries=tries,
            q_max=qmax,
            t_pkt_ms=tpkt,
            d_retry_ms=retry,
        )
        assert StackConfig.from_dict(cfg.as_dict()) == cfg

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            StackConfig.from_dict({"bogus": 1})


class TestParameterSpace:
    def test_table_i_counts_match_paper(self):
        # 8064 settings per distance, ~50k total (the paper's Sec. II-C).
        assert TABLE_I_SPACE.settings_per_distance == 8064
        assert len(TABLE_I_SPACE) == 48384

    def test_table_i_packet_count_matches_paper(self):
        # "more than 200 million packets"
        assert len(TABLE_I_SPACE) * 4500 > 200_000_000

    def test_iteration_yields_valid_unique_configs(self):
        seen = set()
        for cfg in SMOKE_SPACE:
            assert isinstance(cfg, StackConfig)
            seen.add(cfg)
        assert len(seen) == len(SMOKE_SPACE)

    def test_iteration_distance_slowest(self):
        configs = list(SMOKE_SPACE)
        # All configs of the first distance come before any of the second.
        distances = [c.distance_m for c in configs]
        first = distances[0]
        switch = distances.index(35.0)
        assert all(d == first for d in distances[:switch])

    def test_subspace_restricts(self):
        sub = TABLE_I_SPACE.subspace(distances_m=[35.0], q_max_values=[1])
        assert len(sub) == 8064 // 2
        assert all(c.distance_m == 35.0 and c.q_max == 1 for c in sub)

    def test_subspace_rejects_unknown_axis(self):
        with pytest.raises(ConfigurationError):
            TABLE_I_SPACE.subspace(bogus=[1])

    def test_subspace_rejects_foreign_values(self):
        with pytest.raises(ConfigurationError):
            TABLE_I_SPACE.subspace(distances_m=[7.7])

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace(distances_m=())

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace(ptx_levels=(3, 3))
