"""Empirical-model tests: PER, N_tries, PLR_radio (Eqs. 3, 7, 8)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    NtriesModel,
    PerModel,
    PlrRadioModel,
    mean_tries_of_delivered,
    plr_queue_estimate,
    plr_total_estimate,
    truncated_geometric_mean_tries,
)
from repro.core.constants import ExpFitCoefficients
from repro.errors import ModelError


class TestPerModel:
    def setup_method(self):
        self.model = PerModel()

    def test_paper_coefficients(self):
        assert self.model.coefficients.alpha == 0.0128
        assert self.model.coefficients.beta == -0.15

    def test_paper_fig6d_values(self):
        """The published fit: PER(110 B) ≈ 0.1 around 19 dB, huge at 5 dB."""
        assert self.model.per(110, 19.0) == pytest.approx(0.081, abs=0.02)
        assert self.model.per(110, 5.0) > 0.6

    def test_clipped_at_one(self):
        assert self.model.per(114, -10.0) == 1.0
        assert self.model.raw(114, -10.0) > 1.0

    @given(
        payload=st.integers(min_value=1, max_value=114),
        snr=st.floats(min_value=-10, max_value=50),
    )
    def test_bounds_property(self, payload, snr):
        per = self.model.per(payload, snr)
        assert 0.0 <= per <= 1.0

    def test_monotonicity(self):
        assert self.model.per(110, 10.0) > self.model.per(20, 10.0)
        assert self.model.per(110, 10.0) > self.model.per(110, 20.0)

    def test_vectorized(self):
        payloads = np.array([20, 60, 110])
        per = self.model.per(payloads, 10.0)
        assert per.shape == (3,)
        assert np.all(np.diff(per) > 0)

    def test_snr_for_target_per_inverts(self):
        snr = self.model.snr_for_target_per(110, 0.1)
        assert self.model.per(110, snr) == pytest.approx(0.1, rel=1e-9)

    def test_snr_for_target_validation(self):
        with pytest.raises(ModelError):
            self.model.snr_for_target_per(110, 0.0)
        with pytest.raises(ModelError):
            self.model.snr_for_target_per(0, 0.1)

    def test_success_probability_complements(self):
        assert self.model.success_probability(50, 15.0) == pytest.approx(
            1.0 - self.model.per(50, 15.0)
        )

    def test_coefficient_validation(self):
        with pytest.raises(ModelError):
            ExpFitCoefficients(alpha=-1.0, beta=-0.1)
        with pytest.raises(ModelError):
            ExpFitCoefficients(alpha=0.01, beta=0.1)


class TestNtriesModel:
    def setup_method(self):
        self.model = NtriesModel()

    def test_paper_coefficients(self):
        assert self.model.coefficients.alpha == 0.02
        assert self.model.coefficients.beta == -0.18

    def test_floor_of_one(self):
        assert self.model.expected_tries(5, 40.0) == pytest.approx(1.0, abs=1e-3)

    def test_grey_zone_needs_retries(self):
        assert self.model.expected_tries(110, 8.0) > 1.4

    def test_monotone(self):
        assert self.model.expected_tries(110, 8.0) > self.model.expected_tries(
            110, 20.0
        )
        assert self.model.expected_tries(110, 8.0) > self.model.expected_tries(
            20, 8.0
        )

    def test_implied_per_clipped(self):
        assert 0.0 <= self.model.implied_per(114, -20.0) < 1.0


class TestTruncatedGeometric:
    def test_no_loss_single_try(self):
        assert truncated_geometric_mean_tries(0.0, 5) == pytest.approx(1.0)

    def test_certain_loss_uses_budget(self):
        assert truncated_geometric_mean_tries(1.0, 5) == pytest.approx(5.0)

    def test_matches_analytic(self):
        p = 0.3
        expected = (1 - p**4) / (1 - p)
        assert truncated_geometric_mean_tries(p, 4) == pytest.approx(expected)

    @given(
        per=st.floats(min_value=0.0, max_value=1.0),
        budget=st.integers(min_value=1, max_value=10),
    )
    def test_bounds_property(self, per, budget):
        value = truncated_geometric_mean_tries(per, budget)
        assert 1.0 <= value <= budget

    def test_monte_carlo_agreement(self):
        """The closed form matches a direct simulation of the process."""
        rng = np.random.default_rng(0)
        p, budget = 0.4, 3
        tries = []
        for _ in range(20000):
            for k in range(1, budget + 1):
                if rng.random() >= p:
                    break
            tries.append(k)
        assert truncated_geometric_mean_tries(p, budget) == pytest.approx(
            np.mean(tries), abs=0.02
        )

    def test_vectorized(self):
        out = truncated_geometric_mean_tries(np.array([0.0, 0.5, 1.0]), 3)
        assert out.shape == (3,)

    def test_validation(self):
        with pytest.raises(ModelError):
            truncated_geometric_mean_tries(0.5, 0)
        with pytest.raises(ModelError):
            truncated_geometric_mean_tries(1.5, 3)


class TestMeanTriesOfDelivered:
    def test_no_loss(self):
        assert mean_tries_of_delivered(0.0, 5) == pytest.approx(1.0)

    def test_below_unconditional(self):
        """Conditioning on success trims the heavy tail."""
        p = 0.6
        assert mean_tries_of_delivered(p, 5) < truncated_geometric_mean_tries(p, 5)

    def test_validation(self):
        with pytest.raises(ModelError):
            mean_tries_of_delivered(1.0, 3)


class TestPlrRadioModel:
    def setup_method(self):
        self.model = PlrRadioModel()

    def test_paper_coefficients(self):
        assert self.model.coefficients.alpha == 0.011
        assert self.model.coefficients.beta == -0.145

    def test_power_law_in_tries(self):
        base = self.model.attempt_failure_probability(110, 8.0)
        assert self.model.plr_radio(110, 8.0, 3) == pytest.approx(base**3)

    def test_retries_reduce_loss(self):
        assert self.model.plr_radio(110, 8.0, 5) < self.model.plr_radio(110, 8.0, 1)

    @given(
        payload=st.integers(min_value=1, max_value=114),
        snr=st.floats(min_value=-5, max_value=40),
        tries=st.integers(min_value=1, max_value=8),
    )
    def test_bounds_property(self, payload, snr, tries):
        plr = self.model.plr_radio(payload, snr, tries)
        assert 0.0 <= plr <= 1.0

    def test_min_tries_for_target(self):
        n = self.model.min_tries_for_target(110, 8.0, 0.01)
        assert self.model.plr_radio(110, 8.0, n) <= 0.01
        if n > 1:
            assert self.model.plr_radio(110, 8.0, n - 1) > 0.01

    def test_min_tries_good_link_is_one(self):
        assert self.model.min_tries_for_target(20, 30.0, 0.01) == 1

    def test_min_tries_dead_link_sentinel(self):
        assert self.model.min_tries_for_target(114, -20.0, 0.01) == 10**6

    def test_min_tries_validation(self):
        with pytest.raises(ModelError):
            self.model.min_tries_for_target(110, 8.0, 0.0)

    def test_plr_validation(self):
        with pytest.raises(ModelError):
            self.model.plr_radio(110, 8.0, 0)


class TestLossComposition:
    def test_total_series_formula(self):
        assert plr_total_estimate(0.2, 0.5) == pytest.approx(0.5 + 0.5 * 0.2)

    def test_bounds(self):
        assert plr_total_estimate(1.0, 1.0) == 1.0
        assert plr_total_estimate(0.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            plr_total_estimate(1.5, 0.0)

    def test_queue_estimate_monotone_in_rho(self):
        assert plr_queue_estimate(1.5, 30) > plr_queue_estimate(0.5, 30)

    def test_queue_estimate_monotone_in_capacity(self):
        assert plr_queue_estimate(0.95, 30) < plr_queue_estimate(0.95, 1)

    def test_queue_estimate_validation(self):
        with pytest.raises(ModelError):
            plr_queue_estimate(0.5, 0)
