"""Vectorized Monte-Carlo link tests (repro.sim.fastlink)."""

import numpy as np
import pytest

from repro.channel import QUIET_HALLWAY
from repro.errors import SimulationError
from repro.sim.fastlink import FastLink


class TestFastLinkBasics:
    def test_result_shapes(self):
        result = FastLink(seed=0).run(15.0, 110, n_packets=500, n_max_tries=3)
        assert result.n_packets == 500
        assert result.n_tries.shape == (500,)
        assert result.acked.shape == (500,)
        assert result.n_transmissions == result.n_tries.sum()
        assert result.snr_samples_db.size == result.n_transmissions

    def test_tries_within_budget(self):
        result = FastLink(seed=0).run(8.0, 110, n_packets=500, n_max_tries=4)
        assert result.n_tries.max() <= 4
        assert result.n_tries.min() >= 1

    def test_deterministic_under_seed(self):
        a = FastLink(seed=3).run(10.0, 65, n_packets=300, n_max_tries=2)
        b = FastLink(seed=3).run(10.0, 65, n_packets=300, n_max_tries=2)
        assert np.array_equal(a.n_tries, b.n_tries)
        assert np.array_equal(a.acked, b.acked)

    def test_validation(self):
        link = FastLink(seed=0)
        with pytest.raises(SimulationError):
            link.run(10.0, 65, n_packets=0)
        with pytest.raises(SimulationError):
            link.run(10.0, 65, n_max_tries=0)
        with pytest.raises(SimulationError):
            FastLink(snr_jitter_db=-1.0)


class TestFastLinkStatistics:
    def test_per_decreases_with_snr(self):
        link = FastLink(seed=1)
        low = link.run(6.0, 110, n_packets=3000)
        high = FastLink(seed=1).run(20.0, 110, n_packets=3000)
        assert high.per < low.per

    def test_per_increases_with_payload(self):
        small = FastLink(seed=2).run(10.0, 10, n_packets=3000)
        large = FastLink(seed=2).run(10.0, 110, n_packets=3000)
        assert large.per > small.per

    def test_retries_cut_plr_but_not_per(self):
        no_retry = FastLink(seed=3).run(10.0, 110, n_packets=3000, n_max_tries=1)
        retry = FastLink(seed=3).run(10.0, 110, n_packets=3000, n_max_tries=5)
        assert retry.plr_radio < no_retry.plr_radio
        # Per-transmission error rate is a channel property, roughly equal.
        assert retry.per == pytest.approx(no_retry.per, abs=0.05)

    def test_plr_matches_per_power_law(self):
        """PLR_radio ≈ PER^N — the independence assumption of Eq. 8."""
        result = FastLink(seed=4, snr_jitter_db=0.0).run(
            9.0, 110, n_packets=20000, n_max_tries=3
        )
        assert result.plr_radio == pytest.approx(result.per**3, abs=0.02)

    def test_clean_link_near_lossless(self):
        # The empirical BER keeps a sub-percent residual loss floor at high
        # SNR (real indoor links do too); "clean" means < 1% here.
        result = FastLink(seed=5).run(40.0, 110, n_packets=1000)
        assert result.per < 0.01
        assert result.plr_radio < 0.01
        assert result.mean_tries < 1.02

    def test_goodput_positive_and_bounded(self):
        result = FastLink(seed=6).run(25.0, 110, n_packets=2000)
        assert 0 < result.goodput_bps < 250_000

    def test_energy_per_bit_infinite_on_dead_link(self):
        result = FastLink(seed=7, snr_jitter_db=0.0).run(
            -10.0, 110, n_packets=200, n_max_tries=1
        )
        assert result.plr_radio == 1.0
        assert np.isinf(result.energy_per_info_bit_j(31))

    def test_energy_scales_with_power_level(self):
        result = FastLink(seed=8).run(20.0, 110, n_packets=1000)
        assert result.tx_energy_j(31) > result.tx_energy_j(3)

    def test_ack_loss_toggle(self):
        with_loss = FastLink(seed=9, snr_jitter_db=0.0, model_ack_loss=True).run(
            8.0, 110, n_packets=5000
        )
        without = FastLink(seed=9, snr_jitter_db=0.0, model_ack_loss=False).run(
            8.0, 110, n_packets=5000
        )
        assert with_loss.per > without.per

    def test_mean_tries_successful_only_counts_acked(self):
        result = FastLink(seed=10).run(8.0, 110, n_packets=3000, n_max_tries=5)
        assert result.mean_tries_successful <= result.n_max_tries
        assert result.mean_tries_successful >= 1.0
