"""HTTP API tests: a real socket round-trip through every endpoint."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.optimization import TuningGrid
from repro.serve import Oracle, OracleService, make_server

TINY_GRID = TuningGrid(
    ptx_levels=(3, 31),
    payload_values_bytes=(20, 110),
    n_max_tries_values=(1, 3),
    q_max_values=(1,),
)


@pytest.fixture
def server():
    service = OracleService(Oracle(grid=TINY_GRID), workers=2)
    http_server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    service.close()
    thread.join(timeout=5.0)


def get(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def post(server, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRecommend:
    def test_round_trip_and_cache_progression(self, server):
        payload = {"link": {"distance_m": 10.0}, "objective": "energy"}
        status, cold = post(server, "/v1/recommend", payload)
        assert status == 200
        assert cold["cache"] == "miss"
        assert cold["objective"] == "energy"
        config = cold["recommendation"]["config"]
        assert config["payload_bytes"] in (20, 110)
        status, warm = post(server, "/v1/recommend", payload)
        assert status == 200
        assert warm["cache"] == "lru"
        assert warm["recommendation"] == cold["recommendation"]

    def test_constrained_recommend(self, server):
        status, body = post(
            server,
            "/v1/recommend",
            {
                "link": {"snr_db": 6.0},
                "objective": "goodput",
                "constraints": [{"objective": "energy", "max": 10.0}],
            },
        )
        assert status == 200
        assert body["recommendation"]["u_eng_uj_per_bit"] <= 10.0

    def test_infeasible_maps_to_409(self, server):
        status, body = post(
            server,
            "/v1/recommend",
            {
                "link": {"distance_m": 10.0},
                "constraints": [{"objective": "loss", "max": -1.0}],
            },
        )
        assert status == 409
        assert body["error"]["type"] == "InfeasibleError"

    def test_bad_link_maps_to_400(self, server):
        status, body = post(server, "/v1/recommend", {"link": {}})
        assert status == 400
        assert body["error"]["type"] == "ProtocolError"

    def test_malformed_json_maps_to_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/recommend",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 400


class TestEvaluate:
    def test_round_trip_matches_oracle(self, server):
        config = {"distance_m": 10.0, "ptx_level": 31, "payload_bytes": 110}
        status, body = post(server, "/v1/evaluate", {"config": config})
        assert status == 200
        evaluation = body["evaluation"]
        from repro.config import StackConfig
        from repro.serve import EvaluateRequest

        direct = server.client.service.oracle.evaluate(
            EvaluateRequest.for_config(StackConfig.from_dict(config))
        )
        assert evaluation["u_eng_uj_per_bit"] == direct.u_eng_uj_per_bit
        assert evaluation["max_goodput_kbps"] == direct.max_goodput_kbps

    def test_invalid_config_maps_to_400(self, server):
        status, body = post(
            server, "/v1/evaluate", {"config": {"ptx_level": 30}}
        )
        assert status == 400
        assert body["error"]["type"] == "ProtocolError"


class TestOperationalEndpoints:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queue_capacity"] >= 1
        assert "cache" in body

    def test_metrics_accumulate(self, server):
        post(server, "/v1/recommend", {"link": {"distance_m": 10.0}})
        status, body = get(server, "/metrics")
        assert status == 200
        assert body["counters"]["requests_completed_total"] >= 1
        assert body["counters"]["http_status_200_total"] >= 1
        assert body["latency"]["http_request_s"]["count"] >= 1
        assert body["latency"]["request_total_s"]["p99_s"] >= 0.0

    def test_unknown_route_maps_to_404(self, server):
        status, body = post(server, "/v1/optimize", {"link": {"distance_m": 5}})
        assert status == 404
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            get(server, "/nope")
        assert exc_info.value.code == 404


class TestStructuredErrors:
    """Every rejected request carries a machine-readable error body."""

    def test_error_body_has_type_code_and_message(self, server):
        status, body = post(server, "/v1/recommend", {"link": {}})
        assert status == 400
        error = body["error"]
        assert error["type"] == "ProtocolError"
        assert error["code"] == "protocol_error"
        assert isinstance(error["message"], str) and error["message"]

    def test_error_body_names_the_offending_field(self, server):
        status, body = post(
            server, "/v1/recommend", {"link": {"snr_db": "high"}}
        )
        assert status == 400
        assert body["error"]["field"] == "snr_db"

    def test_malformed_json_body_is_structured(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/recommend",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 400
        body = json.loads(exc_info.value.read())
        assert body["error"]["code"] == "protocol_error"
        assert body["error"]["field"] == "body"

    def test_protocol_rejections_are_counted(self, server):
        _, before = get(server, "/metrics")
        rejected_before = before["counters"].get(
            "requests_rejected_protocol", 0
        )
        post(server, "/v1/recommend", {"link": {}})
        post(server, "/v1/recommend", {"link": {"distance_m": -1.0}})
        _, after = get(server, "/metrics")
        assert (
            after["counters"]["requests_rejected_protocol"]
            == rejected_before + 2
        )

    def test_infeasible_conflict_is_not_a_protocol_rejection(self, server):
        _, before = get(server, "/metrics")
        rejected_before = before["counters"].get(
            "requests_rejected_protocol", 0
        )
        status, body = post(
            server,
            "/v1/recommend",
            {
                "link": {"distance_m": 10.0},
                "constraints": [{"objective": "loss", "max": -1.0}],
            },
        )
        assert status == 409
        assert body["error"]["code"] == "infeasible_error"
        _, after = get(server, "/metrics")
        assert (
            after["counters"].get("requests_rejected_protocol", 0)
            == rejected_before
        )
