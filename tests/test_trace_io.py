"""Trace export/import tests (repro.sim.trace_io)."""

import json
import math

import pytest

from repro.config import StackConfig
from repro.errors import DatasetError
from repro.sim import LinkTrace, load_trace, save_trace, simulate_link
from repro.sim.trace import PacketFate


@pytest.fixture(scope="module")
def trace_and_config():
    config = StackConfig(
        distance_m=20.0, ptx_level=23, n_max_tries=3, q_max=30,
        t_pkt_ms=50.0, payload_bytes=65,
    )
    return simulate_link(config, n_packets=120, seed=5), config


class TestRoundtrip:
    def test_full_roundtrip(self, trace_and_config, tmp_path):
        trace, config = trace_and_config
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path, config=config, description="test export")
        loaded, loaded_config = load_trace(path)
        assert loaded_config == config
        assert len(loaded.packets) == len(trace.packets)
        assert len(loaded.transmissions) == len(trace.transmissions)
        assert loaded.duration_s == pytest.approx(trace.duration_s)
        assert loaded.tx_energy_j == pytest.approx(trace.tx_energy_j)

    def test_packet_fields_preserved(self, trace_and_config, tmp_path):
        trace, config = trace_and_config
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path, config=config)
        loaded, _ = load_trace(path)
        for original, restored in zip(trace.packets, loaded.packets):
            assert restored.seq == original.seq
            assert restored.fate == original.fate
            assert restored.n_tries == original.n_tries
            assert restored.first_delivery_s == original.first_delivery_s

    def test_transmission_fields_preserved(self, trace_and_config, tmp_path):
        trace, config = trace_and_config
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded, loaded_config = load_trace(path)
        assert loaded_config is None
        first = trace.transmissions[0]
        restored = loaded.transmissions[0]
        assert restored.rssi_dbm == pytest.approx(first.rssi_dbm)
        assert restored.acked == first.acked

    def test_loaded_trace_validates(self, trace_and_config, tmp_path):
        trace, config = trace_and_config
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path, config=config)
        loaded, _ = load_trace(path)
        loaded.validate()

    def test_metrics_identical_after_roundtrip(self, trace_and_config, tmp_path):
        from repro.analysis import compute_metrics

        trace, config = trace_and_config
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path, config=config)
        loaded, _ = load_trace(path)
        original = compute_metrics(trace)
        restored = compute_metrics(loaded)
        assert restored.per == pytest.approx(original.per)
        assert restored.goodput_bps == pytest.approx(original.goodput_bps)
        assert restored.mean_delay_s == pytest.approx(original.mean_delay_s)

    def test_without_transmissions(self, trace_and_config, tmp_path):
        trace, config = trace_and_config
        path = tmp_path / "small.jsonl"
        save_trace(trace, path, include_transmissions=False)
        loaded, _ = load_trace(path)
        assert not loaded.transmissions
        assert len(loaded.packets) == len(trace.packets)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_trace(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_trace(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(DatasetError):
            load_trace(path)

    def test_truncated(self, trace_and_config, tmp_path):
        trace, config = trace_and_config
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path, include_transmissions=False)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(DatasetError):
            load_trace(path)

    def test_unknown_row_kind(self, tmp_path):
        path = tmp_path / "bad_row.jsonl"
        header = {"format": "repro-trace-v1", "n_packets": 0}
        path.write_text(json.dumps(header) + "\n" + '{"kind": "mystery"}\n')
        with pytest.raises(DatasetError):
            load_trace(path)

    def test_bad_json_row(self, tmp_path):
        path = tmp_path / "bad_json.jsonl"
        header = {"format": "repro-trace-v1", "n_packets": 0}
        path.write_text(json.dumps(header) + "\n" + "{not json\n")
        with pytest.raises(DatasetError):
            load_trace(path)
