"""MAC-layer tests: CSMA, ACK policy, retry policy (repro.mac)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.mac import (
    AckPolicy,
    AttemptResult,
    CsmaParameters,
    RetryDecision,
    RetryPolicy,
    UNIT_BACKOFF_PERIOD_S,
    UnslottedCsma,
    ack_frame_bytes,
)


class TestCsmaParameters:
    def test_default_mean_matches_paper(self):
        params = CsmaParameters()
        assert params.mean_initial_backoff_s == pytest.approx(5.28e-3)

    def test_validation(self):
        with pytest.raises(SimulationError):
            CsmaParameters(max_initial_backoff_s=-1.0)
        with pytest.raises(SimulationError):
            CsmaParameters(cca_busy_prob=1.0)
        with pytest.raises(SimulationError):
            CsmaParameters(max_cca_attempts=0)


class TestUnslottedCsma:
    def test_initial_backoff_within_bounds_and_quantized(self):
        csma = UnslottedCsma(CsmaParameters(), np.random.default_rng(0))
        for _ in range(200):
            b = csma.initial_backoff_s()
            assert 0.0 <= b <= CsmaParameters().max_initial_backoff_s + 1e-9
            periods = b / UNIT_BACKOFF_PERIOD_S
            assert periods == pytest.approx(round(periods), abs=1e-9)

    def test_mean_backoff_near_paper_value(self):
        csma = UnslottedCsma(CsmaParameters(), np.random.default_rng(1))
        samples = [csma.initial_backoff_s() for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(5.28e-3, rel=0.05)

    def test_clear_channel_grants_first_cca(self):
        csma = UnslottedCsma(CsmaParameters(cca_busy_prob=0.0), np.random.default_rng(2))
        access = csma.access_channel()
        assert access.granted
        assert access.cca_attempts == 1

    def test_busy_channel_costs_backoffs(self):
        clear = UnslottedCsma(
            CsmaParameters(cca_busy_prob=0.0), np.random.default_rng(3)
        )
        busy = UnslottedCsma(
            CsmaParameters(cca_busy_prob=0.6), np.random.default_rng(3)
        )
        clear_delay = np.mean([clear.access_channel().delay_s for _ in range(500)])
        busy_delay = np.mean([busy.access_channel().delay_s for _ in range(500)])
        assert busy_delay > clear_delay

    def test_saturated_channel_eventually_fails(self):
        csma = UnslottedCsma(
            CsmaParameters(cca_busy_prob=0.95, max_cca_attempts=3),
            np.random.default_rng(4),
        )
        results = [csma.access_channel() for _ in range(300)]
        failures = [r for r in results if not r.granted]
        assert failures
        assert all(r.cca_attempts == 3 for r in failures)

    def test_deterministic_under_seed(self):
        def run(seed):
            csma = UnslottedCsma(CsmaParameters(), np.random.default_rng(seed))
            return [csma.access_channel().delay_s for _ in range(20)]

        assert run(5) == run(5)


class TestRetryPolicy:
    def test_success_on_ack(self):
        policy = RetryPolicy(n_max_tries=3)
        assert policy.decide(1, acked=True) is RetryDecision.SUCCESS
        assert policy.decide(3, acked=True) is RetryDecision.SUCCESS

    def test_retry_while_budget_remains(self):
        policy = RetryPolicy(n_max_tries=3)
        assert policy.decide(1, acked=False) is RetryDecision.RETRY
        assert policy.decide(2, acked=False) is RetryDecision.RETRY

    def test_drop_at_budget(self):
        policy = RetryPolicy(n_max_tries=3)
        assert policy.decide(3, acked=False) is RetryDecision.DROP

    def test_no_retransmission_policy(self):
        policy = RetryPolicy(n_max_tries=1)
        assert not policy.retransmissions_enabled
        assert policy.decide(1, acked=False) is RetryDecision.DROP

    def test_rejects_invalid_attempts(self):
        policy = RetryPolicy(n_max_tries=2)
        with pytest.raises(SimulationError):
            policy.decide(0, acked=True)
        with pytest.raises(SimulationError):
            policy.decide(3, acked=False)

    def test_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(n_max_tries=0)
        with pytest.raises(SimulationError):
            RetryPolicy(n_max_tries=1, d_retry_s=-0.1)

    @given(
        tries=st.integers(min_value=1, max_value=10),
        budget=st.integers(min_value=1, max_value=10),
        acked=st.booleans(),
    )
    def test_decision_total_function(self, tries, budget, acked):
        """Every in-range (tries, acked) maps to exactly one decision."""
        if tries > budget:
            return
        decision = RetryPolicy(n_max_tries=budget).decide(tries, acked)
        if acked:
            assert decision is RetryDecision.SUCCESS
        elif tries < budget:
            assert decision is RetryDecision.RETRY
        else:
            assert decision is RetryDecision.DROP


class TestAck:
    def test_ack_frame_size(self):
        assert ack_frame_bytes() == 11

    def test_attempt_result_invariant(self):
        with pytest.raises(SimulationError):
            AttemptResult(data_delivered=False, acked=True, attempt_duration_s=0.01)
        with pytest.raises(SimulationError):
            AttemptResult(data_delivered=True, acked=True, attempt_duration_s=-1.0)

    def test_ack_policy_validation(self):
        with pytest.raises(SimulationError):
            AckPolicy(timeout_s=0.0)

    def test_default_timeout_is_paper_value(self):
        assert AckPolicy().timeout_s == pytest.approx(8.192e-3)
