"""Codec wire-format tests: boundary round trips and defect rejection."""

import numpy as np
import pytest

from repro.errors import ProtocolError, TelemetryError
from repro.telemetry import (
    FIELD_KINDS,
    PayloadField,
    PayloadTemplate,
    TEMPLATE_REGISTRY,
    UPLINK_TEMPLATE_EXACT,
    UPLINK_TEMPLATE_V1,
    UplinkCodec,
    decode_uplink_batch,
    default_codecs,
)

INT_KINDS = [kind for kind, spec in FIELD_KINDS.items() if not spec.is_float]


def one_field_codec(kind: str, scale: float = 1.0) -> UplinkCodec:
    template = PayloadTemplate(
        name=f"test-{kind}",
        version=9,
        fields=(PayloadField(name="value", kind=kind, scale=scale),),
    )
    return UplinkCodec(template)


class TestScalarBoundaries:
    @pytest.mark.parametrize("kind", INT_KINDS)
    def test_integer_min_max_round_trip(self, kind):
        spec = FIELD_KINDS[kind]
        codec = one_field_codec(kind)
        for raw in (spec.raw_min, 0, spec.raw_max):
            frame = codec.encode({"value": raw})
            assert len(frame) == codec.frame_bytes
            assert codec.decode(frame) == {"value": raw}

    @pytest.mark.parametrize("kind", INT_KINDS)
    def test_out_of_range_raises(self, kind):
        spec = FIELD_KINDS[kind]
        codec = one_field_codec(kind)
        for raw in (spec.raw_min - 1, spec.raw_max + 1):
            with pytest.raises(TelemetryError):
                codec.encode({"value": raw})

    def test_negative_fixed_point_round_trip(self):
        codec = one_field_codec("i16", scale=0.01)
        for value in (-327.68, -95.22, -0.01, 0.0, 0.01, 327.67):
            decoded = codec.decode(codec.encode({"value": value}))["value"]
            assert decoded == pytest.approx(value, abs=1e-9)

    def test_fixed_point_out_of_range_raises(self):
        codec = one_field_codec("i16", scale=0.01)
        with pytest.raises(TelemetryError):
            codec.encode({"value": -327.69})
        with pytest.raises(TelemetryError):
            codec.encode({"value": 327.68})

    def test_float64_is_bit_exact(self):
        codec = one_field_codec("f64")
        for value in (0.1, -1e-300, 1e300, 7.123456789012345):
            assert codec.decode(codec.encode({"value": value})) == {
                "value": value
            }

    def test_unknown_and_missing_fields_raise(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        with pytest.raises(TelemetryError):
            codec.encode({"link_id": 1, "seq": 0, "bogus": 1.0})
        with pytest.raises(TelemetryError):
            codec.encode({"link_id": 1})


class TestFrameDefects:
    def test_truncated_frame_raises(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        frame = codec.encode(
            {"link_id": 1, "seq": 2, "rssi_dbm": -70.0,
             "noise_dbm": -90.0, "plr": 0.0}
        )
        with pytest.raises(ProtocolError):
            codec.decode(frame[:-1])
        with pytest.raises(ProtocolError):
            codec.decode_batch(frame[:-1])

    def test_corrupt_version_byte_raises(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        frame = codec.encode(
            {"link_id": 1, "seq": 2, "rssi_dbm": -70.0,
             "noise_dbm": -90.0, "plr": 0.0}
        )
        corrupt = bytes([UPLINK_TEMPLATE_V1.version + 1]) + frame[1:]
        with pytest.raises(ProtocolError):
            codec.decode(corrupt)
        # In a batch, the defect is located even mid-payload.
        with pytest.raises(ProtocolError, match="frame 1"):
            codec.decode_batch(frame + corrupt)

    def test_dispatch_rejects_empty_and_unknown_version(self):
        codecs = default_codecs()
        with pytest.raises(ProtocolError):
            decode_uplink_batch(b"", codecs)
        with pytest.raises(ProtocolError):
            decode_uplink_batch(b"\xff" + b"\x00" * 12, codecs)

    def test_error_carries_field_attribute(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        with pytest.raises(ProtocolError) as exc_info:
            codec.decode_batch(b"\x01\x02")
        assert exc_info.value.field == "payload"


class TestBatch:
    def columns(self, n):
        rng = np.random.default_rng(7)
        return {
            "link_id": np.arange(n, dtype=np.int64) % 97,
            "seq": np.arange(n, dtype=np.int64) % (1 << 16),
            "rssi_dbm": np.round(rng.uniform(-95.0, -40.0, n), 2),
            "noise_dbm": np.round(rng.uniform(-100.0, -90.0, n), 2),
            "plr": np.round(rng.uniform(0.0, 0.9999, n), 4),
        }

    def test_batch_round_trip_identity(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        columns = self.columns(500)
        decoded = codec.decode_batch(codec.encode_batch(columns))
        for name, column in columns.items():
            np.testing.assert_allclose(
                decoded[name], column, rtol=0.0, atol=1e-9
            )

    def test_max_length_batch_round_trip(self):
        from repro.serve.protocol import MAX_TELEMETRY_UPLINKS

        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        columns = self.columns(MAX_TELEMETRY_UPLINKS)
        payload = codec.encode_batch(columns)
        assert len(payload) == MAX_TELEMETRY_UPLINKS * codec.frame_bytes
        decoded = codec.decode_batch(payload)
        np.testing.assert_array_equal(decoded["link_id"], columns["link_id"])
        np.testing.assert_allclose(
            decoded["rssi_dbm"], columns["rssi_dbm"], rtol=0.0, atol=1e-9
        )

    def test_batch_matches_scalar_frame_for_frame(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        columns = self.columns(64)
        payload = codec.encode_batch(columns)
        frame_bytes = codec.frame_bytes
        decoded = codec.decode_batch(payload)
        for row in range(64):
            frame = payload[row * frame_bytes : (row + 1) * frame_bytes]
            scalar = codec.decode(frame)
            for name, value in scalar.items():
                assert decoded[name][row] == pytest.approx(value, abs=0.0)

    def test_batch_out_of_range_raises(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        columns = self.columns(8)
        columns["rssi_dbm"] = columns["rssi_dbm"] + 1e6
        with pytest.raises(TelemetryError):
            codec.encode_batch(columns)

    def test_batch_non_finite_raises(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        columns = self.columns(8)
        columns["plr"] = columns["plr"].copy()
        columns["plr"][3] = np.nan
        with pytest.raises(TelemetryError):
            codec.encode_batch(columns)

    def test_misaligned_columns_raise(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        columns = self.columns(8)
        columns["seq"] = columns["seq"][:4]
        with pytest.raises(TelemetryError):
            codec.encode_batch(columns)

    def test_u64_column_keeps_uint64(self):
        codec = one_field_codec("u64")
        top = np.array([0, 2**64 - 1], dtype=np.uint64)
        decoded = codec.decode_batch(codec.encode_batch({"value": top}))
        assert decoded["value"].dtype == np.uint64
        np.testing.assert_array_equal(decoded["value"], top)

    def test_exact_template_is_bit_exact(self):
        codec = UplinkCodec(UPLINK_TEMPLATE_EXACT)
        rng = np.random.default_rng(3)
        columns = {
            "link_id": np.arange(32, dtype=np.int64),
            "seq": np.arange(32, dtype=np.int64),
            "snr_db": rng.normal(15.0, 5.0, 32),
            "plr": rng.uniform(0.0, 1.0, 32),
        }
        decoded = codec.decode_batch(codec.encode_batch(columns))
        np.testing.assert_array_equal(decoded["snr_db"], columns["snr_db"])
        np.testing.assert_array_equal(decoded["plr"], columns["plr"])


class TestTemplateValidation:
    def test_registry_versions_match_templates(self):
        for version, template in TEMPLATE_REGISTRY.items():
            assert template.version == version

    def test_bad_field_configurations_raise(self):
        with pytest.raises(TelemetryError):
            PayloadField(name="_private", kind="u8")
        with pytest.raises(TelemetryError):
            PayloadField(name="x", kind="u128")
        with pytest.raises(TelemetryError):
            PayloadField(name="x", kind="u8", scale=0.0)
        with pytest.raises(TelemetryError):
            PayloadField(name="x", kind="f32", scale=0.5)

    def test_bad_template_configurations_raise(self):
        field = PayloadField(name="x", kind="u8")
        with pytest.raises(TelemetryError):
            PayloadTemplate(name="t", version=256, fields=(field,))
        with pytest.raises(TelemetryError):
            PayloadTemplate(name="t", version=1, fields=())
        with pytest.raises(TelemetryError):
            PayloadTemplate(name="t", version=1, fields=(field, field))
        with pytest.raises(TelemetryError):
            PayloadTemplate(
                name="t", version=1, fields=(field,), endianness="mixed"
            )

    def test_little_endian_round_trip(self):
        template = PayloadTemplate(
            name="le",
            version=5,
            fields=(PayloadField(name="value", kind="i32"),),
            endianness="little",
        )
        codec = UplinkCodec(template)
        assert codec.decode(codec.encode({"value": -123456})) == {
            "value": -123456
        }
        decoded = codec.decode_batch(
            codec.encode_batch({"value": np.array([-5, 5], dtype=np.int64)})
        )
        np.testing.assert_array_equal(decoded["value"], [-5, 5])
