"""Oracle and cache tests (repro.serve.oracle, repro.serve.cache)."""

import pytest

from repro.config import StackConfig
from repro.core.optimization import (
    Constraint,
    ModelEvaluator,
    TuningGrid,
    solve_epsilon_constraint,
)
from repro.errors import (
    InfeasibleError,
    OptimizationError,
    ProtocolError,
    ServeError,
)
from repro.serve import (
    EvaluateRequest,
    LinkSpec,
    LruCache,
    Oracle,
    RecommendRequest,
    SweepTable,
    TIER_LRU,
    TIER_MISS,
    TIER_PRECOMPUTED,
)


SMALL_GRID = TuningGrid(
    ptx_levels=(3, 15, 31),
    payload_values_bytes=(20, 65, 110),
    n_max_tries_values=(1, 3),
    q_max_values=(1, 30),
)


@pytest.fixture
def oracle():
    return Oracle(grid=SMALL_GRID, lru_capacity=4)


class TestLinkSpec:
    def test_requires_exactly_one_of_distance_or_snr(self):
        with pytest.raises(ProtocolError):
            LinkSpec()
        with pytest.raises(ProtocolError):
            LinkSpec(distance_m=10.0, snr_db=6.0)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ProtocolError):
            LinkSpec(distance_m=0.0)

    def test_key_distinguishes_link_kinds(self):
        assert LinkSpec(distance_m=10.0).key() != LinkSpec(snr_db=10.0).key()

    def test_key_rounds_float_noise(self):
        a = LinkSpec(distance_m=10.0)
        b = LinkSpec(distance_m=10.0 + 1e-9)
        assert a.key() == b.key()

    def test_snr_map_follows_reference_convention(self, hallway_env):
        from repro.core.optimization import snr_map_from_reference

        link = LinkSpec(snr_db=6.0, reference_level=31)
        assert link.snr_map(hallway_env) == snr_map_from_reference(6.0, 31)


class TestSweepTable:
    def test_solve_matches_reference_solver(self, hallway_env):
        link = LinkSpec(distance_m=20.0)
        evaluator = ModelEvaluator(snr_by_level=link.snr_map(hallway_env))
        table = SweepTable.build(evaluator, SMALL_GRID, 20.0)
        for objective in ("energy", "goodput", "delay", "loss"):
            constraints = (Constraint(objective="rho", upper_bound=1.0),)
            assert table.solve(objective, constraints) == (
                solve_epsilon_constraint(
                    list(table.evaluations), objective, constraints
                )
            )

    def test_infeasible_constraints_raise(self, hallway_env):
        link = LinkSpec(distance_m=20.0)
        evaluator = ModelEvaluator(snr_by_level=link.snr_map(hallway_env))
        table = SweepTable.build(evaluator, SMALL_GRID, 20.0)
        with pytest.raises(InfeasibleError):
            table.solve("energy", (Constraint("loss", upper_bound=-1.0),))

    def test_unknown_objective_rejected(self, hallway_env):
        link = LinkSpec(distance_m=20.0)
        evaluator = ModelEvaluator(snr_by_level=link.snr_map(hallway_env))
        table = SweepTable.build(evaluator, SMALL_GRID, 20.0)
        with pytest.raises(OptimizationError):
            table.column("throughput")


class TestOracleCaching:
    def test_cached_answer_equals_uncached(self, oracle):
        request = RecommendRequest(
            link=LinkSpec(distance_m=10.0), objective="energy"
        )
        cold = oracle.recommend(request)
        warm = oracle.recommend(request)
        reference = oracle.uncached_recommend(request)
        assert cold.cache_tier == TIER_MISS
        assert warm.cache_tier == TIER_LRU
        assert cold.evaluation == warm.evaluation == reference

    def test_precomputed_tier_hit(self, oracle):
        assert oracle.precompute([10.0]) == 1
        result = oracle.recommend(
            RecommendRequest(link=LinkSpec(distance_m=10.0))
        )
        assert result.cache_tier == TIER_PRECOMPUTED
        # re-precomputing the same link is a no-op
        assert oracle.precompute([10.0]) == 0

    def test_precomputed_equals_lru_equals_uncached(self, oracle):
        request = RecommendRequest(
            link=LinkSpec(distance_m=15.0), objective="goodput"
        )
        uncached = oracle.uncached_recommend(request)
        lru = oracle.recommend(request).evaluation
        oracle2 = Oracle(grid=SMALL_GRID)
        oracle2.precompute([15.0])
        precomputed = oracle2.recommend(request).evaluation
        assert uncached == lru == precomputed

    def test_snr_links_cache_separately_from_distance(self, oracle):
        by_snr = oracle.recommend(RecommendRequest(link=LinkSpec(snr_db=6.0)))
        again = oracle.recommend(RecommendRequest(link=LinkSpec(snr_db=6.0)))
        assert by_snr.cache_tier == TIER_MISS
        assert again.cache_tier == TIER_LRU
        assert by_snr.evaluation == again.evaluation

    def test_cache_info_counters(self, oracle):
        oracle.precompute([10.0])
        oracle.recommend(RecommendRequest(link=LinkSpec(distance_m=10.0)))
        oracle.recommend(RecommendRequest(link=LinkSpec(distance_m=11.0)))
        oracle.recommend(RecommendRequest(link=LinkSpec(distance_m=11.0)))
        info = oracle.cache_info()
        assert info["precomputed"] == {"tables": 1, "hits": 1}
        assert info["lru"]["hits"] == 1
        assert info["misses"] == 1
        assert info["table_builds"] == 2  # precompute + the 11 m miss
        assert info["grid_size"] == len(SMALL_GRID)

    def test_evaluate_matches_direct_model_evaluation(self, oracle, hallway_env):
        request = EvaluateRequest.for_config(
            StackConfig(distance_m=20.0, ptx_level=31, payload_bytes=65)
        )
        direct = ModelEvaluator(
            snr_by_level=request.link.snr_map(hallway_env)
        ).evaluate(request.config)
        assert oracle.evaluate(request) == direct


class TestLruCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ServeError):
            LruCache(0)

    def test_eviction_order_is_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_stats_account_hits_misses_evictions(self):
        cache = LruCache(1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.put("b", 2)
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.size == 1
        assert stats.capacity == 1
        assert stats.hit_rate == 0.5
