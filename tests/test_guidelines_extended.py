"""Extended guideline-engine and recommendation coverage."""

import pytest

from repro.core import GuidelineEngine, PerModel
from repro.core.constants import ExpFitCoefficients
from repro.core.guidelines import Recommendation
from repro.errors import OptimizationError


@pytest.fixture
def engine():
    return GuidelineEngine()


def uniform_map(snr):
    from repro.radio import cc2420

    return {lvl: snr for lvl in cc2420.PA_LEVELS}


class TestRecommendation:
    def test_changes_empty_by_default(self):
        assert Recommendation().changes() == {}

    def test_changes_includes_only_set_fields(self):
        rec = Recommendation(ptx_level=31, t_pkt_ms=40.0)
        assert rec.changes() == {"ptx_level": 31, "t_pkt_ms": 40.0}

    def test_changes_apply_to_config(self):
        from repro.config import StackConfig

        rec = Recommendation(payload_bytes=60, n_max_tries=4)
        updated = StackConfig().with_updates(**rec.changes())
        assert updated.payload_bytes == 60 and updated.n_max_tries == 4


class TestEnergyGuidelineEdges:
    def test_all_levels_equal_snr(self, engine):
        """With identical SNR everywhere, the cheapest level is picked."""
        rec = engine.recommend_for_energy(uniform_map(25.0))
        assert rec.ptx_level == 3
        assert rec.payload_bytes == 114

    def test_refitted_models_shift_threshold(self):
        """An engine built on harsher fitted coefficients shrinks payloads."""
        harsh = GuidelineEngine(
            energy_model=__import__("repro.core", fromlist=["EnergyModel"]).EnergyModel(
                per_model=PerModel(
                    coefficients=ExpFitCoefficients(alpha=0.05, beta=-0.10)
                )
            )
        )
        default = GuidelineEngine()
        snr_map = uniform_map(15.0)
        assert (
            harsh.recommend_for_energy(snr_map).payload_bytes
            <= default.recommend_for_energy(snr_map).payload_bytes
        )

    def test_custom_max_payload(self):
        engine = GuidelineEngine(max_payload=64)
        rec = engine.recommend_for_energy(uniform_map(30.0))
        assert rec.payload_bytes == 64


class TestGoodputGuidelineEdges:
    def test_single_retry_option(self, engine):
        rec = engine.recommend_for_goodput(
            uniform_map(25.0), n_max_tries_options=(1,)
        )
        assert rec.n_max_tries == 1

    def test_retry_delay_parameter_respected(self, engine):
        no_delay = engine.recommend_for_goodput(uniform_map(8.0))
        with_delay = engine.recommend_for_goodput(
            uniform_map(8.0), d_retry_ms=100.0
        )
        assert (
            with_delay.predicted["max_goodput_kbps"]
            <= no_delay.predicted["max_goodput_kbps"]
        )


class TestDelayGuidelineEdges:
    def test_target_rho_validation(self, engine):
        with pytest.raises(OptimizationError):
            engine.recommend_for_delay(
                snr_db=20.0, t_pkt_ms=50.0, payload_bytes=50, n_max_tries=1,
                target_rho=1.5,
            )

    def test_tighter_target_shrinks_more(self, engine):
        loose = engine.recommend_for_delay(
            snr_db=12.0, t_pkt_ms=25.0, payload_bytes=110, n_max_tries=3,
            target_rho=0.95,
        )
        tight = engine.recommend_for_delay(
            snr_db=12.0, t_pkt_ms=25.0, payload_bytes=110, n_max_tries=3,
            target_rho=0.6,
        )
        assert tight.predicted["rho"] <= loose.predicted["rho"] + 1e-9

    def test_rationale_always_present(self, engine):
        rec = engine.recommend_for_delay(
            snr_db=25.0, t_pkt_ms=100.0, payload_bytes=50, n_max_tries=1
        )
        assert rec.rationale


class TestLossGuidelineEdges:
    def test_tight_target_needs_more_tries(self, engine):
        loose = engine.recommend_for_loss(
            snr_db=12.0, t_pkt_ms=200.0, payload_bytes=110,
            target_plr_radio=0.1,
        )
        tight = engine.recommend_for_loss(
            snr_db=12.0, t_pkt_ms=200.0, payload_bytes=110,
            target_plr_radio=1e-4,
        )
        assert tight.n_max_tries >= loose.n_max_tries

    def test_queue_options_respected(self, engine):
        rec = engine.recommend_for_loss(
            snr_db=8.0, t_pkt_ms=10.0, payload_bytes=110,
            q_max_options=(5, 50),
        )
        assert rec.q_max in (5, 50)

    def test_predictions_consistent_with_models(self, engine):
        rec = engine.recommend_for_loss(
            snr_db=15.0, t_pkt_ms=100.0, payload_bytes=80
        )
        expected = engine.plr_model.plr_radio(80, 15.0, rec.n_max_tries)
        assert rec.predicted["plr_radio"] == pytest.approx(float(expected))
