"""Sensitivity-analysis tests (repro.core.optimization.sensitivity)."""

import math

import pytest

from repro.config import StackConfig
from repro.core.optimization import (
    ModelEvaluator,
    analyze_sensitivity,
    dominant_parameter,
    rank_parameters,
    snr_map_from_reference,
)
from repro.core.optimization.sensitivity import DEFAULT_AXES, METRICS
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def evaluator():
    return ModelEvaluator(snr_by_level=snr_map_from_reference(12.0))


@pytest.fixture(scope="module")
def base():
    return StackConfig(
        ptx_level=31, payload_bytes=80, n_max_tries=3, t_pkt_ms=50.0, q_max=30
    )


@pytest.fixture(scope="module")
def sensitivities(evaluator, base):
    return analyze_sensitivity(evaluator, base)


class TestAnalyze:
    def test_full_cross_product(self, sensitivities):
        assert len(sensitivities) == len(DEFAULT_AXES) * len(METRICS)

    def test_spans_nonnegative(self, sensitivities):
        assert all(
            s.span >= 0 or math.isinf(s.span) for s in sensitivities
        )

    def test_best_not_worse_than_worst(self, sensitivities):
        for s in sensitivities:
            assert s.best_value <= s.worst_value

    def test_settings_come_from_axes(self, sensitivities):
        for s in sensitivities:
            axis = DEFAULT_AXES[s.parameter]
            assert s.best_setting in axis
            assert s.worst_setting in axis

    def test_custom_axes(self, evaluator, base):
        sens = analyze_sensitivity(
            evaluator, base, axes={"payload_bytes": (20, 110)}
        )
        assert len(sens) == len(METRICS)
        assert all(s.parameter == "payload_bytes" for s in sens)

    def test_relative_span(self, sensitivities):
        for s in sensitivities:
            if s.base_value != 0 and not math.isinf(s.span):
                assert s.relative_span == pytest.approx(
                    s.span / abs(s.base_value)
                )

    def test_validation(self, evaluator, base):
        with pytest.raises(OptimizationError):
            analyze_sensitivity(evaluator, base, axes={"bogus": (1,)})
        with pytest.raises(OptimizationError):
            analyze_sensitivity(evaluator, base, axes={"q_max": ()})
        with pytest.raises(OptimizationError):
            analyze_sensitivity(evaluator, base, metrics=())


class TestRanking:
    def test_rank_sorted_descending(self, sensitivities):
        ranked = rank_parameters(sensitivities, "goodput")
        spans = [
            -math.inf if math.isinf(r.span) else -r.span for r in ranked
        ]
        assert spans == sorted(spans)

    def test_rank_covers_all_parameters(self, sensitivities):
        ranked = rank_parameters(sensitivities, "loss")
        assert {r.parameter for r in ranked} == set(DEFAULT_AXES)

    def test_dominant_is_rank_head(self, sensitivities):
        assert (
            dominant_parameter(sensitivities, "energy")
            == rank_parameters(sensitivities, "energy")[0].parameter
        )

    def test_unknown_metric(self, sensitivities):
        with pytest.raises(OptimizationError):
            rank_parameters(sensitivities, "happiness")

    def test_power_dominates_loss_on_wide_sweep(self, sensitivities):
        """With level 3 in range (which kills this link), power must rank
        as the most loss-critical knob."""
        assert dominant_parameter(sensitivities, "loss") == "ptx_level"
