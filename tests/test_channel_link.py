"""Environment and composed link-channel tests (repro.channel)."""

import numpy as np
import pytest

from repro.channel import (
    Environment,
    HALLWAY_2012,
    LinkChannel,
    QUIET_HALLWAY,
)
from repro.errors import ChannelError
from repro.radio import cc2420


class TestEnvironment:
    def test_hallway_has_35m_extras(self):
        assert HALLWAY_2012.slow_sigma_at(35.0) > HALLWAY_2012.slow_sigma_at(10.0)
        assert HALLWAY_2012.human_shadowing_at(35.0) is not None
        assert HALLWAY_2012.human_shadowing_at(10.0) is None

    def test_quiet_variant_disables_dynamics(self):
        assert QUIET_HALLWAY.slow_sigma_db == 0.0
        assert QUIET_HALLWAY.fast_sigma_db == 0.0
        assert QUIET_HALLWAY.slow_sigma_at(35.0) == 0.0
        assert QUIET_HALLWAY.human_shadowing_at(35.0) is None

    def test_constant_noise_variant(self):
        env = HALLWAY_2012.with_constant_noise()
        assert env.noise.mean_dbm == -95.0
        assert env.noise.std_db == 0.0

    def test_analytic_ber_variant(self):
        env = HALLWAY_2012.with_analytic_ber()
        assert "analytic" in env.name

    def test_validation(self):
        with pytest.raises(ChannelError):
            Environment(slow_sigma_db=-1.0)
        with pytest.raises(ChannelError):
            Environment(slow_tau_s=0.0)


class TestLinkChannel:
    def test_mean_snr_increases_with_power(self, quiet_env):
        rng = np.random.default_rng(0)
        snrs = [
            LinkChannel(quiet_env, 20.0, lvl, rng).mean_snr_db
            for lvl in cc2420.PA_LEVELS
        ]
        assert snrs == sorted(snrs)
        # SNR gap between adjacent levels equals the dBm gap.
        assert snrs[-1] - snrs[0] == pytest.approx(25.0)

    def test_mean_snr_decreases_with_distance_overall(self, quiet_env):
        rng = np.random.default_rng(0)
        near = LinkChannel(quiet_env, 5.0, 31, rng).mean_snr_db
        far = LinkChannel(quiet_env, 35.0, 31, rng).mean_snr_db
        assert near > far

    def test_quiet_channel_rssi_constant(self, quiet_env):
        channel = LinkChannel(quiet_env, 20.0, 23, np.random.default_rng(0))
        rssi = [channel.sample(i * 0.1).rssi_dbm for i in range(20)]
        assert max(rssi) - min(rssi) < 1e-9

    def test_noisy_channel_rssi_varies(self, hallway_env):
        channel = LinkChannel(hallway_env, 20.0, 23, np.random.default_rng(0))
        rssi = [channel.sample(i * 0.1).rssi_dbm for i in range(200)]
        assert np.std(rssi) > 0.3

    def test_sample_fields_consistent(self, quiet_channel):
        sample = quiet_channel.sample(0.0)
        assert sample.snr_db == pytest.approx(sample.rssi_dbm - sample.noise_dbm)
        assert 50 <= sample.lqi <= 110

    def test_rssi_clamped_to_register(self, quiet_env):
        channel = LinkChannel(quiet_env, 35.0, 3, np.random.default_rng(0))
        sample = channel.sample(0.0)
        assert sample.rssi_dbm >= cc2420.RSSI_MIN_DBM

    def test_below_sensitivity_never_delivers(self, quiet_env):
        channel = LinkChannel(quiet_env, 35.0, 3, np.random.default_rng(0))
        sample = channel.sample(0.0)
        assert not sample.decodable
        outcomes = [
            channel.transmit_frame(0.1 * (i + 1), 129).delivered for i in range(50)
        ]
        assert not any(outcomes)

    def test_strong_link_mostly_delivers(self, quiet_env):
        channel = LinkChannel(quiet_env, 5.0, 31, np.random.default_rng(0))
        delivered = sum(
            channel.transmit_frame(0.01 * i, 129).delivered for i in range(200)
        )
        assert delivered > 195

    def test_deterministic_under_seed(self, hallway_env):
        def run(seed):
            channel = LinkChannel(hallway_env, 20.0, 23, np.random.default_rng(seed))
            return [channel.transmit_frame(0.05 * i, 129).delivered for i in range(50)]

        assert run(9) == run(9)

    def test_rejects_bad_distance(self, quiet_env):
        with pytest.raises(ChannelError):
            LinkChannel(quiet_env, -1.0, 31, np.random.default_rng(0))

    def test_35m_more_variable_than_10m(self, hallway_env):
        """Fig. 4's headline: the 35 m link has the largest RSSI deviation."""
        def rssi_std(distance, seed):
            channel = LinkChannel(
                hallway_env, distance, 31, np.random.default_rng(seed)
            )
            return np.std([channel.sample(i * 0.2).rssi_dbm for i in range(500)])

        assert rssi_std(35.0, 1) > rssi_std(10.0, 1)
