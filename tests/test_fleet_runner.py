"""Checkpointed fleet run tests: crash recovery must be bit-for-bit
(repro.fleet.runner + the generic campaign checkpoint helpers)."""

import json

import numpy as np
import pytest

from repro.campaign.checkpoint import (
    append_checkpoint_row,
    load_checkpoint_jsonl,
    write_checkpoint_header,
)
from repro.core.optimization import TuningGrid
from repro.errors import DatasetError, FleetError
from repro.fleet import (
    FLEET_CHECKPOINT_FORMAT,
    FleetDrift,
    FleetEngine,
    grid_topology,
    parse_fleet_row,
    run_fleet,
)

TINY_GRID = TuningGrid(
    ptx_levels=(3, 31),
    payload_values_bytes=(20, 110),
    n_max_tries_values=(1, 3),
    q_max_values=(1,),
)


def make_run(seed=7, n_links=12):
    topology = grid_topology(n_links, seed=seed)
    engine = FleetEngine(grid=TINY_GRID)
    drift = FleetDrift(topology, seed=seed)
    return topology, engine, drift


class TestRunFleet:
    def test_runs_all_steps(self, tmp_path):
        topology, engine, drift = make_run()
        result = run_fleet(topology, engine, drift, 5)
        assert result.n_steps_executed == 5
        assert result.n_steps_replayed == 0
        assert result.n_steps_total == 5
        assert [row["step"] for row in result.rows] == list(range(5))

    def test_checkpoint_file_has_header_and_rows(self, tmp_path):
        topology, engine, drift = make_run()
        path = tmp_path / "fleet.jsonl"
        run_fleet(topology, engine, drift, 3, checkpoint_path=path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == FLEET_CHECKPOINT_FORMAT
        assert header["n_links"] == 12
        assert len(lines) == 4

    def test_bad_step_count_rejected(self):
        topology, engine, drift = make_run()
        with pytest.raises(FleetError):
            run_fleet(topology, engine, drift, 0)

    def test_progress_callback_sees_every_step(self):
        topology, engine, drift = make_run()
        seen = []
        run_fleet(
            topology, engine, drift, 4, progress=lambda r: seen.append(r)
        )
        assert [report.step_index for report in seen] == [0, 1, 2, 3]


class TestCrashRecovery:
    def uninterrupted(self, n_steps=6):
        topology, engine, drift = make_run()
        return run_fleet(topology, engine, drift, n_steps)

    def resume_after_crash(self, tmp_path, mutilate, n_first=3, n_steps=6):
        """Run n_first steps, corrupt the file with ``mutilate``, resume."""
        path = tmp_path / "fleet.jsonl"
        topology, engine, drift = make_run()
        run_fleet(topology, engine, drift, n_first, checkpoint_path=path)
        mutilate(path)
        topology, engine, drift = make_run()
        return path, run_fleet(
            topology, engine, drift, n_steps,
            checkpoint_path=path, resume=True,
        )

    def assert_matches_uninterrupted(self, result):
        reference = self.uninterrupted()
        assert result.rows == reference.rows
        assert np.array_equal(
            result.state.config_index, reference.state.config_index
        )
        assert np.array_equal(
            result.state.objective_value,
            reference.state.objective_value,
            equal_nan=True,
        )

    def test_resume_continues_bit_for_bit(self, tmp_path):
        path, result = self.resume_after_crash(tmp_path, lambda p: None)
        assert result.n_steps_replayed == 3
        assert result.n_steps_executed == 3
        self.assert_matches_uninterrupted(result)

    def test_truncated_trailing_line_is_redone(self, tmp_path):
        def cut_mid_line(path):
            raw = path.read_bytes()
            path.write_bytes(raw[: len(raw) - 40])

        path, result = self.resume_after_crash(tmp_path, cut_mid_line)
        assert result.n_steps_replayed == 2
        assert result.n_steps_executed == 4
        self.assert_matches_uninterrupted(result)

    def test_trailing_multibyte_utf8_tail_is_redone(self, tmp_path):
        def append_cut_utf8(path):
            # A crash mid-write can split a multi-byte character: append a
            # line whose last UTF-8 sequence is cut after its first byte.
            with open(path, "ab") as handle:
                handle.write(b'{"step": 3, "note": "caf\xc3')

        path, result = self.resume_after_crash(tmp_path, append_cut_utf8)
        assert result.n_steps_replayed == 3
        assert result.n_steps_executed == 3
        self.assert_matches_uninterrupted(result)

    def test_trailing_row_missing_fields_is_redone(self, tmp_path):
        def append_partial_row(path):
            with open(path, "ab") as handle:
                handle.write(b'{"step": 3, "snr_db": [1.0]}\n')

        path, result = self.resume_after_crash(tmp_path, append_partial_row)
        assert result.n_steps_replayed == 3
        self.assert_matches_uninterrupted(result)

    def test_resumed_file_equals_uninterrupted_file(self, tmp_path):
        straight = tmp_path / "straight.jsonl"
        topology, engine, drift = make_run()
        run_fleet(topology, engine, drift, 6, checkpoint_path=straight)

        def cut_mid_line(path):
            raw = path.read_bytes()
            path.write_bytes(raw[: len(raw) - 25])

        path, _ = self.resume_after_crash(tmp_path, cut_mid_line)
        assert path.read_bytes() == straight.read_bytes()

    def test_wrong_seed_rejected(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        topology, engine, drift = make_run(seed=7)
        run_fleet(topology, engine, drift, 3, checkpoint_path=path)
        topology = grid_topology(12, seed=7)
        drift = FleetDrift(topology, seed=8)
        with pytest.raises(FleetError, match="SNR trajectory"):
            run_fleet(
                topology, FleetEngine(grid=TINY_GRID), drift, 6,
                checkpoint_path=path, resume=True,
            )

    def test_longer_checkpoint_than_run_rejected(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        topology, engine, drift = make_run()
        run_fleet(topology, engine, drift, 5, checkpoint_path=path)
        topology, engine, drift = make_run()
        with pytest.raises(FleetError, match="wrong run parameters"):
            run_fleet(
                topology, engine, drift, 3,
                checkpoint_path=path, resume=True,
            )

    def test_complete_checkpoint_executes_nothing(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        topology, engine, drift = make_run()
        run_fleet(topology, engine, drift, 4, checkpoint_path=path)
        topology, engine, drift = make_run()
        result = run_fleet(
            topology, engine, drift, 4, checkpoint_path=path, resume=True
        )
        assert result.n_steps_replayed == 4
        assert result.n_steps_executed == 0

    def test_without_resume_overwrites(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        topology, engine, drift = make_run()
        run_fleet(topology, engine, drift, 3, checkpoint_path=path)
        topology, engine, drift = make_run()
        result = run_fleet(topology, engine, drift, 2, checkpoint_path=path)
        assert result.n_steps_replayed == 0
        assert len(path.read_text().splitlines()) == 3  # header + 2 rows


class TestRowParsing:
    def test_valid_row_passes_through(self):
        row = {
            "step": 0,
            "snr_db": [1.0],
            "config_index": [2],
            "objective_value": [0.5],
            "n_reconfigured": 1,
            "n_infeasible": 0,
        }
        assert parse_fleet_row(dict(row)) == row

    @pytest.mark.parametrize(
        "missing",
        ["step", "snr_db", "config_index", "objective_value",
         "n_reconfigured", "n_infeasible"],
    )
    def test_missing_field_rejected(self, missing):
        row = {
            "step": 0,
            "snr_db": [1.0],
            "config_index": [2],
            "objective_value": [0.5],
            "n_reconfigured": 1,
            "n_infeasible": 0,
        }
        del row[missing]
        with pytest.raises(DatasetError):
            parse_fleet_row(row)


class TestGenericCheckpointHelpers:
    def test_header_requires_format_tag(self, tmp_path):
        with pytest.raises(DatasetError, match="'format' tag"):
            write_checkpoint_header(tmp_path / "x.jsonl", {"kind": "grid"})

    def test_roundtrip_with_custom_parser(self, tmp_path):
        path = tmp_path / "x.jsonl"
        write_checkpoint_header(path, {"format": "test-v1", "extra": 1})
        append_checkpoint_row(path, {"value": 1})
        append_checkpoint_row(path, {"value": 2})
        rows = load_checkpoint_jsonl(path, "test-v1", lambda row: row)
        assert [row["value"] for row in rows] == [1, 2]

    def test_wrong_format_tag_rejected(self, tmp_path):
        path = tmp_path / "x.jsonl"
        write_checkpoint_header(path, {"format": "other-v1"})
        with pytest.raises(DatasetError, match="unsupported checkpoint"):
            load_checkpoint_jsonl(path, "test-v1", lambda row: row)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="no checkpoint"):
            load_checkpoint_jsonl(
                tmp_path / "absent.jsonl", "test-v1", lambda row: row
            )

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "x.jsonl"
        write_checkpoint_header(path, {"format": "test-v1"})
        with open(path, "ab") as handle:
            handle.write(b'{"broken\n{"value": 2}\n')
        with pytest.raises(DatasetError):
            load_checkpoint_jsonl(path, "test-v1", lambda row: row)
