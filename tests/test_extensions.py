"""Extension tests: interference, LPL, mobility (repro.extensions)."""

import numpy as np
import pytest

from repro.channel import HALLWAY_2012, QUIET_HALLWAY
from repro.config import StackConfig
from repro.errors import ChannelError, SimulationError
from repro.extensions import (
    InterfererConfig,
    LplConfig,
    LplServiceTimeModel,
    MobileLinkChannel,
    MobilityTrace,
    interfered_csma,
    interfered_environment,
)
from repro.mac import CsmaParameters
from repro.sim import LinkSimulator, SimulationOptions
from repro.analysis import compute_metrics


class TestInterference:
    def test_collision_probability_grows_with_duty(self):
        low = InterfererConfig(duty_cycle=0.05)
        high = InterfererConfig(duty_cycle=0.4)
        assert high.collision_probability(4e-3) > low.collision_probability(4e-3)

    def test_collision_probability_grows_with_frame_time(self):
        intf = InterfererConfig(duty_cycle=0.2)
        assert intf.collision_probability(4e-3) > intf.collision_probability(1e-3)

    def test_zero_duty_no_collisions(self):
        assert InterfererConfig(duty_cycle=0.0).collision_probability(4e-3) == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            InterfererConfig(duty_cycle=1.0)
        with pytest.raises(SimulationError):
            InterfererConfig(mean_burst_s=0.0)

    def test_interfered_csma(self):
        params = interfered_csma(CsmaParameters(), InterfererConfig(duty_cycle=0.3))
        assert params.cca_busy_prob == 0.3

    def test_interfered_environment_raises_noise(self):
        base = QUIET_HALLWAY
        noisy = interfered_environment(base, InterfererConfig(duty_cycle=0.3))
        assert noisy.noise.mean_dbm > base.noise.mean_dbm

    def test_interfered_environment_raises_per(self):
        base = QUIET_HALLWAY
        noisy = interfered_environment(base, InterfererConfig(duty_cycle=0.3))
        assert noisy.ber.frame_error_probability(20.0, 129) > float(
            base.ber.frame_error_probability(20.0, 129)
        )

    def test_interference_hurts_link_metrics(self):
        """End to end: an interferer degrades PER and goodput."""
        config = StackConfig(
            distance_m=10.0, ptx_level=31, n_max_tries=1, q_max=1,
            t_pkt_ms=50.0, payload_bytes=110,
        )
        clean = compute_metrics(
            LinkSimulator(
                config, SimulationOptions(n_packets=300, seed=1)
            ).run()
        )
        env = interfered_environment(
            HALLWAY_2012, InterfererConfig(duty_cycle=0.25)
        )
        dirty = compute_metrics(
            LinkSimulator(
                config,
                SimulationOptions(n_packets=300, seed=1, environment=env),
            ).run()
        )
        assert dirty.per > clean.per
        assert dirty.goodput_kbps < clean.goodput_kbps


class TestLpl:
    def test_wakeup_delays(self):
        lpl = LplConfig(sleep_interval_ms=100.0)
        assert lpl.mean_wakeup_delay_s == pytest.approx(0.05)
        assert lpl.max_wakeup_delay_s == pytest.approx(0.1)

    def test_duty_cycle(self):
        lpl = LplConfig(sleep_interval_ms=97.5, probe_ms=2.5)
        assert lpl.receiver_duty_cycle == pytest.approx(0.025)

    def test_idle_power_below_always_on(self):
        from repro.radio import cc2420

        lpl = LplConfig()
        assert lpl.receiver_idle_power_w() < cc2420.rx_power_w()

    def test_service_time_gains_wakeup(self):
        lpl_model = LplServiceTimeModel(LplConfig(sleep_interval_ms=200.0))
        base = lpl_model.base.mean_service_time_s(110, 20.0, 3, 0.0)
        assert lpl_model.mean_service_time_s(110, 20.0, 3, 0.0) == pytest.approx(
            base + 0.1
        )

    def test_lpl_shrinks_stable_rate(self):
        """The paper's point: wake-up MACs reshape the delay/utilization map."""
        config = StackConfig(t_pkt_ms=30.0, payload_bytes=110, n_max_tries=3)
        lpl_model = LplServiceTimeModel(LplConfig(sleep_interval_ms=100.0))
        assert lpl_model.utilization(config, 25.0) > 1.0  # overloaded under LPL
        assert lpl_model.base.mean_service_time_s(110, 25.0, 3, 0.0) < 0.03

    def test_validation(self):
        with pytest.raises(SimulationError):
            LplConfig(sleep_interval_ms=0.0)
        with pytest.raises(SimulationError):
            LplConfig(probe_ms=-1.0)


class TestMobility:
    def test_trace_interpolation(self):
        trace = MobilityTrace(waypoints=((0.0, 10.0), (10.0, 30.0)))
        assert trace.distance_at(0.0) == 10.0
        assert trace.distance_at(5.0) == pytest.approx(20.0)
        assert trace.distance_at(10.0) == 30.0
        assert trace.distance_at(99.0) == 30.0  # holds last

    def test_walk_constructor(self):
        trace = MobilityTrace.walk(5.0, 35.0, 60.0)
        assert trace.distance_at(30.0) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ChannelError):
            MobilityTrace(waypoints=())
        with pytest.raises(ChannelError):
            MobilityTrace(waypoints=((0.0, 10.0), (0.0, 20.0)))
        with pytest.raises(ChannelError):
            MobilityTrace(waypoints=((1.0, 10.0),))
        with pytest.raises(ChannelError):
            MobilityTrace(waypoints=((0.0, -5.0),))
        with pytest.raises(ChannelError):
            MobilityTrace.walk(5.0, 35.0, 0.0)

    def test_mobile_channel_rssi_tracks_distance(self):
        trace = MobilityTrace.walk(5.0, 35.0, 100.0)
        channel = MobileLinkChannel(
            QUIET_HALLWAY, trace, 31, np.random.default_rng(0)
        )
        near = channel.sample(0.0).rssi_dbm
        far = channel.sample(100.0).rssi_dbm
        assert near > far + 10

    def test_mobile_channel_in_simulation(self):
        """A walking receiver sees the link degrade end to end."""
        trace = MobilityTrace.walk(5.0, 60.0, 30.0)
        config = StackConfig(
            distance_m=5.0, ptx_level=11, n_max_tries=1, q_max=1,
            t_pkt_ms=50.0, payload_bytes=110,
        )
        options = SimulationOptions(n_packets=600, seed=2, environment=QUIET_HALLWAY)
        sim = LinkSimulator(config, options)
        sim = LinkSimulator(
            config,
            options,
            channel=MobileLinkChannel(
                QUIET_HALLWAY, trace, 11, np.random.default_rng(5)
            ),
        )
        linktrace = sim.run()
        first_half = [p for p in linktrace.packets if p.seq < 300]
        second_half = [p for p in linktrace.packets if p.seq >= 300]
        rate_near = np.mean([p.delivered for p in first_half])
        rate_far = np.mean([p.delivered for p in second_half])
        assert rate_near > rate_far


class TestLplEnergyModel:
    def test_pair_power_u_shaped(self):
        from repro.extensions import LplEnergyModel

        model = LplEnergyModel()
        rate = 1.0
        optimum = model.optimal_sleep_interval_ms(rate)
        at_opt = model.pair_power_w(optimum, rate)
        assert model.pair_power_w(optimum / 10, rate) > at_opt
        assert model.pair_power_w(optimum * 10, rate) > at_opt

    def test_optimum_shrinks_with_rate(self):
        """Busier senders want shorter sleeps (X-MAC's sqrt law)."""
        from repro.extensions import LplEnergyModel

        model = LplEnergyModel()
        slow = model.optimal_sleep_interval_ms(0.1)
        fast = model.optimal_sleep_interval_ms(10.0)
        assert slow > 3 * fast

    def test_sqrt_scaling(self):
        from repro.extensions import LplEnergyModel

        model = LplEnergyModel()
        ratio = model.optimal_sleep_interval_ms(
            1.0
        ) / model.optimal_sleep_interval_ms(4.0)
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_validation(self):
        from repro.extensions import LplEnergyModel

        model = LplEnergyModel()
        with pytest.raises(SimulationError):
            model.pair_power_w(0.0, 1.0)
        with pytest.raises(SimulationError):
            model.pair_power_w(100.0, -1.0)
        with pytest.raises(SimulationError):
            model.optimal_sleep_interval_ms(0.0)
        with pytest.raises(SimulationError):
            model.optimal_sleep_interval_ms(1.0, lo_ms=10.0, hi_ms=5.0)
