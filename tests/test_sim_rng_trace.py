"""RNG streams, packet and trace-record tests (repro.sim)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.packet import Packet
from repro.sim.rng import RngStreams, config_seed
from repro.sim.trace import (
    LinkTrace,
    PacketFate,
    PacketRecord,
    TransmissionRecord,
)


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("channel").random(5)
        b = RngStreams(7).stream("channel").random(5)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        streams = RngStreams(7)
        a = streams.stream("channel").random(5)
        b = streams.stream("mac").random(5)
        assert not np.array_equal(a, b)

    def test_stream_unaffected_by_other_requests(self):
        """Requesting extra streams must not perturb existing ones."""
        lone = RngStreams(7)
        lone_values = lone.stream("channel").random(5)
        crowded = RngStreams(7)
        crowded.stream("mac")
        crowded.stream("noise")
        crowded_values = crowded.stream("channel").random(5)
        assert np.array_equal(lone_values, crowded_values)

    def test_stream_cached(self):
        streams = RngStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_independent(self):
        parent = RngStreams(7)
        a = parent.spawn(0).stream("channel").random(5)
        b = parent.spawn(1).stream("channel").random(5)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic(self):
        a = RngStreams(7).spawn(3).stream("channel").random(5)
        b = RngStreams(7).spawn(3).stream("channel").random(5)
        assert np.array_equal(a, b)

    def test_rejects_negative_seed(self):
        with pytest.raises(SimulationError):
            RngStreams(-1)


class TestConfigSeed:
    def test_deterministic(self):
        assert config_seed(42, 17) == config_seed(42, 17)

    def test_distinct_across_indices(self):
        seeds = {config_seed(42, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_nonnegative(self):
        assert all(config_seed(1, i) >= 0 for i in range(100))


class TestPacket:
    def test_payload_bits(self):
        assert Packet(seq=0, payload_bytes=65, generated_s=0.0).payload_bits == 520

    def test_validation(self):
        with pytest.raises(SimulationError):
            Packet(seq=-1, payload_bytes=10, generated_s=0.0)
        with pytest.raises(SimulationError):
            Packet(seq=0, payload_bytes=0, generated_s=0.0)
        with pytest.raises(SimulationError):
            Packet(seq=0, payload_bytes=10, generated_s=-1.0)


class TestPacketRecord:
    def test_delivered_record_derived_times(self):
        rec = PacketRecord(
            seq=1,
            payload_bytes=50,
            generated_s=1.0,
            fate=PacketFate.DELIVERED,
            dequeued_s=1.2,
            completed_s=1.5,
            n_tries=2,
            first_delivery_s=1.4,
        )
        assert rec.queueing_delay_s == pytest.approx(0.2)
        assert rec.service_time_s == pytest.approx(0.3)
        assert rec.delay_s == pytest.approx(0.4)
        assert rec.delivered and rec.received

    def test_queue_drop_has_no_times(self):
        rec = PacketRecord(
            seq=1, payload_bytes=50, generated_s=1.0, fate=PacketFate.QUEUE_DROP
        )
        assert rec.queueing_delay_s is None
        assert rec.service_time_s is None
        assert rec.delay_s is None
        assert not rec.delivered

    def test_queue_drop_cannot_have_tries(self):
        with pytest.raises(SimulationError):
            PacketRecord(
                seq=1,
                payload_bytes=50,
                generated_s=1.0,
                fate=PacketFate.QUEUE_DROP,
                n_tries=2,
            )

    def test_serviced_requires_timestamps(self):
        with pytest.raises(SimulationError):
            PacketRecord(
                seq=1, payload_bytes=50, generated_s=1.0, fate=PacketFate.DELIVERED
            )

    def test_radio_drop_may_still_be_received(self):
        """ACK loss: the receiver got the data but the sender gave up."""
        rec = PacketRecord(
            seq=2,
            payload_bytes=50,
            generated_s=0.0,
            fate=PacketFate.RADIO_DROP,
            dequeued_s=0.0,
            completed_s=0.1,
            n_tries=1,
            first_delivery_s=0.05,
        )
        assert rec.received and not rec.delivered


class TestLinkTraceValidate:
    @staticmethod
    def _tx(seq, attempt, acked):
        return TransmissionRecord(
            packet_seq=seq,
            attempt=attempt,
            tx_time_s=0.0,
            rssi_dbm=-80.0,
            noise_dbm=-95.0,
            lqi=100.0,
            data_delivered=acked,
            acked=acked,
        )

    def test_consistent_trace_passes(self):
        trace = LinkTrace(
            packets=[
                PacketRecord(
                    seq=0,
                    payload_bytes=10,
                    generated_s=0.0,
                    fate=PacketFate.DELIVERED,
                    dequeued_s=0.0,
                    completed_s=0.05,
                    n_tries=2,
                    first_delivery_s=0.04,
                )
            ],
            transmissions=[self._tx(0, 1, False), self._tx(0, 2, True)],
        )
        trace.validate()

    def test_mismatched_tries_caught(self):
        trace = LinkTrace(
            packets=[
                PacketRecord(
                    seq=0,
                    payload_bytes=10,
                    generated_s=0.0,
                    fate=PacketFate.DELIVERED,
                    dequeued_s=0.0,
                    completed_s=0.05,
                    n_tries=3,
                    first_delivery_s=0.04,
                )
            ],
            transmissions=[self._tx(0, 1, True)],
        )
        with pytest.raises(SimulationError):
            trace.validate()

    def test_duplicate_seq_caught(self):
        rec = PacketRecord(
            seq=0, payload_bytes=10, generated_s=0.0, fate=PacketFate.QUEUE_DROP
        )
        trace = LinkTrace(packets=[rec, rec])
        with pytest.raises(SimulationError):
            trace.validate()

    def test_snr_property(self):
        tx = self._tx(0, 1, True)
        assert tx.snr_db == pytest.approx(15.0)
