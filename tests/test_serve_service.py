"""Service-layer tests: queueing, backpressure, timeouts, micro-batching."""

import threading
import time

import pytest

from repro.core.optimization import TuningGrid
from repro.errors import OverloadError, ServeError, ServiceTimeoutError
from repro.serve import (
    Client,
    LinkSpec,
    Oracle,
    OracleService,
    RecommendRequest,
    RecommendResult,
)

TINY_GRID = TuningGrid(
    ptx_levels=(3, 31),
    payload_values_bytes=(20, 110),
    n_max_tries_values=(1,),
    q_max_values=(1,),
)


class BlockingOracle(Oracle):
    """An oracle whose table fetches block until the test releases them.

    Lets tests hold a worker busy deterministically (to fill the queue or
    expire deadlines) and count how many table fetches actually happened
    (to prove micro-batching coalesces same-link requests).
    """

    def __init__(self, **kwargs):
        super().__init__(grid=TINY_GRID, **kwargs)
        self.release = threading.Event()
        self.entered = threading.Event()
        self.fetches = 0

    def table_for(self, link):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "test never released the oracle"
        self.fetches += 1
        return super().table_for(link)


def request_for(distance_m=10.0, objective="energy"):
    return RecommendRequest(
        link=LinkSpec(distance_m=distance_m), objective=objective
    )


def wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestHappyPath:
    def test_call_returns_recommend_result(self):
        with OracleService(Oracle(grid=TINY_GRID), workers=1) as service:
            result = service.call(request_for())
            assert isinstance(result, RecommendResult)
            assert result.evaluation.config.payload_bytes in (20, 110)

    def test_concurrent_callers_all_answered(self):
        with OracleService(Oracle(grid=TINY_GRID), workers=2) as service:
            client = Client(service)
            results = []
            errors = []

            def query(distance):
                try:
                    results.append(
                        client.recommend({"link": {"distance_m": distance}})
                    )
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=query, args=(10.0 + (i % 3),))
                for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 12


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self):
        oracle = BlockingOracle()
        service = OracleService(
            oracle, queue_capacity=2, workers=1, retry_after_s=0.25
        )
        try:
            first = service.submit(request_for())
            assert wait_until(lambda: service.queue_depth() == 0)
            assert oracle.entered.wait(timeout=5.0)
            service.submit(request_for(11.0))
            service.submit(request_for(12.0))
            with pytest.raises(OverloadError) as exc_info:
                service.submit(request_for(13.0))
            assert exc_info.value.retry_after_s == 0.25
            assert service.metrics.counter("queue_rejected_total") == 1
            oracle.release.set()
            assert first.wait(timeout_s=10.0)
        finally:
            oracle.release.set()
            service.close()

    def test_submit_after_close_rejected(self):
        service = OracleService(Oracle(grid=TINY_GRID), workers=1)
        service.close()
        with pytest.raises(ServeError):
            service.submit(request_for())

    def test_close_fails_queued_requests(self):
        oracle = BlockingOracle()
        service = OracleService(oracle, queue_capacity=4, workers=1)
        service.submit(request_for())
        assert oracle.entered.wait(timeout=5.0)
        queued = service.submit(request_for(11.0))
        service.close(timeout_s=0.1)
        with pytest.raises(ServeError):
            queued.outcome()
        oracle.release.set()


class TestTimeouts:
    def test_caller_timeout_raises_service_timeout(self):
        oracle = BlockingOracle()
        service = OracleService(oracle, workers=1)
        try:
            service.submit(request_for())
            assert oracle.entered.wait(timeout=5.0)
            with pytest.raises(ServiceTimeoutError):
                service.call(request_for(11.0), timeout_s=0.05)
            assert service.metrics.counter("requests_timeout_total") == 1
        finally:
            oracle.release.set()
            service.close()

    def test_worker_rejects_request_expired_in_queue(self):
        oracle = BlockingOracle()
        service = OracleService(oracle, workers=1)
        try:
            service.submit(request_for())
            assert oracle.entered.wait(timeout=5.0)
            expired = service.submit(request_for(11.0), timeout_s=0.01)
            time.sleep(0.05)
            oracle.release.set()
            assert expired.wait(timeout_s=10.0)
            with pytest.raises(ServiceTimeoutError):
                expired.outcome()
        finally:
            oracle.release.set()
            service.close()

    def test_invalid_capacity_knobs_rejected(self):
        oracle = Oracle(grid=TINY_GRID)
        for kwargs in (
            {"queue_capacity": 0},
            {"workers": 0},
            {"max_batch": 0},
            {"default_timeout_s": 0.0},
        ):
            with pytest.raises(ServeError):
                OracleService(oracle, **kwargs)


class TestMicroBatching:
    def test_same_link_requests_share_one_table_fetch(self):
        oracle = BlockingOracle()
        service = OracleService(oracle, workers=1, max_batch=8)
        try:
            blocker = service.submit(request_for(99.0))
            assert oracle.entered.wait(timeout=5.0)
            same = [
                service.submit(request_for(10.0, objective=objective))
                for objective in ("energy", "goodput", "delay")
            ]
            other = service.submit(request_for(11.0))
            oracle.release.set()
            for pending in [blocker, other] + same:
                assert pending.wait(timeout_s=10.0)
                pending.outcome()  # no errors
            # 3 fetches total: blocker, the coalesced trio, the 11 m link
            assert oracle.fetches == 3
            assert service.metrics.counter("coalesced_requests_total") == 2
            tiers = {p.outcome().cache_tier for p in same}
            assert tiers == {"miss"}
        finally:
            oracle.release.set()
            service.close()

    def test_batched_answers_match_unbatched(self):
        oracle = BlockingOracle()
        service = OracleService(oracle, workers=1, max_batch=8)
        try:
            blocker = service.submit(request_for(99.0))
            assert oracle.entered.wait(timeout=5.0)
            batched = [
                service.submit(request_for(20.0, objective=objective))
                for objective in ("energy", "goodput")
            ]
            oracle.release.set()
            assert blocker.wait(timeout_s=10.0)
            reference = Oracle(grid=TINY_GRID)
            for pending in batched:
                assert pending.wait(timeout_s=10.0)
                result = pending.outcome()
                assert result.evaluation == reference.uncached_recommend(
                    pending.request
                )
        finally:
            oracle.release.set()
            service.close()
