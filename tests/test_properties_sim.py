"""Metamorphic and property tests on the simulators themselves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import compute_metrics
from repro.channel import QUIET_HALLWAY
from repro.config import StackConfig, VALID_PTX_LEVELS
from repro.sim import FastLink, SimulationOptions, simulate_link


def metrics_for(config, n_packets=150, seed=0):
    options = SimulationOptions(
        n_packets=n_packets, seed=seed, environment=QUIET_HALLWAY
    )
    return compute_metrics(simulate_link(config, options=options))


class TestDesMetamorphic:
    @settings(max_examples=10, deadline=None)
    @given(
        payload=st.integers(min_value=10, max_value=114),
        level=st.sampled_from((15, 23, 31)),
        tries=st.integers(min_value=1, max_value=4),
    )
    def test_loss_split_always_consistent(self, payload, level, tries):
        """plr_total = plr_queue + (1 − plr_queue)·plr_radio-ish accounting:
        counts of the three fates always partition the packet population."""
        config = StackConfig(
            distance_m=20.0, ptx_level=level, n_max_tries=tries, q_max=2,
            t_pkt_ms=20.0, payload_bytes=payload,
        )
        m = metrics_for(config)
        assert m.n_delivered + m.n_queue_dropped + m.n_radio_dropped == m.n_packets
        assert 0.0 <= m.plr_total <= 1.0
        assert m.plr_total >= max(m.plr_queue, 0.0)

    @settings(max_examples=8, deadline=None)
    @given(payload=st.integers(min_value=10, max_value=114))
    def test_goodput_bounded_by_offered_load(self, payload):
        """Delivered bits can never exceed generated bits."""
        config = StackConfig(
            distance_m=10.0, ptx_level=31, n_max_tries=1, q_max=30,
            t_pkt_ms=50.0, payload_bytes=payload,
        )
        m = metrics_for(config)
        assert m.goodput_bps <= config.offered_load_bps * 1.01

    def test_doubling_interval_halves_goodput_on_clean_link(self):
        base = StackConfig(
            distance_m=5.0, ptx_level=31, n_max_tries=1, q_max=1,
            t_pkt_ms=50.0, payload_bytes=50,
        )
        fast = metrics_for(base, n_packets=400)
        slow = metrics_for(base.with_updates(t_pkt_ms=100.0), n_packets=400)
        assert fast.goodput_bps == pytest.approx(2 * slow.goodput_bps, rel=0.05)

    def test_packet_count_does_not_bias_rates(self):
        """PER estimated from 300 vs 1200 packets agrees (same channel law)."""
        config = StackConfig(
            distance_m=35.0, ptx_level=15, n_max_tries=1, q_max=1,
            t_pkt_ms=100.0, payload_bytes=110,
        )
        small = metrics_for(config, n_packets=300, seed=3)
        large = metrics_for(config, n_packets=1200, seed=4)
        assert small.per == pytest.approx(large.per, abs=0.07)

    def test_energy_additivity_across_seeds(self):
        """TX energy per transmission is seed-invariant."""
        config = StackConfig(
            distance_m=20.0, ptx_level=23, n_max_tries=3, q_max=1,
            t_pkt_ms=100.0, payload_bytes=80,
        )
        runs = [metrics_for(config, n_packets=200, seed=s) for s in (1, 2)]
        per_tx = [m.tx_energy_j / m.n_transmissions for m in runs]
        assert per_tx[0] == pytest.approx(per_tx[1], rel=1e-9)


class TestFastLinkMetamorphic:
    @settings(max_examples=15, deadline=None)
    @given(
        snr=st.floats(min_value=0.0, max_value=30.0),
        payload=st.integers(min_value=5, max_value=114),
        tries=st.integers(min_value=1, max_value=6),
    )
    def test_rate_bounds(self, snr, payload, tries):
        result = FastLink(seed=1).run(
            snr, payload, n_packets=400, n_max_tries=tries
        )
        assert 0.0 <= result.per <= 1.0
        assert 0.0 <= result.plr_radio <= 1.0
        assert 1.0 <= result.mean_tries <= tries
        assert result.mean_service_time_s > 0

    @settings(max_examples=10, deadline=None)
    @given(snr=st.floats(min_value=5.0, max_value=25.0))
    def test_acked_implies_delivered(self, snr):
        result = FastLink(seed=2).run(snr, 80, n_packets=500, n_max_tries=3)
        assert np.all(result.data_delivered[result.acked])

    @settings(max_examples=10, deadline=None)
    @given(
        snr=st.floats(min_value=5.0, max_value=25.0),
        tries=st.integers(min_value=2, max_value=6),
    )
    def test_more_tries_never_lose_packets(self, snr, tries):
        fewer = FastLink(seed=3).run(snr, 110, n_packets=2000, n_max_tries=1)
        more = FastLink(seed=3).run(snr, 110, n_packets=2000, n_max_tries=tries)
        assert more.plr_radio <= fewer.plr_radio + 0.02

    def test_zero_jitter_matches_bernoulli(self):
        """With no SNR jitter, PER equals the BER model's frame+ACK error."""
        from repro.channel import HALLWAY_2012

        link = FastLink(seed=5, snr_jitter_db=0.0)
        result = link.run(14.0, 110, n_packets=30000, n_max_tries=1)
        ber = HALLWAY_2012.ber
        p_data = float(ber.frame_error_probability(14.0, 129))
        p_ack = float(ber.frame_error_probability(14.0, 11))
        expected = 1 - (1 - p_data) * (1 - p_ack)
        assert result.per == pytest.approx(expected, abs=0.01)
