"""Guideline-engine tests (repro.core.guidelines) — Secs. IV-C…VII-B."""

import pytest

from repro.core import GuidelineEngine
from repro.errors import OptimizationError


@pytest.fixture
def engine():
    return GuidelineEngine()


def snr_map(snr_at_31, step=1.0):
    """A level→SNR map where each 4-level step is `step` dB."""
    from repro.radio import cc2420

    return {
        lvl: snr_at_31 + cc2420.output_power_dbm(lvl) * step / 1.0
        for lvl in cc2420.PA_LEVELS
    }


class TestEnergyGuideline:
    def test_good_link_lowest_clearing_level_max_payload(self, engine):
        rec = engine.recommend_for_energy(snr_map(snr_at_31=30.0))
        assert rec.payload_bytes == 114
        # Some level below 31 already clears ~16.5 dB; 31 must not be chosen.
        assert rec.ptx_level < 31
        assert rec.predicted["snr_db"] >= 16.0

    def test_weak_link_max_power_small_payload(self, engine):
        rec = engine.recommend_for_energy(snr_map(snr_at_31=8.0))
        assert rec.ptx_level == 31
        assert rec.payload_bytes < 114
        assert rec.rationale

    def test_empty_map_rejected(self, engine):
        with pytest.raises(OptimizationError):
            engine.recommend_for_energy({})

    def test_changes_dict(self, engine):
        rec = engine.recommend_for_energy(snr_map(snr_at_31=30.0))
        changes = rec.changes()
        assert set(changes) == {"ptx_level", "payload_bytes"}


class TestGoodputGuideline:
    def test_good_link_max_everything(self, engine):
        rec = engine.recommend_for_goodput(snr_map(snr_at_31=25.0))
        assert rec.ptx_level == 31
        assert rec.payload_bytes == 114
        assert rec.n_max_tries >= 3

    def test_grey_zone_smaller_payload(self, engine):
        rec = engine.recommend_for_goodput(snr_map(snr_at_31=6.0))
        assert rec.ptx_level == 31
        assert rec.payload_bytes < 114

    def test_predicted_goodput_positive(self, engine):
        rec = engine.recommend_for_goodput(snr_map(snr_at_31=25.0))
        assert rec.predicted["max_goodput_kbps"] > 10.0

    def test_validation(self, engine):
        with pytest.raises(OptimizationError):
            engine.recommend_for_goodput({}, ())


class TestDelayGuideline:
    def test_stable_config_unchanged(self, engine):
        rec = engine.recommend_for_delay(
            snr_db=25.0, t_pkt_ms=100.0, payload_bytes=110, n_max_tries=3
        )
        assert rec.payload_bytes == 110
        assert rec.t_pkt_ms == 100.0
        assert rec.predicted["rho"] < 1.0

    def test_overload_shrinks_payload(self, engine):
        # Table II's overloaded row: SNR 10 dB, T_pkt 30 ms, D_retry 30 ms.
        rec = engine.recommend_for_delay(
            snr_db=10.0, t_pkt_ms=30.0, payload_bytes=110, n_max_tries=3,
            d_retry_ms=30.0,
        )
        assert rec.predicted["rho"] < 1.0
        assert rec.payload_bytes < 110 or rec.n_max_tries < 3 or rec.t_pkt_ms > 30.0

    def test_hopeless_overload_stretches_interval(self, engine):
        rec = engine.recommend_for_delay(
            snr_db=6.0, t_pkt_ms=5.0, payload_bytes=110, n_max_tries=5
        )
        assert rec.predicted["rho"] < 1.0
        assert rec.t_pkt_ms > 5.0


class TestLossGuideline:
    def test_good_link_minimal_tries(self, engine):
        rec = engine.recommend_for_loss(
            snr_db=25.0, t_pkt_ms=100.0, payload_bytes=110
        )
        assert rec.n_max_tries <= 3
        assert rec.predicted["plr_radio"] <= 0.011
        assert rec.q_max == 1

    def test_grey_zone_highload_uses_large_queue(self, engine):
        rec = engine.recommend_for_loss(
            snr_db=8.0, t_pkt_ms=10.0, payload_bytes=110
        )
        # Even one try overloads a 10 ms period in the grey zone → big queue.
        assert rec.q_max == 30

    def test_moderate_case_backs_off_tries(self, engine):
        rec = engine.recommend_for_loss(
            snr_db=11.0, t_pkt_ms=40.0, payload_bytes=110, target_plr_radio=1e-6
        )
        # The loss target wants many tries; stability caps them.
        assert rec.predicted["rho"] < 1.0 or rec.q_max == 30
        assert rec.rationale
