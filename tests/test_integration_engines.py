"""Cross-engine integration: DES vs FastLink vs the empirical models.

These tests pin the agreement that makes the benchmark results trustworthy:
the vectorized engine, the event-driven engine, and the paper-style closed
forms must tell the same story on their shared domain.
"""

import numpy as np
import pytest

from repro.analysis import compute_metrics
from repro.channel import HALLWAY_2012, LinkChannel, QUIET_HALLWAY
from repro.config import StackConfig
from repro.core import (
    EnergyModel,
    GoodputModel,
    PerModel,
    PlrRadioModel,
    ServiceTimeModel,
)
from repro.sim import FastLink, SimulationOptions, simulate_link


def des_metrics(config, n_packets=1200, seed=4, environment=HALLWAY_2012):
    options = SimulationOptions(
        n_packets=n_packets, seed=seed, environment=environment
    )
    return compute_metrics(simulate_link(config, options=options))


@pytest.fixture(scope="module")
def grey_zone_setup():
    """A grey-zone link run on both engines."""
    config = StackConfig(
        distance_m=35.0, ptx_level=11, n_max_tries=3, q_max=1,
        t_pkt_ms=200.0, payload_bytes=110,
    )
    metrics = des_metrics(config)
    fast = FastLink(environment=HALLWAY_2012, seed=9).run(
        mean_snr_db=metrics.mean_snr_db,
        payload_bytes=110,
        n_packets=6000,
        n_max_tries=3,
    )
    return config, metrics, fast


class TestDesVsFastLink:
    def test_per_agreement(self, grey_zone_setup):
        _, metrics, fast = grey_zone_setup
        assert fast.per == pytest.approx(metrics.per, abs=0.06)

    def test_plr_agreement(self, grey_zone_setup):
        _, metrics, fast = grey_zone_setup
        assert fast.plr_radio == pytest.approx(metrics.plr_radio, abs=0.05)

    def test_tries_agreement(self, grey_zone_setup):
        _, metrics, fast = grey_zone_setup
        assert fast.mean_tries == pytest.approx(metrics.mean_tries, rel=0.12)

    def test_service_time_agreement(self, grey_zone_setup):
        _, metrics, fast = grey_zone_setup
        assert fast.mean_service_time_s == pytest.approx(
            metrics.mean_service_time_s, rel=0.12
        )


class TestDesVsModels:
    """The DES realizes the paper's closed forms on a quiet channel."""

    @pytest.fixture(scope="class")
    def quiet_metrics(self):
        config = StackConfig(
            distance_m=35.0, ptx_level=15, n_max_tries=3, q_max=1,
            t_pkt_ms=200.0, payload_bytes=110,
        )
        return config, des_metrics(
            config, n_packets=3000, environment=QUIET_HALLWAY
        )

    def test_per_matches_eq3_family(self, quiet_metrics):
        """Measured PER sits near the BER model's frame-error prediction
        (data frame + ACK loss in series)."""
        _, metrics = quiet_metrics
        env = QUIET_HALLWAY
        # The quiet channel still samples the noise mixture per packet, so
        # compare against the PER averaged over the noise distribution.
        rng = np.random.default_rng(0)
        noise = env.noise.sample(rng, size=4000)
        rssi = metrics.mean_rssi_dbm
        p_data = env.ber.frame_error_probability(rssi - noise, 129)
        p_ack = env.ber.frame_error_probability(rssi - noise, 11)
        expected = float(np.mean(1.0 - (1.0 - p_data) * (1.0 - p_ack)))
        assert metrics.per == pytest.approx(expected, abs=0.04)

    def test_plr_matches_eq8_structure(self, quiet_metrics):
        _, metrics = quiet_metrics
        assert metrics.plr_radio == pytest.approx(metrics.per**3, abs=0.03)

    def test_service_time_matches_eqs56(self, quiet_metrics):
        config, metrics = quiet_metrics
        model = ServiceTimeModel()
        # Feed the *measured* PER into the truncated-geometric expectation
        # to isolate the timing decomposition from the PER model error.
        from repro.core.per_model import PerModel
        from repro.core.constants import ExpFitCoefficients

        predicted = model.mean_service_time_s(
            110, metrics.mean_snr_db, 3, 0.0
        )
        assert metrics.mean_service_time_s == pytest.approx(predicted, rel=0.15)

    def test_energy_matches_eq2_generalization(self, quiet_metrics):
        config, metrics = quiet_metrics
        model = EnergyModel()
        predicted = model.u_eng_finite_retries_j_per_bit(
            config.ptx_level, 110, metrics.mean_snr_db, 3
        )
        assert metrics.energy_per_info_bit_j == pytest.approx(predicted, rel=0.2)


class TestSaturatedGoodput:
    def test_fastlink_matches_goodput_model(self):
        """Saturated Monte-Carlo goodput tracks Eq. 4 within 15%."""
        model = GoodputModel()
        for snr in (10.0, 15.0, 22.0):
            fast = FastLink(seed=2, snr_jitter_db=0.0).run(
                mean_snr_db=snr, payload_bytes=110, n_packets=4000, n_max_tries=3
            )
            predicted = model.max_goodput_bps(110, snr, 3)
            assert fast.goodput_bps == pytest.approx(predicted, rel=0.15)

    def test_des_saturated_matches_goodput_model(self):
        """A DES run with T_pkt << T_service measures Eq. 4's maxGoodput."""
        config = StackConfig(
            distance_m=20.0, ptx_level=23, n_max_tries=3, q_max=30,
            t_pkt_ms=2.0, payload_bytes=110,
        )
        metrics = des_metrics(config, n_packets=800, environment=QUIET_HALLWAY)
        predicted = GoodputModel().max_goodput_bps(110, metrics.mean_snr_db, 3)
        assert metrics.goodput_bps == pytest.approx(predicted, rel=0.15)
