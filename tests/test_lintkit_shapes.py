"""Tests for the RPR3xx array-contract tier (repro.lintkit.semantic.shapes).

The symbolic shape/dtype/writability lattice is exercised directly
(join, broadcast, promotion, unknown rank); the inference pass is probed
through per-function environments on multi-file fixtures; and every
RPR3xx rule gets at least two true-positive fixtures proving it fires
plus at least two true-negative fixtures proving its precision guards
hold. The real hot modules (``core/optimization/kernels.py`` and
``fleet/``) must lint clean under the tier, and the SARIF renderer must
emit a document that validates against a SARIF 2.1.0 schema subset.
"""

import ast
import json
from pathlib import Path

import pytest

import repro
from repro.lintkit import Linter, all_rules, lint_paths, render_sarif
from repro.lintkit.semantic.shapes import (
    DIM_UNKNOWN,
    WRITE_FRESH,
    WRITE_READONLY,
    WRITE_VIEW,
    ShapeInfo,
    broadcast_dims,
    join,
    join_dims,
    promote_dtype,
)
from repro.lintkit.semantic.symbols import ProjectIndex

SRC_REPRO = Path(repro.__file__).resolve().parent

RPR3XX = {"RPR301", "RPR302", "RPR303", "RPR304", "RPR305"}


def build_index(tmp_path, files):
    """Parse ``{filename: code}`` into one ProjectIndex (flat stems)."""
    entries = []
    for name, code in sorted(files.items()):
        path = tmp_path / name
        path.write_text(code)
        entries.append((str(path), "", ast.parse(code, filename=str(path))))
    return ProjectIndex.build(entries)


def lint_project(tmp_path, files, select):
    """Write ``{filename: code}`` and lint the directory as one batch."""
    for name, code in files.items():
        (tmp_path / name).write_text(code)
    return lint_paths([tmp_path], select=select)


def rule_ids(findings):
    return [f.rule_id for f in findings]


def env_of(index, qualname):
    shapes = index.shapes()
    return shapes.env(index.functions[qualname])


# ----------------------------------------------------------------------
# lattice unit tests
# ----------------------------------------------------------------------
class TestShapeLattice:
    def test_join_dims_equal_and_pointwise_unknown(self):
        assert join_dims(("n", 4), ("n", 4)) == ("n", 4)
        assert join_dims(("n", 4), ("n", 5)) == ("n", DIM_UNKNOWN)

    def test_join_dims_rank_mismatch_or_unknown_rank_is_unknown(self):
        assert join_dims(("n",), ("n", 4)) is None
        assert join_dims(None, ("n",)) is None

    def test_join_merges_dtype_and_writability(self):
        merged = join(
            ShapeInfo(("n",), "float64", WRITE_FRESH),
            ShapeInfo(("n",), "float32", WRITE_VIEW),
        )
        assert merged.dims == ("n",)
        assert merged.dtype == "unknown"
        assert merged.writability == "unknown"
        pessimistic = join(
            ShapeInfo(None, "float64", WRITE_READONLY),
            ShapeInfo(None, "float64", WRITE_FRESH),
        )
        assert pessimistic.writability == WRITE_READONLY

    def test_broadcast_right_aligns_and_expands_ones(self):
        dims, conflict = broadcast_dims(("n", 1), (4,))
        assert conflict is None
        assert dims == ("n", 4)

    def test_broadcast_concrete_conflict(self):
        dims, conflict = broadcast_dims((3,), (4,))
        assert dims is None
        assert conflict == (3, 4)

    def test_broadcast_symbol_conflict_but_symbol_vs_concrete_ok(self):
        _dims, conflict = broadcast_dims(("n_payload",), ("n_power",))
        assert conflict == ("n_payload", "n_power")
        _dims, compatible = broadcast_dims(("n",), (7,))
        assert compatible is None

    def test_broadcast_unknown_rank_never_conflicts(self):
        dims, conflict = broadcast_dims(None, ("n",))
        assert dims is None
        assert conflict is None

    def test_promote_dtype(self):
        assert promote_dtype("float32", "float64") == "float64"
        assert promote_dtype("int64", "float64") == "float64"
        assert promote_dtype("bool", "int64") == "int64"
        assert promote_dtype("object", "float64") == "object"
        assert promote_dtype("unknown", "float64") == "unknown"

    def test_unknown_rank_shape_info(self):
        info = ShapeInfo()
        assert info.rank is None
        assert not info.is_readonly
        assert ShapeInfo(("n", 4)).rank == 2


# ----------------------------------------------------------------------
# inference pass
# ----------------------------------------------------------------------
class TestShapeInference:
    def test_constructor_seeds_symbolic_shape_dtype_writability(
        self, tmp_path
    ):
        index = build_index(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    a = np.zeros(n)\n"
                    "    b = np.zeros((3, 4), dtype=np.float32)\n"
                    "    c = np.linspace(0.0, 1.0, n_points)\n"
                    "    return a, b, c\n"
                )
            },
        )
        env = env_of(index, "mod.f")
        assert env["a"].dims == ("n",)
        assert env["a"].dtype == "float64"
        assert env["a"].writability == WRITE_FRESH
        assert env["b"].dims == (3, 4)
        assert env["b"].dtype == "float32"
        assert env["c"].dims == ("n_points",)

    def test_astype_len_and_setflags(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(xs):\n"
                    "    a = np.zeros(len(xs))\n"
                    "    b = a.astype(np.float32)\n"
                    "    a.setflags(write=False)\n"
                    "    return b\n"
                )
            },
        )
        env = env_of(index, "mod.f")
        assert env["a"].dims == ("len(xs)",)
        assert env["a"].writability == WRITE_READONLY
        assert env["b"].dtype == "float32"
        assert env["b"].writability == WRITE_FRESH

    def test_freezing_class_fields_are_readonly_planes(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "from dataclasses import dataclass\n"
                    "@dataclass(frozen=True)\n"
                    "class Planes:\n"
                    "    energy: np.ndarray\n"
                    "    def __post_init__(self):\n"
                    "        self.energy.flags.writeable = False\n"
                    "    def read(self):\n"
                    "        return self.energy\n"
                )
            },
        )
        shapes = index.shapes()
        assert "mod.Planes" in shapes.freezing_classes
        env = env_of(index, "mod.Planes.read")
        assert env["self.energy"].writability == WRITE_READONLY

    def test_hot_marker_is_a_comment_not_a_string(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "hot.py": (
                    "# reprolint: hot-path\n"
                    "import numpy as np\n"
                    "def entry():\n"
                    "    return helper()\n"
                    "def helper():\n"
                    "    return 1\n"
                ),
                "cold.py": (
                    'DOC = "# reprolint: hot-path"\n'
                    "def chilly():\n"
                    "    return DOC\n"
                ),
                "bench_thing.py": (
                    "def timed():\n"
                    "    return 0\n"
                ),
            },
        )
        shapes = index.shapes()
        assert shapes.hot_modules == {"hot"}
        assert "hot.entry" in shapes.hot_functions
        assert "hot.helper" in shapes.hot_functions  # call-graph closure
        assert "bench_thing.timed" in shapes.hot_functions  # bench seed
        assert "cold.chilly" not in shapes.hot_functions


# ----------------------------------------------------------------------
# RPR301 — allocation in hot loops
# ----------------------------------------------------------------------
class TestRPR301HotLoopAllocation:
    def test_tp_invariant_alloc_in_marked_module(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "hot.py": (
                    "# reprolint: hot-path\n"
                    "import numpy as np\n"
                    "def run(xs, n_steps):\n"
                    "    out = np.zeros(len(xs))\n"
                    "    for _ in range(n_steps):\n"
                    "        scratch = np.zeros(100)\n"
                    "        out += scratch\n"
                    "    return out\n"
                )
            },
            select={"RPR301"},
        )
        assert rule_ids(findings) == ["RPR301"]
        assert "np.zeros" in findings[0].message

    def test_tp_append_then_asarray_in_bench_module(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "bench_loop.py": (
                    "import numpy as np\n"
                    "def build(values):\n"
                    "    rows = []\n"
                    "    for value in values:\n"
                    "        rows.append(value * 2.0)\n"
                    "    return np.asarray(rows)\n"
                )
            },
            select={"RPR301"},
        )
        assert rule_ids(findings) == ["RPR301"]
        assert "append" in findings[0].message

    def test_tn_loop_variant_allocation(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "hot.py": (
                    "# reprolint: hot-path\n"
                    "import numpy as np\n"
                    "def run(n_blocks, width):\n"
                    "    total = 0.0\n"
                    "    for start in range(n_blocks):\n"
                    "        stop = start + width\n"
                    "        block = np.zeros(stop - start)\n"
                    "        total += block.sum()\n"
                    "    return total\n"
                )
            },
            select={"RPR301"},
        )
        assert findings == []

    def test_tn_unmarked_module_is_not_hot(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "cold.py": (
                    "import numpy as np\n"
                    "def run(n_steps):\n"
                    "    out = 0.0\n"
                    "    for _ in range(n_steps):\n"
                    "        out += np.zeros(100).sum()\n"
                    "    return out\n"
                )
            },
            select={"RPR301"},
        )
        assert findings == []

    def test_tn_defensive_copy_passed_to_callee(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "hot.py": (
                    "# reprolint: hot-path\n"
                    "import numpy as np\n"
                    "def consume(fresh):\n"
                    "    fresh[0] = 1.0\n"
                    "def run(state, rounds):\n"
                    "    for _ in range(rounds):\n"
                    "        fresh = state.copy()\n"
                    "        consume(fresh)\n"
                )
            },
            select={"RPR301"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPR302 — dtype drift
# ----------------------------------------------------------------------
class TestRPR302DtypeDrift:
    def test_tp_float32_float64_mixing(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    small = np.zeros(n, dtype=np.float32)\n"
                    "    big = np.zeros(n)\n"
                    "    return small * big\n"
                )
            },
            select={"RPR302"},
        )
        assert rule_ids(findings) == ["RPR302"]
        assert "float32" in findings[0].message

    def test_tp_int_accumulator_takes_float(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    counts = np.zeros(n, dtype=np.int64)\n"
                    "    counts += 0.5\n"
                    "    return counts\n"
                )
            },
            select={"RPR302"},
        )
        assert rule_ids(findings) == ["RPR302"]
        assert "int64" in findings[0].message

    def test_tp_object_dtype_and_ragged_literal(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    bad = np.array([1, 2], dtype=object)\n"
                    "    ragged = np.array([[1, 2], [3]])\n"
                    "    return bad, ragged\n"
                )
            },
            select={"RPR302"},
        )
        assert rule_ids(findings) == ["RPR302", "RPR302"]

    def test_tn_uniform_float64_pipeline(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    a = np.zeros(n)\n"
                    "    b = np.ones(n)\n"
                    "    a += 0.5\n"
                    "    return a * b\n"
                )
            },
            select={"RPR302"},
        )
        assert findings == []

    def test_tn_unknown_dtype_never_flagged(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(xs: np.ndarray, n):\n"
                    "    small = np.zeros(n, dtype=np.float32)\n"
                    "    return small * xs\n"  # xs dtype unknown: no claim
                )
            },
            select={"RPR302"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPR303 — broadcast contracts
# ----------------------------------------------------------------------
class TestRPR303BroadcastContract:
    def test_tp_distinct_symbolic_axes(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n_payload, n_power):\n"
                    "    payload_b = np.zeros(n_payload)\n"
                    "    ptx_dbm = np.zeros(n_power)\n"
                    "    return payload_b * ptx_dbm\n"
                )
            },
            select={"RPR303"},
        )
        assert rule_ids(findings) == ["RPR303"]
        assert "n_payload" in findings[0].message
        assert "n_power" in findings[0].message

    def test_tp_concrete_length_conflict_through_ufunc(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    a = np.zeros(3)\n"
                    "    b = np.zeros(4)\n"
                    "    return np.maximum(a, b)\n"
                )
            },
            select={"RPR303"},
        )
        assert rule_ids(findings) == ["RPR303"]

    def test_tn_same_symbol_and_explicit_expansion(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n_payload, n_power):\n"
                    "    a = np.zeros(n_payload)\n"
                    "    b = np.zeros(n_payload)\n"
                    "    same = a + b\n"
                    "    c = np.zeros(n_power)\n"
                    "    plane = a[:, None] * c\n"
                    "    return same, plane\n"
                )
            },
            select={"RPR303"},
        )
        assert findings == []

    def test_tn_symbol_vs_concrete_is_compatible(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    a = np.zeros(n)\n"
                    "    b = np.zeros(7)\n"
                    "    return a + b\n"  # n may well be 7; stay silent
                )
            },
            select={"RPR303"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPR304 — read-only-plane mutation
# ----------------------------------------------------------------------
class TestRPR304ReadonlyMutation:
    def test_tp_store_and_augassign_into_frozen_local(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    frozen = np.zeros(n)\n"
                    "    frozen.setflags(write=False)\n"
                    "    frozen[0] = 1.0\n"
                    "    frozen += 2.0\n"
                    "    return frozen\n"
                )
            },
            select={"RPR304"},
        )
        assert rule_ids(findings) == ["RPR304", "RPR304"]

    def test_tp_store_into_freezing_class_plane(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "from dataclasses import dataclass\n"
                    "@dataclass(frozen=True)\n"
                    "class Planes:\n"
                    "    energy: np.ndarray\n"
                    "    def __post_init__(self):\n"
                    "        self.energy.flags.writeable = False\n"
                    "    def corrupt(self):\n"
                    "        self.energy[0] = 1.0\n"
                )
            },
            select={"RPR304"},
        )
        assert rule_ids(findings) == ["RPR304"]
        assert "self.energy" in findings[0].message

    def test_tp_escape_through_mutating_helper_and_np_copyto(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def scrub(out):\n"
                    "    out[0] = 0.0\n"
                    "def f(n, xs):\n"
                    "    frozen = np.zeros(n)\n"
                    "    frozen.setflags(write=False)\n"
                    "    scrub(frozen)\n"
                    "    np.copyto(frozen, xs)\n"
                    "    return frozen\n"
                )
            },
            select={"RPR304"},
        )
        assert rule_ids(findings) == ["RPR304", "RPR304"]
        assert any("scrub" in f.message for f in findings)
        assert any("copyto" in f.message for f in findings)

    def test_tn_fresh_array_mutation_is_fine(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    scratch = np.zeros(n)\n"
                    "    scratch[0] = 1.0\n"
                    "    scratch += 2.0\n"
                    "    return scratch\n"
                )
            },
            select={"RPR304"},
        )
        assert findings == []

    def test_tn_copy_of_frozen_plane_is_writable(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    frozen = np.zeros(n)\n"
                    "    frozen.setflags(write=False)\n"
                    "    mine = frozen.copy()\n"
                    "    mine[0] = 1.0\n"
                    "    return mine\n"
                )
            },
            select={"RPR304"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPR305 — redundant materialization
# ----------------------------------------------------------------------
class TestRPR305RedundantMaterialization:
    def test_tp_flatten_never_written(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(xs: np.ndarray):\n"
                    "    flat = xs.flatten()\n"
                    "    return flat.sum()\n"
                )
            },
            select={"RPR305"},
        )
        assert rule_ids(findings) == ["RPR305"]
        assert "flatten" in findings[0].message

    def test_tp_asarray_on_known_array(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    a = np.zeros(n)\n"
                    "    b = np.asarray(a)\n"
                    "    return b\n"
                )
            },
            select={"RPR305"},
        )
        assert rule_ids(findings) == ["RPR305"]
        assert "asarray" in findings[0].message

    def test_tp_rebind_abandons_fresh_buffer(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    acc = np.zeros(n)\n"
                    "    acc = acc + 1.0\n"
                    "    return acc\n"
                )
            },
            select={"RPR305"},
        )
        assert rule_ids(findings) == ["RPR305"]
        assert "acc" in findings[0].message

    def test_tn_flatten_result_is_written(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(xs: np.ndarray):\n"
                    "    flat = xs.flatten()\n"
                    "    flat[0] = 1.0\n"  # the copy is load-bearing
                    "    return flat\n"
                )
            },
            select={"RPR305"},
        )
        assert findings == []

    def test_tn_asarray_with_dtype_and_unknown_argument(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(rows, n):\n"
                    "    a = np.zeros(n)\n"
                    "    cast = np.asarray(a, dtype=np.float32)\n"
                    "    maybe = np.asarray(rows)\n"  # rows: not proven array
                    "    return cast, maybe\n"
                )
            },
            select={"RPR305"},
        )
        assert findings == []

    def test_tn_rebind_of_non_fresh_buffer(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(xs: np.ndarray):\n"
                    "    xs = xs + 1.0\n"  # caller's buffer: += would alias
                    "    return xs\n"
                )
            },
            select={"RPR305"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# satellite: RPR103 false negatives fixed (ufuncs, axis reductions)
# ----------------------------------------------------------------------
class TestRPR103UfuncGapClosed:
    def test_ufunc_result_is_visible_to_scalar_loop_rule(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(xs: np.ndarray):\n"
                    "    ys = np.exp(xs)\n"
                    "    total = 0.0\n"
                    "    for y in ys:\n"  # pre-fix: ys was invisible
                    "        total += y\n"
                    "    return total\n"
                )
            },
            select={"RPR103"},
        )
        assert rule_ids(findings) == ["RPR103"]
        assert "'ys'" in findings[0].message

    def test_axis_reduction_result_is_visible(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(xs: np.ndarray):\n"
                    "    col = np.sum(xs, axis=0)\n"
                    "    out = 0.0\n"
                    "    for value in col:\n"
                    "        out += value\n"
                    "    return out\n"
                )
            },
            select={"RPR103"},
        )
        assert rule_ids(findings) == ["RPR103"]

    def test_scalar_reduction_is_still_invisible(self, tmp_path):
        findings = lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(xs: np.ndarray, items):\n"
                    "    total = np.sum(xs)\n"  # scalar, not an array
                    "    for item in items:\n"
                    "        total += item\n"
                    "    return total\n"
                )
            },
            select={"RPR103"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# the real tree stays clean, serial or pooled
# ----------------------------------------------------------------------
class TestRealTree:
    def test_kernels_and_fleet_lint_clean_under_rpr3xx(self):
        findings = lint_paths(
            [
                SRC_REPRO / "core" / "optimization" / "kernels.py",
                SRC_REPRO / "fleet",
            ],
            select=RPR3XX,
        )
        assert findings == []

    def test_hot_modules_are_marked(self):
        linter = Linter()
        files = [
            SRC_REPRO / "core" / "optimization" / "kernels.py",
            SRC_REPRO / "fleet" / "engine.py",
            SRC_REPRO / "fleet" / "drift.py",
            SRC_REPRO / "serve" / "oracle.py",
        ]
        loaded = [linter._load(path) for path in files]
        index = ProjectIndex.build(
            [(r.display, r.package_relpath, r.tree) for r in loaded]
        )
        assert index.shapes().hot_modules == {
            "repro.core.optimization.kernels",
            "repro.fleet.engine",
            "repro.fleet.drift",
            "repro.serve.oracle",
        }

    def test_parallel_lint_matches_serial(self, tmp_path):
        files = {
            "hot.py": (
                "# reprolint: hot-path\n"
                "import numpy as np\n"
                "def run(n_steps):\n"
                "    for _ in range(n_steps):\n"
                "        scratch = np.zeros(10)\n"
                "    return scratch\n"
            ),
            "mod.py": (
                "import numpy as np\n"
                "def f(n):\n"
                "    a = np.zeros(n)\n"
                "    a = a + 1.0\n"
                "    return a\n"
            ),
        }
        for name, code in files.items():
            (tmp_path / name).write_text(code)
        serial = lint_paths([tmp_path], select=RPR3XX)
        parallel = lint_paths([tmp_path], select=RPR3XX, jobs=2)
        assert serial == parallel
        assert sorted(set(rule_ids(serial))) == ["RPR301", "RPR305"]


# ----------------------------------------------------------------------
# SARIF output + explain cards
# ----------------------------------------------------------------------

#: Hand-embedded subset of the SARIF 2.1.0 schema (the CI box has no
#: network): the structural constraints code-scanning upload actually
#: relies on — version pin, tool.driver.name, rule descriptors, result
#: shape with 1-based region coordinates.
SARIF_21_SCHEMA_SUBSET = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarifOutput:
    def _findings(self, tmp_path):
        return lint_project(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "def f(n):\n"
                    "    frozen = np.zeros(n)\n"
                    "    frozen.setflags(write=False)\n"
                    "    frozen[0] = 1.0\n"
                    "    return frozen\n"
                )
            },
            select={"RPR304"},
        )

    def test_sarif_validates_against_21_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        findings = self._findings(tmp_path)
        assert findings  # the fixture must actually produce a result
        document = json.loads(render_sarif(findings, rules=all_rules()))
        jsonschema.validate(document, SARIF_21_SCHEMA_SUBSET)

    def test_sarif_rule_metadata_comes_from_explain_cards(self, tmp_path):
        findings = self._findings(tmp_path)
        document = json.loads(render_sarif(findings, rules=all_rules()))
        driver = document["runs"][0]["tool"]["driver"]
        by_id = {rule["id"]: rule for rule in driver["rules"]}
        card = by_id["RPR304"]
        assert "frozen" in card["fullDescription"]["text"].lower()
        assert "Bad:" in card["help"]["text"]
        assert card["defaultConfiguration"]["level"] == "error"
        result = document["runs"][0]["results"][0]
        assert result["ruleId"] == "RPR304"
        assert result["ruleIndex"] == [r.rule_id for r in all_rules()].index(
            "RPR304"
        )
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_empty_findings_still_valid_sarif(self):
        jsonschema = pytest.importorskip("jsonschema")
        document = json.loads(render_sarif([], rules=all_rules()))
        jsonschema.validate(document, SARIF_21_SCHEMA_SUBSET)
        assert document["runs"][0]["results"] == []


class TestExplainCards:
    def test_every_rpr3xx_rule_has_a_full_card(self):
        for rule in all_rules():
            if rule.rule_id not in RPR3XX:
                continue
            assert rule.rationale, rule.rule_id
            assert rule.example_bad, rule.rule_id
            assert rule.example_good, rule.rule_id

    def test_explain_exit_codes(self, capsys):
        from repro.cli import _explain_rule

        assert _explain_rule("RPR304") == 0
        assert _explain_rule("rpr301") == 0  # case-insensitive
        assert _explain_rule("RPR999") == 2
        capsys.readouterr()
