"""Case-study / trade-off harness tests (Fig. 1, Table IV)."""

import pytest

from repro.core.optimization import (
    TradeoffPoint,
    case_study_base_config,
    case_study_environment,
    case_study_snr_map,
    joint_wins,
    literature_baselines,
    paper_table_iv_points,
    run_case_study_models,
    run_case_study_simulation,
)
from repro.core.optimization.baselines import (
    payload_tuning_baseline,
    power_tuning_baseline,
    retransmission_tuning_baseline,
)
from repro.errors import OptimizationError


class TestBaselines:
    def test_power_tuning(self):
        base = case_study_base_config()
        tuned = power_tuning_baseline()(base)
        assert tuned.ptx_level == 31
        assert tuned.payload_bytes == base.payload_bytes

    def test_retransmission_tuning(self):
        tuned = retransmission_tuning_baseline(8)(case_study_base_config())
        assert tuned.n_max_tries == 8
        assert tuned.ptx_level == 23

    def test_payload_tuning(self):
        tuned = payload_tuning_baseline(5, "minimal")(case_study_base_config())
        assert tuned.payload_bytes == 5

    def test_literature_set(self):
        names = [s.name for s in literature_baselines()]
        assert "tuning-power" in names
        assert "tuning-retransmissions" in names
        assert sum("payload" in n for n in names) == 3

    def test_validation(self):
        with pytest.raises(OptimizationError):
            power_tuning_baseline(30)
        with pytest.raises(OptimizationError):
            payload_tuning_baseline(0, "x")
        with pytest.raises(OptimizationError):
            retransmission_tuning_baseline(0)


class TestCaseStudySnr:
    def test_snr_map_matches_paper_statement(self):
        """P_tx 23 → 3 dB and P_tx 31 → 6 dB (Sec. VIII-C)."""
        snr_map = case_study_snr_map()
        assert snr_map[23] == pytest.approx(3.0)
        assert snr_map[31] == pytest.approx(6.0)

    def test_environment_realizes_snr(self):
        env = case_study_environment(distance_m=40.0)
        mean_rssi = env.pathloss.mean_rssi_dbm(-3.0, 40.0)  # P_tx 23
        snr = mean_rssi - env.noise.mean_dbm
        assert snr == pytest.approx(3.0, abs=0.01)


class TestModelCaseStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return run_case_study_models()

    def test_six_strategies(self, points):
        assert len(points) == 6

    def test_joint_dominates(self, points):
        """The headline claim of Fig. 1 / Table IV."""
        assert joint_wins(points)

    def test_joint_uses_multiple_knobs(self, points):
        joint = next(p for p in points if p.strategy.startswith("joint"))
        base = case_study_base_config()
        changed = sum(
            getattr(joint.config, f) != getattr(base, f)
            for f in ("ptx_level", "payload_bytes", "n_max_tries")
        )
        assert changed >= 2  # genuinely multi-parameter

    def test_joint_payload_is_intermediate(self, points):
        """The paper's joint optimum (68 B) is neither min nor max."""
        joint = next(p for p in points if p.strategy.startswith("joint"))
        assert 40 <= joint.config.payload_bytes <= 100

    def test_shapes_match_table_iv(self, points):
        """Published vs modelled rows agree in ordering on both axes."""
        paper = {p.strategy: p for p in paper_table_iv_points()}
        ours = {p.strategy: p for p in points}
        # Energy ordering: retransmission tuning is by far the worst.
        worst_energy_ours = max(ours.values(), key=lambda p: p.u_eng_uj_per_bit)
        assert "retransmissions" in worst_energy_ours.strategy or (
            "maximal" in worst_energy_ours.strategy
        )
        # Joint beats power tuning on goodput, as in the paper.
        assert (
            ours["joint (our work)"].goodput_kbps
            > ours["tuning-power [11]"].goodput_kbps
        )
        assert (
            paper["joint (our work)"].goodput_kbps
            > paper["tuning-power [11]"].goodput_kbps
        )

    def test_energies_close_to_paper(self, points):
        """Model energies land within ~25% of the published Table IV."""
        paper_energy = {
            "tuning-power [11]": 0.35,
            "tuning-retransmissions [6]": 1.81,
            "minimal-payload [1]": 0.50,
        }
        ours = {p.strategy: p.u_eng_uj_per_bit for p in points}
        for name, expected in paper_energy.items():
            assert ours[name] == pytest.approx(expected, rel=0.25)


class TestSimulatedCaseStudy:
    def test_simulation_confirms_dominance(self):
        model_points = run_case_study_models()
        sim_points = run_case_study_simulation(
            model_points, n_packets=400, seed=3
        )
        assert len(sim_points) == len(model_points)
        joint = next(p for p in sim_points if p.strategy.startswith("joint"))
        power = next(p for p in sim_points if "tuning-power" in p.strategy)
        assert joint.goodput_kbps > power.goodput_kbps
        assert joint.u_eng_uj_per_bit < power.u_eng_uj_per_bit


class TestTradeoffPoint:
    def test_dominates(self):
        cfg = case_study_base_config()
        a = TradeoffPoint("a", cfg, goodput_kbps=20.0, u_eng_uj_per_bit=0.2)
        b = TradeoffPoint("b", cfg, goodput_kbps=10.0, u_eng_uj_per_bit=0.3)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_joint_wins_requires_single_joint(self):
        cfg = case_study_base_config()
        with pytest.raises(OptimizationError):
            joint_wins([TradeoffPoint("a", cfg, 1.0, 1.0)])
