"""Property-based invariants across the empirical models (hypothesis).

These pin the *structural* properties the guidelines and the optimizer rely
on — monotonicities, bounds and consistency relations that must hold for
every parameter combination, not just the benchmarked points.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import StackConfig, VALID_PTX_LEVELS
from repro.core import (
    DelayModel,
    EnergyModel,
    GoodputModel,
    PerModel,
    PlrRadioModel,
    ServiceTimeModel,
)
from repro.radio import DATA_RATE_BPS

payloads = st.integers(min_value=1, max_value=114)
snrs = st.floats(min_value=-5.0, max_value=40.0)
tries = st.integers(min_value=1, max_value=8)
retry_delays = st.floats(min_value=0.0, max_value=200.0)


class TestServiceTimeProperties:
    model = ServiceTimeModel()

    @given(payload=payloads, snr=snrs, n=tries, d=retry_delays)
    def test_positive_and_larger_than_components(self, payload, snr, n, d):
        value = self.model.mean_service_time_s(payload, snr, n, d)
        times = self.model.attempt_times(payload, d)
        assert value >= times.t_spi + times.t_succ - 1e-12

    @given(payload=payloads, snr=snrs, n=tries)
    def test_monotone_in_payload(self, payload, snr, n):
        if payload >= 114:
            return
        assert self.model.mean_service_time_s(
            payload + 1, snr, n, 0.0
        ) >= self.model.mean_service_time_s(payload, snr, n, 0.0) - 1e-12

    @given(payload=payloads, snr=snrs, n=tries, d=retry_delays)
    def test_monotone_in_retry_delay(self, payload, snr, n, d):
        slow = self.model.mean_service_time_s(payload, snr, n, d + 10.0)
        fast = self.model.mean_service_time_s(payload, snr, n, d)
        assert slow >= fast - 1e-12

    @given(payload=payloads, snr=snrs, n=tries)
    def test_decreasing_in_snr(self, payload, snr, n):
        assert self.model.mean_service_time_s(
            payload, snr + 5.0, n, 0.0
        ) <= self.model.mean_service_time_s(payload, snr, n, 0.0) + 1e-12


class TestEnergyProperties:
    model = EnergyModel()

    @given(
        level=st.sampled_from(VALID_PTX_LEVELS), payload=payloads, snr=snrs
    )
    def test_positive_or_infinite(self, level, payload, snr):
        value = self.model.u_eng_j_per_bit(level, payload, snr)
        assert value > 0

    @given(payload=payloads, snr=snrs)
    def test_monotone_in_power_at_fixed_snr(self, payload, snr):
        """At the *same* SNR, a higher power level can only cost more."""
        low = self.model.u_eng_j_per_bit(3, payload, snr)
        high = self.model.u_eng_j_per_bit(31, payload, snr)
        if math.isfinite(low) and math.isfinite(high):
            assert high >= low

    @given(level=st.sampled_from(VALID_PTX_LEVELS), payload=payloads, snr=snrs)
    def test_decreasing_in_snr(self, level, payload, snr):
        better = self.model.u_eng_j_per_bit(level, payload, snr + 5.0)
        worse = self.model.u_eng_j_per_bit(level, payload, snr)
        if math.isfinite(worse):
            assert better <= worse + 1e-18

    @given(snr=st.floats(min_value=0.0, max_value=40.0))
    def test_optimal_payload_in_range(self, snr):
        payload, value = self.model.optimal_payload_bytes(31, snr)
        assert 1 <= payload <= 114
        assert value > 0

    @given(
        level=st.sampled_from(VALID_PTX_LEVELS),
        payload=payloads,
        snr=snrs,
        n=tries,
    )
    def test_finite_retries_at_least_ideal(self, level, payload, snr, n):
        """The finite-budget energy is never below the unlimited-retry Eq. 2
        at PER→the same value (dropped packets waste transmissions)."""
        eq2 = self.model.u_eng_j_per_bit(level, payload, snr)
        finite = self.model.u_eng_finite_retries_j_per_bit(
            level, payload, snr, n
        )
        if math.isfinite(eq2):
            assert finite >= eq2 * 0.999


class TestGoodputProperties:
    model = GoodputModel()

    @given(payload=payloads, snr=snrs, n=tries, d=retry_delays)
    def test_bounded_by_phy_rate(self, payload, snr, n, d):
        value = self.model.max_goodput_bps(payload, snr, n, d)
        assert 0.0 <= value < DATA_RATE_BPS

    @given(payload=payloads, snr=snrs, n=tries)
    def test_increasing_in_snr(self, payload, snr, n):
        assert self.model.max_goodput_bps(
            payload, snr + 5.0, n
        ) >= self.model.max_goodput_bps(payload, snr, n) - 1e-9

    @given(snr=st.floats(min_value=0.0, max_value=40.0), n=tries)
    def test_optimal_payload_consistent(self, snr, n):
        payload, goodput = self.model.optimal_payload_bytes(snr, n)
        assert goodput == pytest.approx(
            float(self.model.max_goodput_bps(payload, snr, n))
        )

    @given(payload=payloads, snr=snrs, d=retry_delays)
    def test_retry_delay_never_helps(self, payload, snr, d):
        with_delay = self.model.max_goodput_bps(payload, snr, 3, d + 20.0)
        without = self.model.max_goodput_bps(payload, snr, 3, d)
        assert with_delay <= without + 1e-9


class TestLossProperties:
    per_model = PerModel()
    plr_model = PlrRadioModel()

    @given(payload=payloads, snr=snrs, n=tries)
    def test_plr_below_per_base(self, payload, snr, n):
        base = self.plr_model.attempt_failure_probability(payload, snr)
        plr = self.plr_model.plr_radio(payload, snr, n)
        assert plr <= base + 1e-12

    @given(payload=payloads, snr=snrs, n=tries)
    def test_plr_decreasing_in_tries(self, payload, snr, n):
        assert self.plr_model.plr_radio(
            payload, snr, n + 1
        ) <= self.plr_model.plr_radio(payload, snr, n) + 1e-12

    @given(payload=payloads, snr=snrs)
    def test_per_snr_inverse_consistent(self, payload, snr):
        per = self.per_model.per(payload, snr)
        if 0.0 < per < 1.0:
            recovered = self.per_model.snr_for_target_per(payload, per)
            assert recovered == pytest.approx(snr, abs=1e-6)


class TestDelayProperties:
    model = DelayModel()

    @settings(max_examples=60)
    @given(
        payload=payloads,
        snr=st.floats(min_value=0.0, max_value=40.0),
        n=tries,
        t_pkt=st.floats(min_value=5.0, max_value=500.0),
        q_max=st.sampled_from((1, 5, 30)),
    )
    def test_estimate_consistent(self, payload, snr, n, t_pkt, q_max):
        config = StackConfig(
            payload_bytes=payload, n_max_tries=n, t_pkt_ms=t_pkt, q_max=q_max
        )
        estimate = self.model.estimate(config, snr)
        assert estimate.total_delay_s >= estimate.service_time_s
        assert estimate.queueing_delay_s <= q_max * estimate.service_time_s + 1e-12
        assert estimate.rho == pytest.approx(
            self.model.utilization(config, snr)
        )
        if estimate.rho < 0.5:
            # Light traffic: queueing is a small fraction of service.
            assert estimate.queueing_delay_s < 2 * estimate.service_time_s
