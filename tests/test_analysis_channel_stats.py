"""Channel characterization tests (repro.analysis.channel_stats) — Figs. 3–5."""

import numpy as np
import pytest

from repro.analysis.channel_stats import (
    path_loss_fit_from_survey,
    rssi_deviation_table,
    snr_distributions,
    survey_rssi,
)
from repro.channel import HALLWAY_2012, QUIET_HALLWAY
from repro.errors import ChannelError


@pytest.fixture(scope="module")
def survey():
    return survey_rssi(
        HALLWAY_2012,
        distances_m=(5.0, 10.0, 15.0, 20.0, 30.0, 35.0),
        ptx_levels=(3, 15, 31),
        n_samples=300,
        seed=0,
    )


class TestSurvey:
    def test_cell_count(self, survey):
        assert len(survey) == 18

    def test_mean_rssi_tracks_power(self, survey):
        by_level = {
            lvl: next(
                s for s in survey if s.distance_m == 10.0 and s.ptx_level == lvl
            )
            for lvl in (3, 15, 31)
        }
        assert (
            by_level[3].mean_rssi_dbm
            < by_level[15].mean_rssi_dbm
            < by_level[31].mean_rssi_dbm
        )

    def test_validation(self):
        with pytest.raises(ChannelError):
            survey_rssi(HALLWAY_2012, (10.0,), (31,), n_samples=1)


class TestPathLossFit:
    def test_fig3_shape(self, survey):
        """Fig. 3: the survey re-fits near n = 2.19, σ = 3.2."""
        fit = path_loss_fit_from_survey(survey, ptx_level=31)
        assert fit["exponent"] == pytest.approx(2.19, abs=0.9)
        assert 1.0 < fit["sigma_db"] < 6.0

    def test_needs_enough_distances(self, survey):
        short = [s for s in survey if s.distance_m in (5.0, 10.0)]
        with pytest.raises(ChannelError):
            path_loss_fit_from_survey(short, ptx_level=31)


class TestRssiDeviation:
    def test_fig4_35m_most_variable(self, survey):
        """Fig. 4: the 35 m position shows the largest RSSI deviation."""
        table = rssi_deviation_table(survey)
        # Compare at full power where no sensitivity clamping interferes.
        by_distance = {
            d: table[(d, 31)] for d in (5.0, 10.0, 15.0, 20.0, 30.0, 35.0)
        }
        assert max(by_distance, key=by_distance.get) == 35.0

    def test_fig4_sensitivity_clamp_at_35m_low_power(self, survey):
        """Fig. 4's note: at 35 m / P_tx 3 the deviation collapses because
        readings sit at the CC2420 sensitivity floor."""
        table = rssi_deviation_table(survey)
        assert table[(35.0, 3)] < table[(35.0, 31)]


class TestSnrDistributions:
    def test_fig5_real_vs_constant(self):
        """Fig. 5: the real-noise SNR is more spread than the constant-noise
        view, and their means sit near each other (the floor averages −95)."""
        dists = snr_distributions(
            HALLWAY_2012, distance_m=20.0, ptx_level=23, n_samples=4000, seed=1
        )
        assert dists.real_std > dists.constant_std
        assert dists.real_mean == pytest.approx(dists.constant_mean, abs=1.5)

    def test_histogram_density_normalized(self):
        dists = snr_distributions(
            QUIET_HALLWAY, distance_m=20.0, ptx_level=23, n_samples=2000, seed=2
        )
        centers, density = dists.histogram("real", bin_width_db=1.0)
        assert centers.shape == density.shape
        assert np.sum(density) * 1.0 == pytest.approx(1.0, abs=0.01)
