"""Delay-model and zone tests (Eq. 9, Sec. III-B / VI)."""

import pytest

from repro.config import StackConfig
from repro.core import DelayModel, JointEffectZone, classify_snr
from repro.core.zones import (
    in_grey_zone,
    in_low_loss_zone,
    snr_margin_over_grey_zone,
    zone_boundaries_db,
)


class TestZones:
    def test_boundaries(self):
        assert zone_boundaries_db() == (5.0, 12.0, 19.0)

    @pytest.mark.parametrize(
        "snr, zone",
        [
            (2.0, JointEffectZone.DEAD),
            (5.0, JointEffectZone.HIGH_IMPACT),
            (11.9, JointEffectZone.HIGH_IMPACT),
            (12.0, JointEffectZone.MEDIUM_IMPACT),
            (18.9, JointEffectZone.MEDIUM_IMPACT),
            (19.0, JointEffectZone.LOW_IMPACT),
            (35.0, JointEffectZone.LOW_IMPACT),
        ],
    )
    def test_classification(self, snr, zone):
        assert classify_snr(snr) is zone

    def test_grey_zone_predicate(self):
        assert in_grey_zone(8.0)
        assert not in_grey_zone(4.0)
        assert not in_grey_zone(12.0)

    def test_low_loss_predicate(self):
        assert in_low_loss_zone(12.0)
        assert not in_low_loss_zone(11.9)

    def test_margin(self):
        assert snr_margin_over_grey_zone(19.0) == pytest.approx(7.0)
        assert snr_margin_over_grey_zone(10.0) == pytest.approx(-2.0)


class TestDelayModel:
    def setup_method(self):
        self.model = DelayModel()
        self.config = StackConfig(
            t_pkt_ms=30.0, payload_bytes=110, n_max_tries=3, d_retry_ms=30.0,
            q_max=30,
        )

    def test_table_ii_utilizations(self):
        """Eq. 9 against the published Table II ρ values."""
        assert self.model.utilization(self.config, 10.0) == pytest.approx(
            1.236, rel=0.08
        )
        assert self.model.utilization(self.config, 20.0) == pytest.approx(
            0.713, rel=0.08
        )
        assert self.model.utilization(self.config, 30.0) == pytest.approx(
            0.617, rel=0.08
        )

    def test_regime_flips_at_grey_zone(self):
        assert self.model.regime(self.config, 10.0).overloaded
        assert self.model.regime(self.config, 25.0).stable

    def test_overload_delay_scales_with_queue(self):
        """Fig. 15: Q_max 30 vs 1 costs orders of magnitude in the grey zone."""
        small_q = self.config.with_updates(q_max=1)
        est_small = self.model.estimate(small_q, 9.0)
        est_large = self.model.estimate(self.config, 9.0)
        assert est_large.total_delay_s > 10 * est_small.total_delay_s

    def test_stable_delay_near_service_time(self):
        est = self.model.estimate(self.config, 30.0)
        assert est.rho < 1.0
        assert est.queueing_delay_s < est.service_time_s * 3

    def test_estimate_decomposition(self):
        est = self.model.estimate(self.config, 15.0)
        assert est.total_delay_s == pytest.approx(
            est.service_time_s + est.queueing_delay_s
        )

    def test_max_stable_payload(self):
        payload = self.model.max_stable_payload_bytes(self.config, 20.0)
        assert 1 <= payload <= 114
        stable_cfg = self.config.with_updates(payload_bytes=payload)
        assert self.model.utilization(stable_cfg, 20.0) < 1.0

    def test_max_stable_payload_zero_when_hopeless(self):
        fast = self.config.with_updates(t_pkt_ms=5.0)
        assert self.model.max_stable_payload_bytes(fast, 10.0) == 0

    def test_min_stable_interarrival(self):
        t_pkt = self.model.min_stable_interarrival_ms(self.config, 10.0)
        relaxed = self.config.with_updates(t_pkt_ms=t_pkt * 1.01)
        assert self.model.utilization(relaxed, 10.0) < 1.0
