"""Campaign runner, summary and dataset tests (repro.campaign)."""

import math

import numpy as np
import pytest

from repro.campaign import (
    CampaignDataset,
    CampaignRunner,
    ConfigSummary,
    points_as_arrays,
    sweep_snr_payload,
)
from repro.channel import QUIET_HALLWAY
from repro.config import ParameterSpace, StackConfig
from repro.errors import CampaignError, DatasetError


@pytest.fixture(scope="module")
def tiny_dataset():
    space = ParameterSpace(
        distances_m=(10.0,),
        ptx_levels=(15, 31),
        n_max_tries_values=(1,),
        d_retry_values_ms=(0.0,),
        q_max_values=(1,),
        t_pkt_values_ms=(50.0,),
        payload_values_bytes=(20, 110),
    )
    runner = CampaignRunner(
        environment=QUIET_HALLWAY, packets_per_config=60, engine="des"
    )
    return runner.run(space, description="tiny test campaign")


class TestCampaignRunner:
    def test_runs_all_configs(self, tiny_dataset):
        assert len(tiny_dataset) == 4

    def test_summary_fields_sane(self, tiny_dataset):
        for s in tiny_dataset:
            assert s.n_packets == 60
            assert 0.0 <= s.per <= 1.0
            assert 0.0 <= s.plr_total <= 1.0
            assert s.goodput_kbps >= 0.0
            assert s.engine == "des"

    def test_deterministic(self):
        space = [StackConfig(distance_m=10.0, ptx_level=31, payload_bytes=50)]
        r1 = CampaignRunner(packets_per_config=50).run(space)
        r2 = CampaignRunner(packets_per_config=50).run(space)
        assert r1.summaries[0].per == r2.summaries[0].per
        assert r1.summaries[0].seed == r2.summaries[0].seed

    def test_distinct_seeds_per_config(self, tiny_dataset):
        seeds = [s.seed for s in tiny_dataset]
        assert len(set(seeds)) == len(seeds)

    def test_fast_engine_rejects_queueing(self):
        runner = CampaignRunner(engine="fast", packets_per_config=50)
        with pytest.raises(CampaignError):
            runner.run_config(StackConfig(q_max=30))

    def test_fast_engine_runs_queueless(self):
        runner = CampaignRunner(engine="fast", packets_per_config=500)
        summary = runner.run_config(
            StackConfig(distance_m=10.0, ptx_level=31, q_max=1, payload_bytes=50)
        )
        assert summary.engine == "fast"
        assert summary.plr_queue == 0.0
        assert summary.per < 0.2

    def test_unknown_engine(self):
        with pytest.raises(CampaignError):
            CampaignRunner(engine="warp")

    def test_empty_space(self):
        with pytest.raises(CampaignError):
            CampaignRunner(packets_per_config=10).run([])

    def test_progress_callback(self):
        calls = []
        runner = CampaignRunner(
            packets_per_config=20,
            progress=lambda i, n, s: calls.append((i, n)),
        )
        runner.run([StackConfig(), StackConfig(payload_bytes=5)])
        assert calls == [(0, 2), (1, 2)]


class TestConfigSummaryRoundtrip:
    def test_dict_roundtrip(self, tiny_dataset):
        for s in tiny_dataset:
            assert ConfigSummary.from_dict(s.as_dict()) == s

    def test_nonfinite_values_survive(self):
        s = tiny_dataset_row_with_inf()
        restored = ConfigSummary.from_dict(s.as_dict())
        assert math.isinf(restored.u_eng_uj_per_bit)

    def test_missing_field_rejected(self, tiny_dataset):
        row = tiny_dataset.summaries[0].as_dict()
        del row["per"]
        with pytest.raises(DatasetError):
            ConfigSummary.from_dict(row)


def tiny_dataset_row_with_inf():
    return ConfigSummary(
        config=StackConfig(),
        engine="des",
        n_packets=10,
        seed=1,
        mean_snr_db=5.0,
        mean_rssi_dbm=-90.0,
        per=1.0,
        plr_radio=1.0,
        plr_queue=0.0,
        plr_total=1.0,
        goodput_kbps=0.0,
        mean_delay_ms=math.nan,
        mean_service_time_ms=20.0,
        mean_tries=1.0,
        u_eng_uj_per_bit=math.inf,
        duration_s=1.0,
    )


class TestCampaignDataset:
    def test_save_load_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "campaign.jsonl"
        tiny_dataset.save(path)
        loaded = CampaignDataset.load(path)
        assert len(loaded) == len(tiny_dataset)
        assert loaded.description == "tiny test campaign"
        assert loaded.summaries[0] == tiny_dataset.summaries[0]

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            CampaignDataset.load(tmp_path / "nope.jsonl")

    def test_load_truncated(self, tiny_dataset, tmp_path):
        path = tmp_path / "campaign.jsonl"
        tiny_dataset.save(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(DatasetError):
            CampaignDataset.load(path)

    def test_load_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(DatasetError):
            CampaignDataset.load(path)

    def test_select(self, tiny_dataset):
        sub = tiny_dataset.select(ptx_level=31)
        assert len(sub) == 2
        assert all(s.config.ptx_level == 31 for s in sub)

    def test_select_unknown_field(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.select(bogus=1)

    def test_column_and_unique(self, tiny_dataset):
        per = tiny_dataset.column("per")
        assert per.shape == (4,)
        assert tiny_dataset.unique("payload_bytes") == [20.0, 110.0]

    def test_column_unknown(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.column("bogus")

    def test_where(self, tiny_dataset):
        sub = tiny_dataset.where(lambda s: s.per < 0.5)
        assert all(s.per < 0.5 for s in sub)


class TestSnrSweep:
    def test_grid_size(self):
        points = sweep_snr_payload([10.0, 20.0], [20, 110], n_packets=300)
        assert len(points) == 4

    def test_per_shape_across_grid(self):
        points = sweep_snr_payload(
            [6.0, 20.0], [20, 110], n_packets=2000, seed=3
        )
        by_key = {(p.mean_snr_db, p.payload_bytes): p.per for p in points}
        assert by_key[(6.0, 110)] > by_key[(20.0, 110)]
        assert by_key[(6.0, 110)] > by_key[(6.0, 20)]

    def test_points_as_arrays(self):
        points = sweep_snr_payload([10.0], [20, 110], n_packets=200)
        payload, snr, per, plr, tries = points_as_arrays(points)
        assert payload.shape == snr.shape == per.shape == (2,)
        assert np.all(tries >= 1.0)

    def test_empty_axes_rejected(self):
        with pytest.raises(CampaignError):
            sweep_snr_payload([], [20])
        with pytest.raises(CampaignError):
            points_as_arrays([])
