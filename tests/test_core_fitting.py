"""Model-fitting tests (repro.core.fitting)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fitting import (
    fit_exponential_family,
    fit_ntries_model,
    fit_per_model,
    fit_plr_radio_model,
)
from repro.errors import FittingError


def synthetic_family(alpha, beta, noise_std=0.0, seed=0):
    """Noisy observations of α · l_D · exp(β · SNR) over a grid."""
    rng = np.random.default_rng(seed)
    payloads, snrs = np.meshgrid(
        np.array([5, 20, 35, 50, 65, 80, 110]), np.arange(5.0, 26.0, 2.0)
    )
    payloads = payloads.ravel()
    snrs = snrs.ravel()
    y = alpha * payloads * np.exp(beta * snrs)
    if noise_std:
        y = y * np.exp(rng.normal(0.0, noise_std, y.size))
    return payloads, snrs, y


class TestFitExponentialFamily:
    def test_exact_recovery(self):
        payloads, snrs, y = synthetic_family(0.0128, -0.15)
        fit = fit_exponential_family(payloads, snrs, y)
        assert fit.alpha == pytest.approx(0.0128, rel=1e-4)
        assert fit.beta == pytest.approx(-0.15, rel=1e-4)
        assert fit.r_squared > 0.999

    def test_noisy_recovery(self):
        payloads, snrs, y = synthetic_family(0.0128, -0.15, noise_std=0.2, seed=1)
        fit = fit_exponential_family(payloads, snrs, y)
        assert fit.alpha == pytest.approx(0.0128, rel=0.25)
        assert fit.beta == pytest.approx(-0.15, rel=0.15)

    @settings(max_examples=20, deadline=None)
    @given(
        alpha=st.floats(min_value=0.002, max_value=0.05),
        beta=st.floats(min_value=-0.3, max_value=-0.05),
    )
    def test_recovery_property(self, alpha, beta):
        """Any generator in the family is recovered from clean data."""
        payloads, snrs, y = synthetic_family(alpha, beta)
        fit = fit_exponential_family(payloads, snrs, y)
        assert fit.alpha == pytest.approx(alpha, rel=0.02)
        assert fit.beta == pytest.approx(beta, rel=0.02)

    def test_log_linear_fallback(self):
        payloads, snrs, y = synthetic_family(0.01, -0.2)
        fit = fit_exponential_family(payloads, snrs, y, use_scipy=False)
        assert fit.method == "log-linear"
        assert fit.alpha == pytest.approx(0.01, rel=1e-3)

    def test_zero_values_dropped(self):
        payloads, snrs, y = synthetic_family(0.01, -0.2)
        y[::3] = 0.0
        fit = fit_exponential_family(payloads, snrs, y)
        assert fit.n_points == int((y > 0).sum())
        assert fit.beta == pytest.approx(-0.2, rel=0.01)

    def test_too_few_points_rejected(self):
        with pytest.raises(FittingError):
            fit_exponential_family([50] * 3, [10.0] * 3, [0.1] * 3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(FittingError):
            fit_exponential_family([50, 60], [10.0], [0.1, 0.2])

    def test_increasing_data_rejected(self):
        """PER that *grows* with SNR means inverted data; refuse the fit."""
        payloads, snrs, y = synthetic_family(0.01, -0.2)
        with pytest.raises(FittingError):
            fit_exponential_family(payloads, -snrs, y)

    def test_summary_readable(self):
        payloads, snrs, y = synthetic_family(0.01, -0.2)
        summary = fit_exponential_family(payloads, snrs, y).summary()
        assert "alpha=" in summary and "beta=" in summary and "R²=" in summary


class TestWrappers:
    def test_ntries_regresses_excess(self):
        """Eq. 7 fit regresses (N̄ − 1), recovering the generator."""
        payloads, snrs, excess = synthetic_family(0.02, -0.18)
        fit = fit_ntries_model(payloads, snrs, excess + 1.0)
        assert fit.alpha == pytest.approx(0.02, rel=0.01)
        assert fit.beta == pytest.approx(-0.18, rel=0.01)

    def test_plr_unrolls_power(self):
        """Eq. 8 fit recovers the base from PLR = base^N."""
        payloads, snrs, base = synthetic_family(0.011, -0.145)
        base = np.clip(base, 0.0, 1.0)
        plr = base**3
        fit = fit_plr_radio_model(payloads, snrs, plr, n_max_tries=3)
        assert fit.beta == pytest.approx(-0.145, rel=0.05)

    def test_plr_vector_tries(self):
        payloads, snrs, base = synthetic_family(0.011, -0.145)
        base = np.clip(base, 0.0, 1.0)
        tries = np.where(np.arange(base.size) % 2 == 0, 1, 3)
        plr = base**tries
        fit = fit_plr_radio_model(payloads, snrs, plr, n_max_tries=tries)
        assert fit.beta == pytest.approx(-0.145, rel=0.05)

    def test_plr_rejects_bad_tries(self):
        payloads, snrs, base = synthetic_family(0.011, -0.145)
        with pytest.raises(FittingError):
            fit_plr_radio_model(payloads, snrs, base, n_max_tries=0)

    def test_per_alias(self):
        payloads, snrs, y = synthetic_family(0.0128, -0.15)
        fit = fit_per_model(payloads, snrs, y)
        assert fit.alpha == pytest.approx(0.0128, rel=1e-3)
