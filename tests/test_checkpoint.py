"""Checkpointed campaign tests (repro.campaign.checkpoint)."""

import pytest

from repro.campaign import (
    CampaignDataset,
    CampaignRunner,
    load_checkpoint_rows,
    run_campaign_checkpointed,
)
from repro.channel import QUIET_HALLWAY
from repro.config import ParameterSpace
from repro.errors import CampaignError, DatasetError


@pytest.fixture
def space():
    return ParameterSpace(
        distances_m=(10.0,),
        ptx_levels=(15, 31),
        n_max_tries_values=(1,),
        d_retry_values_ms=(0.0,),
        q_max_values=(1,),
        t_pkt_values_ms=(100.0,),
        payload_values_bytes=(20, 80),
    )


def run_checkpointed(space, path, **kwargs):
    defaults = dict(
        environment=QUIET_HALLWAY, packets_per_config=40, base_seed=5
    )
    defaults.update(kwargs)
    return run_campaign_checkpointed(space, path, **defaults)


class TestFreshRun:
    def test_produces_full_dataset_and_file(self, space, tmp_path):
        path = tmp_path / "c.jsonl"
        dataset = run_checkpointed(space, path)
        assert len(dataset) == len(space)
        assert len(CampaignDataset.load(path)) == len(space)

    def test_matches_plain_runner(self, space, tmp_path):
        checkpointed = run_checkpointed(space, tmp_path / "c.jsonl")
        plain = CampaignRunner(
            environment=QUIET_HALLWAY, packets_per_config=40, base_seed=5
        ).run(space)
        assert checkpointed.summaries == plain.summaries


class TestResume:
    def test_resume_continues_from_partial(self, space, tmp_path):
        path = tmp_path / "c.jsonl"
        full = run_checkpointed(space, path)
        # Truncate the file to 2 rows (header + 2) and resume.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        completed = []
        resumed = run_checkpointed(
            space, path,
            progress=lambda i, n, s: completed.append(i),
        )
        assert completed == [2, 3]  # only the missing tail ran
        assert resumed.summaries == full.summaries

    def test_resume_on_complete_file_runs_nothing(self, space, tmp_path):
        path = tmp_path / "c.jsonl"
        run_checkpointed(space, path)
        ran = []
        run_checkpointed(space, path, progress=lambda i, n, s: ran.append(i))
        assert ran == []

    def test_wrong_space_rejected(self, space, tmp_path):
        path = tmp_path / "c.jsonl"
        run_checkpointed(space, path)
        other = space.subspace(payload_values_bytes=[80])
        with pytest.raises(CampaignError):
            run_checkpointed(other, path)

    def test_wrong_seed_rejected(self, space, tmp_path):
        path = tmp_path / "c.jsonl"
        run_checkpointed(space, path, base_seed=5)
        with pytest.raises(CampaignError):
            run_checkpointed(space, path, base_seed=6)

    def test_empty_space_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            run_campaign_checkpointed([], tmp_path / "c.jsonl")


class TestCrashSafety:
    """A crash mid-append leaves a partial trailing line; resume redoes it."""

    def test_partial_trailing_json_truncated_and_redone(self, space, tmp_path):
        path = tmp_path / "c.jsonl"
        full = run_checkpointed(space, path)
        # Simulate a crash cutting the last row mid-JSON (no newline).
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n" + lines[3][:25])
        redone = []
        resumed = run_checkpointed(
            space, path, progress=lambda i, n, s: redone.append(i)
        )
        assert redone == [2, 3]  # the cut row was redone, not trusted
        assert resumed.summaries == full.summaries
        assert CampaignDataset.load(path).summaries == full.summaries

    def test_valid_json_missing_fields_also_treated_as_partial(
        self, space, tmp_path
    ):
        path = tmp_path / "c.jsonl"
        full = run_checkpointed(space, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n" + '{"distance_m": 5}\n')
        resumed = run_checkpointed(space, path)
        assert resumed.summaries == full.summaries

    def test_mid_file_corruption_still_raises(self, space, tmp_path):
        path = tmp_path / "c.jsonl"
        run_checkpointed(space, path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:25]  # corrupt a row that is NOT last
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DatasetError):
            run_checkpointed(space, path)

    def test_load_checkpoint_rows_roundtrip(self, space, tmp_path):
        path = tmp_path / "c.jsonl"
        dataset = run_checkpointed(space, path)
        assert load_checkpoint_rows(path) == dataset.summaries

    def test_missing_and_empty_files_raise(self, tmp_path):
        with pytest.raises(DatasetError):
            load_checkpoint_rows(tmp_path / "absent.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(DatasetError):
            load_checkpoint_rows(empty)

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(DatasetError):
            load_checkpoint_rows(path)
