"""Noise-floor model tests (repro.channel.noise)."""

import numpy as np
import pytest

from repro.channel.noise import (
    CONSTANT_NOISE_DBM,
    ConstantNoiseFloor,
    NoiseFloorModel,
    NoiseMode,
)
from repro.errors import ChannelError


class TestNoiseFloorModel:
    def setup_method(self):
        self.model = NoiseFloorModel()

    def test_mean_near_paper_minus_95(self):
        assert self.model.mean_dbm == pytest.approx(-95.0, abs=0.5)

    def test_std_positive(self):
        assert self.model.std_db > 0

    def test_sample_scalar(self):
        rng = np.random.default_rng(0)
        value = self.model.sample(rng)
        assert isinstance(value, float)

    def test_sample_array(self):
        rng = np.random.default_rng(0)
        samples = self.model.sample(rng, size=10000)
        assert samples.shape == (10000,)
        assert samples.mean() == pytest.approx(self.model.mean_dbm, abs=0.2)
        assert samples.std() == pytest.approx(self.model.std_db, abs=0.3)

    def test_heavier_high_tail(self):
        """Interference makes the above-mean tail heavier (Fig. 5's point)."""
        rng = np.random.default_rng(1)
        samples = self.model.sample(rng, size=50000)
        mean = self.model.mean_dbm
        assert (samples > mean + 5).mean() > (samples < mean - 5).mean()

    def test_deterministic_under_seed(self):
        a = self.model.sample(np.random.default_rng(3), size=100)
        b = self.model.sample(np.random.default_rng(3), size=100)
        assert np.array_equal(a, b)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ChannelError):
            NoiseFloorModel(
                modes=(NoiseMode(-95.0, 1.0, 0.5), NoiseMode(-90.0, 1.0, 0.4))
            )

    def test_rejects_empty(self):
        with pytest.raises(ChannelError):
            NoiseFloorModel(modes=())

    def test_mode_validation(self):
        with pytest.raises(ChannelError):
            NoiseMode(-95.0, -1.0, 1.0)
        with pytest.raises(ChannelError):
            NoiseMode(-95.0, 1.0, 0.0)


class TestConstantNoiseFloor:
    def test_default_level(self):
        model = ConstantNoiseFloor()
        assert model.level_dbm == CONSTANT_NOISE_DBM == -95.0

    def test_no_variance(self):
        model = ConstantNoiseFloor()
        assert model.std_db == 0.0
        rng = np.random.default_rng(0)
        samples = model.sample(rng, size=100)
        assert np.all(samples == -95.0)

    def test_scalar_sample(self):
        model = ConstantNoiseFloor(-90.0)
        assert model.sample(np.random.default_rng(0)) == -90.0
        assert model.mean_dbm == -90.0
