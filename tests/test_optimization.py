"""Optimization-layer tests (repro.core.optimization) — Sec. VIII."""

import pytest
from hypothesis import given, strategies as st

from repro.config import StackConfig
from repro.core.optimization import (
    ConfigEvaluation,
    Constraint,
    ModelEvaluator,
    TuningGrid,
    best_by,
    default_bounds_for,
    dominates,
    evaluate_grid,
    knee_point,
    pareto_front,
    snr_map_from_environment,
    snr_map_from_reference,
    solve_epsilon_constraint,
    sweep_epsilon,
)
from repro.channel import QUIET_HALLWAY
from repro.errors import InfeasibleError, OptimizationError


@pytest.fixture(scope="module")
def evaluator():
    return ModelEvaluator(snr_by_level=snr_map_from_reference(12.0))


@pytest.fixture(scope="module")
def evaluations(evaluator):
    grid = TuningGrid(
        payload_values_bytes=tuple(range(10, 115, 10)),
        n_max_tries_values=(1, 3, 8),
        q_max_values=(1,),
    )
    return evaluate_grid(evaluator, grid)


class TestSnrMaps:
    def test_reference_map_tracks_dbm(self):
        snr_map = snr_map_from_reference(6.0, reference_level=31)
        assert snr_map[31] == pytest.approx(6.0)
        assert snr_map[23] == pytest.approx(3.0)  # −3 dBm below level 31
        assert snr_map[3] == pytest.approx(-19.0)

    def test_environment_map_monotone(self):
        snr_map = snr_map_from_environment(QUIET_HALLWAY, 20.0)
        levels = sorted(snr_map)
        values = [snr_map[lvl] for lvl in levels]
        assert values == sorted(values)


class TestModelEvaluator:
    def test_evaluation_fields(self, evaluator):
        ev = evaluator.evaluate(StackConfig(ptx_level=31, payload_bytes=80))
        assert ev.snr_db == pytest.approx(12.0)
        assert ev.max_goodput_kbps > 0
        assert ev.u_eng_uj_per_bit > 0
        assert 0 <= ev.plr_total <= 1
        assert ev.delay_ms > 0

    def test_objective_lookup(self, evaluator):
        ev = evaluator.evaluate(StackConfig(ptx_level=31))
        assert ev.objective("goodput") == -ev.max_goodput_kbps
        assert ev.objective("energy") == ev.u_eng_uj_per_bit
        with pytest.raises(OptimizationError):
            ev.objective("bogus")

    def test_unknown_level_rejected(self):
        evaluator = ModelEvaluator(snr_by_level={31: 10.0})
        with pytest.raises(OptimizationError):
            evaluator.evaluate(StackConfig(ptx_level=3))

    def test_empty_map_rejected(self):
        with pytest.raises(OptimizationError):
            ModelEvaluator(snr_by_level={})


class TestGrid:
    def test_grid_size(self):
        grid = TuningGrid(
            ptx_levels=(31,), payload_values_bytes=(10, 20),
            n_max_tries_values=(1,), q_max_values=(1,),
        )
        assert len(grid) == 2
        assert len(list(grid.configs())) == 2

    def test_best_by_goodput(self, evaluations):
        best = best_by(evaluations, "goodput")
        assert all(
            best.max_goodput_kbps >= e.max_goodput_kbps for e in evaluations
        )

    def test_best_by_empty(self):
        with pytest.raises(OptimizationError):
            best_by([], "goodput")


class TestPareto:
    def test_dominates_basic(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_dominates_validation(self):
        with pytest.raises(OptimizationError):
            dominates((1.0,), (1.0, 2.0))
        with pytest.raises(OptimizationError):
            dominates((), ())

    def test_front_is_nondominated(self, evaluations):
        front = pareto_front(
            evaluations, lambda e: (e.objective("goodput"), e.objective("energy"))
        )
        assert front
        vectors = [
            (e.objective("goodput"), e.objective("energy")) for e in front
        ]
        for i, a in enumerate(vectors):
            assert not any(
                dominates(b, a) for j, b in enumerate(vectors) if i != j
            )

    def test_front_covers_extremes(self, evaluations):
        """The front achieves both single-objective optima (values, since
        argmin configs may be tied and dominated on the other axis)."""
        front = pareto_front(
            evaluations, lambda e: (e.objective("goodput"), e.objective("energy"))
        )
        best_goodput = best_by(evaluations, "goodput").max_goodput_kbps
        best_energy = best_by(evaluations, "energy").u_eng_uj_per_bit
        assert max(e.max_goodput_kbps for e in front) == pytest.approx(best_goodput)
        assert min(e.u_eng_uj_per_bit for e in front) == pytest.approx(best_energy)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_front_property(self, points):
        """Every non-front point is dominated by some front point."""
        front = pareto_front(points, lambda p: p)
        assert front
        for p in points:
            if p not in front:
                assert any(dominates(f, p) for f in front)

    def test_knee_point_on_front(self, evaluations):
        objectives = lambda e: (e.objective("goodput"), e.objective("energy"))
        knee = knee_point(evaluations, objectives)
        assert knee in pareto_front(evaluations, objectives)

    def test_knee_empty_rejected(self):
        with pytest.raises(OptimizationError):
            knee_point([], lambda p: p)


class TestEpsilonConstraint:
    def test_unconstrained_equals_best(self, evaluations):
        best = solve_epsilon_constraint(evaluations, "goodput")
        assert best.config == best_by(evaluations, "goodput").config

    def test_constraint_respected(self, evaluations):
        budget = 0.4
        best = solve_epsilon_constraint(
            evaluations,
            "goodput",
            (Constraint(objective="energy", upper_bound=budget),),
        )
        assert best.u_eng_uj_per_bit <= budget
        unconstrained = best_by(evaluations, "goodput")
        assert best.max_goodput_kbps <= unconstrained.max_goodput_kbps

    def test_infeasible_raises_with_detail(self, evaluations):
        with pytest.raises(InfeasibleError) as err:
            solve_epsilon_constraint(
                evaluations,
                "goodput",
                (Constraint(objective="energy", upper_bound=1e-9),),
            )
        assert "energy" in str(err.value)

    def test_empty_rejected(self):
        with pytest.raises(OptimizationError):
            solve_epsilon_constraint([], "goodput")

    def test_sweep_traces_tradeoff(self, evaluations):
        bounds = default_bounds_for(evaluations, "energy", n_points=10)
        front = sweep_epsilon(evaluations, "goodput", "energy", bounds)
        assert front
        # Looser energy budget never hurts goodput.
        goodputs = [p.max_goodput_kbps for p in front]
        assert goodputs == sorted(goodputs)

    def test_default_bounds_validation(self, evaluations):
        with pytest.raises(OptimizationError):
            default_bounds_for(evaluations, "energy", n_points=1)
