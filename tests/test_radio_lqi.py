"""LQI model tests (repro.radio.lqi)."""

import numpy as np
import pytest

from repro.radio import lqi


class TestMeanLqi:
    def test_saturates_high(self):
        assert lqi.mean_lqi(30.0) == lqi.LQI_MAX
        assert lqi.mean_lqi(20.0) == lqi.LQI_MAX

    def test_floors_low(self):
        assert lqi.mean_lqi(-5.0) == lqi.LQI_MIN
        assert lqi.mean_lqi(0.0) == lqi.LQI_MIN

    def test_midpoint(self):
        assert lqi.mean_lqi(10.0) == pytest.approx((lqi.LQI_MAX + lqi.LQI_MIN) / 2)

    def test_monotone(self):
        snrs = np.linspace(-5, 30, 100)
        values = lqi.mean_lqi(snrs)
        assert np.all(np.diff(values) >= 0)

    def test_vectorized_shape(self):
        assert lqi.mean_lqi(np.zeros(7)).shape == (7,)


class TestSampleLqi:
    def test_in_register_range(self):
        rng = np.random.default_rng(0)
        samples = lqi.sample_lqi(np.full(1000, 10.0), rng)
        assert samples.min() >= lqi.LQI_MIN
        assert samples.max() <= lqi.LQI_MAX

    def test_scalar_return(self):
        rng = np.random.default_rng(0)
        value = lqi.sample_lqi(15.0, rng)
        assert isinstance(value, float)
        assert lqi.LQI_MIN <= value <= lqi.LQI_MAX

    def test_mean_tracks_model(self):
        rng = np.random.default_rng(1)
        samples = lqi.sample_lqi(np.full(5000, 12.0), rng)
        assert samples.mean() == pytest.approx(lqi.mean_lqi(12.0), abs=0.5)

    def test_deterministic_under_seed(self):
        a = lqi.sample_lqi(np.full(10, 8.0), np.random.default_rng(7))
        b = lqi.sample_lqi(np.full(10, 8.0), np.random.default_rng(7))
        assert np.array_equal(a, b)
