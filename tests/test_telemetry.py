"""Estimator, ingest, and simulator tests for the telemetry pipeline."""

import numpy as np
import pytest

from repro.errors import ProtocolError, TelemetryError
from repro.fleet import FleetState
from repro.telemetry import (
    DeviceFleetSimulator,
    SnrEstimator,
    TelemetryIngestor,
    TelemetrySnrSource,
    UPLINK_TEMPLATE_EXACT,
    UPLINK_TEMPLATE_V1,
    UplinkCodec,
)


def make_state(n_links: int, snr_db: float = 15.0) -> FleetState:
    return FleetState.from_base_snr(np.full(n_links, snr_db))


def encode(uplinks, template=UPLINK_TEMPLATE_V1):
    """Binary batch from (link, seq, snr) triples through the real codec."""
    codec = UplinkCodec(template)
    link = np.array([u[0] for u in uplinks], dtype=np.int64)
    seq = np.array([u[1] for u in uplinks], dtype=np.int64)
    snr = np.array([u[2] for u in uplinks], dtype=np.float64)
    if template is UPLINK_TEMPLATE_EXACT:
        columns = {
            "link_id": link, "seq": seq, "snr_db": snr,
            "plr": np.zeros(len(link)),
        }
    else:
        columns = {
            "link_id": link, "seq": seq, "rssi_dbm": -90.0 + snr,
            "noise_dbm": np.full(len(link), -90.0),
            "plr": np.zeros(len(link)),
        }
    return codec.encode_batch(columns)


class TestEstimator:
    def test_matches_scalar_ewma_reference(self):
        state = make_state(4, snr_db=10.0)
        estimator = SnrEstimator(alpha=0.3)
        rng = np.random.default_rng(0)
        expected = state.snr_db.copy()
        for step in range(5):
            n = int(rng.integers(1, 12))
            links = rng.integers(0, 4, size=n).astype(np.int64)
            values = rng.normal(12.0, 3.0, size=n)
            # Scalar reference: one EWMA fold per measurement, in order
            # within each link (stable argsort preserves arrival order).
            order = np.argsort(links, kind="stable")
            for index in order:
                link = int(links[index])
                expected[link] = (
                    0.7 * expected[link] + 0.3 * float(values[index])
                )
            estimator.apply(state, links, values, now_s=float(step))
            np.testing.assert_allclose(
                state.snr_db, expected, rtol=0.0, atol=1e-12
            )

    def test_alpha_one_is_exact_passthrough(self):
        state = make_state(3)
        estimator = SnrEstimator(alpha=1.0)
        values = np.array([7.123456789012345, -2.5, 31.000000000000004])
        estimator.apply(
            state, np.array([0, 1, 2]), values.copy(), now_s=0.0
        )
        np.testing.assert_array_equal(state.snr_db, values)

    def test_clamp_limits_innovation(self):
        state = make_state(1, snr_db=10.0)
        estimator = SnrEstimator(alpha=1.0, clamp_db=2.0)
        estimator.apply(state, np.array([0]), np.array([50.0]), now_s=0.0)
        assert state.snr_db[0] == 12.0
        estimator.apply(state, np.array([0]), np.array([-50.0]), now_s=1.0)
        assert state.snr_db[0] == 10.0

    def test_staleness_decay_is_idempotent_and_converges(self):
        state = make_state(2, snr_db=10.0)
        estimator = SnrEstimator(
            alpha=1.0, staleness_s=5.0, decay_tau_s=10.0
        )
        estimator.apply(state, np.array([0]), np.array([20.0]), now_s=0.0)
        assert estimator.decay_stale(state, now_s=3.0) == 0  # not stale yet
        n = estimator.decay_stale(state, now_s=15.0)
        assert n == 1
        decayed = state.snr_db[0]
        assert 10.0 < decayed < 20.0
        # Idempotent at the same instant; further decay approaches base.
        estimator.decay_stale(state, now_s=15.0)
        assert state.snr_db[0] == decayed
        estimator.decay_stale(state, now_s=500.0)
        assert state.snr_db[0] == pytest.approx(10.0, abs=1e-9)
        # The unmeasured link never moves.
        assert state.snr_db[1] == 10.0

    def test_size_mismatch_raises(self):
        estimator = SnrEstimator()
        estimator.apply(
            make_state(4), np.array([0]), np.array([1.0]), now_s=0.0
        )
        with pytest.raises(TelemetryError):
            estimator.apply(
                make_state(5), np.array([0]), np.array([1.0]), now_s=1.0
            )

    def test_invalid_parameters_raise(self):
        for kwargs in (
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"clamp_db": -1.0},
            {"staleness_s": -1.0},
            {"decay_tau_s": 0.0},
        ):
            with pytest.raises(TelemetryError):
                SnrEstimator(**kwargs)


class TestIngestSequenceTracking:
    def test_duplicate_out_of_order_and_gap_classification(self):
        ingestor = TelemetryIngestor(
            make_state(4), SnrEstimator(alpha=1.0)
        )
        # First contact: seq 0 and 1 for link 0, seq 5 for link 1 (no gap
        # counted on first contact), link 3 untouched.
        report = ingestor.ingest(encode([(0, 0, 11.0), (0, 1, 12.0),
                                         (1, 5, 13.0)]))
        assert report.n_accepted == 3
        assert report.n_gap_uplinks == 0
        assert report.n_links_updated == 2
        # Second batch: a duplicate (0,1), an out-of-order (0,0), a gap
        # jump (0,4 skips 2,3), and a normal follow-up (1,6).
        report = ingestor.ingest(encode([(0, 1, 99.0), (0, 0, 99.0),
                                         (0, 4, 14.0), (1, 6, 15.0)]))
        assert report.n_accepted == 2
        assert report.n_duplicate == 1
        assert report.n_out_of_order == 1
        assert report.n_gap_uplinks == 2
        state = ingestor.state
        assert state.snr_db[0] == 14.0  # rejected 99.0s never applied
        assert state.snr_db[1] == 15.0

    def test_within_batch_duplicates_and_ordering(self):
        ingestor = TelemetryIngestor(
            make_state(2), SnrEstimator(alpha=1.0)
        )
        report = ingestor.ingest(
            encode([(0, 0, 1.0), (0, 0, 2.0), (0, 1, 3.0), (0, 1, 4.0)])
        )
        assert report.n_accepted == 2
        assert report.n_duplicate == 2
        assert ingestor.state.snr_db[0] == 3.0

    def test_unknown_links_are_counted_not_applied(self):
        ingestor = TelemetryIngestor(make_state(2), SnrEstimator(alpha=1.0))
        report = ingestor.ingest(
            encode([(0, 0, 9.0), (7, 0, 9.0), (200, 0, 9.0)])
        )
        assert report.n_unknown_link == 2
        assert report.n_accepted == 1
        totals = ingestor.totals()
        assert totals["unknown_link"] == 2
        assert totals["uplinks"] == 3

    def test_totals_add_up(self):
        ingestor = TelemetryIngestor(make_state(4), SnrEstimator(alpha=1.0))
        ingestor.ingest(encode([(0, 0, 1.0), (1, 0, 1.0)]))
        ingestor.ingest(encode([(0, 0, 1.0), (0, 1, 1.0), (9, 0, 1.0)]))
        totals = ingestor.totals()
        assert totals["uplinks"] == (
            totals["accepted"] + totals["duplicate"]
            + totals["out_of_order"] + totals["unknown_link"]
        )
        assert totals["batches"] == 2

    def test_oversized_batch_raises(self):
        ingestor = TelemetryIngestor(
            make_state(2), SnrEstimator(), max_batch_uplinks=2
        )
        with pytest.raises(ProtocolError):
            ingestor.ingest(encode([(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)]))
        with pytest.raises(ProtocolError):
            ingestor.ingest_uplinks(
                [{"link_id": 0, "seq": s, "rssi_dbm": -80.0,
                  "noise_dbm": -90.0, "plr": 0.0} for s in range(3)],
                template_version=1,
            )

    def test_json_and_binary_batches_update_identically(self):
        binary_ingestor = TelemetryIngestor(
            make_state(3), SnrEstimator(alpha=0.4)
        )
        json_ingestor = TelemetryIngestor(
            make_state(3), SnrEstimator(alpha=0.4)
        )
        uplinks = [
            {"link_id": 0, "seq": 0, "rssi_dbm": -72.345,
             "noise_dbm": -90.125, "plr": 0.0123},
            {"link_id": 1, "seq": 0, "rssi_dbm": -81.017,
             "noise_dbm": -94.5, "plr": 0.3},
        ]
        codec = UplinkCodec(UPLINK_TEMPLATE_V1)
        payload = b"".join(codec.encode(uplink) for uplink in uplinks)
        binary_ingestor.ingest(payload)
        json_ingestor.ingest_uplinks(uplinks, template_version=1)
        # The JSON path re-encodes through the wire codec, so both paths
        # quantize the fixed-point fields identically — bit-for-bit.
        np.testing.assert_array_equal(
            binary_ingestor.state.snr_db, json_ingestor.state.snr_db
        )

    def test_json_defects_raise_protocol_error_with_field(self):
        ingestor = TelemetryIngestor(make_state(2))
        with pytest.raises(ProtocolError) as exc_info:
            ingestor.ingest_uplinks(
                [{"link_id": 0}], template_version=1
            )
        assert exc_info.value.field == "seq"
        with pytest.raises(ProtocolError) as exc_info:
            ingestor.ingest_uplinks(
                [{"link_id": 0, "seq": 0, "rssi_dbm": -70.0,
                  "noise_dbm": -90.0, "plr": 0.0, "extra": 1}],
                template_version=1,
            )
        assert exc_info.value.field == "extra"
        with pytest.raises(ProtocolError) as exc_info:
            ingestor.ingest_uplinks([{"link_id": 0}], template_version=77)
        assert exc_info.value.field == "template_version"


class TestSimulator:
    def test_same_seed_same_bytes(self):
        def run():
            truth = make_state(8)
            sim = DeviceFleetSimulator(
                truth, mode="jittered", seed=42, noise_db=1.0,
                drop_prob=0.1, duplicate_prob=0.1,
            )
            return b"".join(sim.tick() for _ in range(10))

        assert run() == run()

    def test_periodic_mode_reports_every_link_in_sequence(self):
        truth = make_state(5)
        sim = DeviceFleetSimulator(truth, mode="periodic", seed=0)
        for tick in range(3):
            payload = sim.tick()
            columns = sim.codec.decode_batch(payload)
            np.testing.assert_array_equal(
                columns["link_id"], np.arange(5)
            )
            np.testing.assert_array_equal(
                columns["seq"], np.full(5, tick)
            )

    def test_bursty_mode_emits_consecutive_sequences(self):
        truth = make_state(16)
        sim = DeviceFleetSimulator(
            truth, mode="bursty", seed=3, burst_prob=0.5, burst_len=4
        )
        ingestor = TelemetryIngestor(truth.copy(), SnrEstimator(alpha=1.0))
        for _ in range(10):
            payload = sim.tick()
            if payload:
                report = ingestor.ingest(payload)
                # Bursts are consecutive: no gaps, no reordering.
                assert report.n_gap_uplinks == 0
                assert report.n_out_of_order == 0
                assert report.n_duplicate == 0

    def test_drop_prob_produces_receiver_gaps(self):
        truth = make_state(32)
        sim = DeviceFleetSimulator(
            truth, mode="periodic", seed=1, drop_prob=0.3
        )
        ingestor = TelemetryIngestor(truth.copy(), SnrEstimator(alpha=1.0))
        total_gaps = 0
        for _ in range(20):
            payload = sim.tick()
            if payload:
                total_gaps += ingestor.ingest(payload).n_gap_uplinks
        assert total_gaps > 0

    def test_duplicate_prob_produces_duplicates(self):
        truth = make_state(32)
        sim = DeviceFleetSimulator(
            truth, mode="periodic", seed=1, duplicate_prob=0.3
        )
        ingestor = TelemetryIngestor(truth.copy(), SnrEstimator(alpha=1.0))
        total_duplicates = 0
        for _ in range(5):
            total_duplicates += ingestor.ingest(sim.tick()).n_duplicate
        assert total_duplicates > 0

    def test_invalid_parameters_raise(self):
        truth = make_state(2)
        with pytest.raises(TelemetryError):
            DeviceFleetSimulator(truth, mode="warp")
        with pytest.raises(TelemetryError):
            DeviceFleetSimulator(truth, report_prob=1.5)
        with pytest.raises(TelemetryError):
            DeviceFleetSimulator(truth, burst_len=0)
        with pytest.raises(TelemetryError):
            DeviceFleetSimulator(truth, noise_db=-1.0)

    def test_snr_source_requires_the_ingestor_state(self):
        truth = make_state(4)
        serving = make_state(4)
        sim = DeviceFleetSimulator(truth, seed=0)
        source = TelemetrySnrSource(
            sim, TelemetryIngestor(serving, SnrEstimator())
        )
        with pytest.raises(TelemetryError):
            source.step(truth)  # not the ingestor's state
        snr = source.step(serving)
        assert snr is serving.snr_db
        assert source.last_report is not None


class TestIngestEpochUnwrap:
    def ingestor(self, n_links: int = 2) -> TelemetryIngestor:
        return TelemetryIngestor(make_state(n_links), SnrEstimator(alpha=1.0))

    def test_wrap_accept_counts_gap_and_epoch(self):
        ingestor = self.ingestor()
        ingestor.ingest(encode([(0, 65530, 10.0)]))
        # Wire seq wraps 65530 -> 5: a forward advance of 11 across the
        # epoch boundary, accepted with the 10 skipped seqs as a gap.
        report = ingestor.ingest(encode([(0, 5, 11.0)]))
        assert report.n_accepted == 1
        assert report.n_out_of_order == 0
        assert report.n_gap_uplinks == 10
        assert report.n_epoch_wraps == 1
        assert ingestor.state.snr_db[0] == 11.0
        assert ingestor.totals()["epoch_wraps"] == 1

    def test_duplicate_and_late_uplinks_across_the_wrap(self):
        ingestor = self.ingestor()
        ingestor.ingest(encode([(0, 65530, 10.0)]))
        ingestor.ingest(encode([(0, 5, 11.0)]))
        # The same post-wrap seq again: a duplicate, not a new epoch.
        report = ingestor.ingest(encode([(0, 5, 99.0)]))
        assert report.n_duplicate == 1
        assert report.n_epoch_wraps == 0
        # A pre-wrap straggler: serially behind the unwrapped high-water
        # mark, so it classifies out-of-order instead of starting an
        # epoch of its own.
        report = ingestor.ingest(encode([(0, 65530, 99.0)]))
        assert report.n_out_of_order == 1
        assert report.n_epoch_wraps == 0
        assert ingestor.state.snr_db[0] == 11.0
        assert ingestor.totals()["epoch_wraps"] == 1

    def test_wrap_and_first_contact_share_a_batch(self):
        ingestor = self.ingestor()
        ingestor.ingest(encode([(0, 65534, 10.0)]))
        # One batch: link 0 wraps (65534 -> 2, one seq skipped), link 1
        # is first contact (no gap counted on first contact).
        report = ingestor.ingest(encode([(0, 2, 12.0), (1, 7, 13.0)]))
        assert report.n_accepted == 2
        assert report.n_gap_uplinks == 3
        assert report.n_epoch_wraps == 1
        assert report.n_links_updated == 2
        assert ingestor.state.snr_db[0] == 12.0
        assert ingestor.state.snr_db[1] == 13.0

    def test_session_longer_than_the_seq_space_classifies_correctly(self):
        # > 65,536 uplinks on one link: wire seqs run 0..65535 and wrap
        # back; every uplink must classify as a fresh accept (no false
        # duplicates/out-of-order after the wrap).
        ingestor = self.ingestor(n_links=1)
        total = (1 << 16) + 64
        chunk = 8192
        for start in range(0, total, chunk):
            stop = min(start + chunk, total)
            uplinks = [
                (0, seq & 0xFFFF, float(10 + (seq % 7)))
                for seq in range(start, stop)
            ]
            ingestor.ingest(encode(uplinks))
        totals = ingestor.totals()
        assert totals["accepted"] == total
        assert totals["duplicate"] == 0
        assert totals["out_of_order"] == 0
        assert totals["gap_uplinks"] == 0
        assert totals["epoch_wraps"] == 1
        assert ingestor.state.snr_db[0] == float(10 + ((total - 1) % 7))
