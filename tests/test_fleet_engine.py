"""Fleet engine tests: the vectorized multi-link solve must equal the
single-link oracle (repro.fleet.engine vs solve_epsilon_constraint)."""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.core.optimization import (
    Constraint,
    ModelEvaluator,
    TuningGrid,
    evaluate_grid_columns,
    snr_map_from_reference,
    solve_epsilon_constraint,
)
from repro.errors import FleetError, InfeasibleError
from repro.fleet import (
    FleetDrift,
    FleetEngine,
    FleetState,
    grid_topology,
    objective_from_metrics,
)

TINY_GRID = TuningGrid(
    ptx_levels=(3, 15, 31),
    payload_values_bytes=(20, 60, 110),
    n_max_tries_values=(1, 3),
    q_max_values=(1, 30),
)


def snr_state(snr_values):
    """A FleetState of reference-SNR links pinned at the given values."""
    snr = np.asarray(snr_values, dtype=float)
    return FleetState(
        base_snr_db=snr.copy(),
        snr_db=snr.copy(),
        noise_dbm=np.full(snr.shape, -90.0),
        config_index=np.full(snr.shape, -1, dtype=np.int64),
        objective_value=np.full(snr.shape, np.nan),
    )


def reference_solve(snr_db, objective="energy", constraints=(), grid=TINY_GRID):
    """The single-link oracle: full grid evaluation + epsilon-constraint."""
    evaluator = ModelEvaluator(snr_by_level=snr_map_from_reference(snr_db))
    grid_eval = evaluate_grid_columns(evaluator, grid, 10.0)
    return grid_eval, solve_epsilon_constraint(grid_eval, objective, constraints)


class TestFleetOfOneEquivalence:
    """A fleet of one link must answer exactly like the scalar solver."""

    @pytest.mark.parametrize("snr_db", [2.0, 4.0, 7.5, 15.0])
    @pytest.mark.parametrize("objective", ["energy", "goodput", "delay"])
    def test_identical_choice_and_objective(self, snr_db, objective):
        constraints = (Constraint("delay", 40.0),)
        grid_eval, expected = reference_solve(snr_db, objective, constraints)
        engine = FleetEngine(
            grid=TINY_GRID,
            objective=objective,
            constraints=constraints,
            snr_quantum_db=0.0,
        )
        state = snr_state([snr_db])
        engine.step(state)
        index = int(state.config_index[0])
        assert engine.config_at(index) == StackConfig(
            distance_m=10.0,
            ptx_level=expected.config.ptx_level,
            payload_bytes=expected.config.payload_bytes,
            n_max_tries=expected.config.n_max_tries,
            d_retry_ms=expected.config.d_retry_ms,
            q_max=expected.config.q_max,
            t_pkt_ms=expected.config.t_pkt_ms,
        )
        assert state.objective_value[0] == pytest.approx(
            expected.objective(objective), abs=1e-9
        )
        # Identical tie-break: the chosen row evaluates exactly like the
        # scalar solver's pick in the same row-major grid ordering.
        column = grid_eval.objective_column(objective)
        assert column[index] == pytest.approx(
            expected.objective(objective), abs=1e-9
        )

    def test_full_default_grid_single_link(self):
        # The acceptance criterion's 1e-9 bound on the full 4560-config grid.
        grid = TuningGrid()
        _, expected = reference_solve(
            4.0, "energy", (Constraint("delay", 40.0),), grid=grid
        )
        engine = FleetEngine(
            grid=grid,
            objective="energy",
            constraints=(Constraint("delay", 40.0),),
            snr_quantum_db=0.0,
        )
        state = snr_state([4.0])
        engine.step(state)
        chosen = engine.config_at(int(state.config_index[0]))
        assert chosen.ptx_level == expected.config.ptx_level
        assert chosen.payload_bytes == expected.config.payload_bytes
        assert chosen.n_max_tries == expected.config.n_max_tries
        assert state.objective_value[0] == pytest.approx(
            expected.objective("energy"), abs=1e-9
        )

    def test_identical_infeasible_message_in_strict_mode(self):
        constraints = (Constraint("loss", 1e-30), Constraint("delay", 0.001))
        with pytest.raises(InfeasibleError) as scalar:
            reference_solve(4.0, "energy", constraints)
        engine = FleetEngine(
            grid=TINY_GRID,
            constraints=constraints,
            snr_quantum_db=0.0,
            strict=True,
        )
        with pytest.raises(InfeasibleError) as fleet:
            engine.step(snr_state([4.0]))
        assert str(fleet.value) == str(scalar.value)

    def test_non_strict_marks_link_unconfigured(self):
        engine = FleetEngine(
            grid=TINY_GRID,
            constraints=(Constraint("loss", 1e-30),),
        )
        state = snr_state([4.0, 15.0])
        report = engine.step(state)
        assert report.n_infeasible == 2
        assert np.all(state.config_index == -1)
        assert np.all(np.isnan(state.objective_value))


class TestManyLinkEquivalence:
    def test_every_link_matches_scalar_solver(self):
        # Exact mode: each of 40 distinct SNRs must match its own scalar
        # solve bit-for-bit on choice, and to 1e-9 on objective value.
        snrs = np.linspace(1.0, 20.0, 40)
        constraints = (Constraint("delay", 60.0),)
        engine = FleetEngine(
            grid=TINY_GRID, constraints=constraints, snr_quantum_db=0.0
        )
        state = snr_state(snrs)
        engine.step(state)
        for i, snr in enumerate(snrs.tolist()):
            _, expected = reference_solve(snr, "energy", constraints)
            chosen = engine.config_at(int(state.config_index[i]))
            assert chosen.ptx_level == expected.config.ptx_level
            assert chosen.payload_bytes == expected.config.payload_bytes
            assert state.objective_value[i] == pytest.approx(
                expected.objective("energy"), abs=1e-9
            )

    def test_duplicate_snrs_share_one_answer(self):
        state = snr_state([4.0] * 50 + [9.0] * 50)
        engine = FleetEngine(grid=TINY_GRID, snr_quantum_db=0.0)
        report = engine.step(state)
        assert report.n_unique_snr_bins == 2
        assert len(set(state.config_index[:50].tolist())) == 1
        assert len(set(state.config_index[50:].tolist())) == 1

    def test_blocking_does_not_change_answers(self):
        # A block smaller than one SNR row still yields identical results.
        snrs = np.linspace(2.0, 18.0, 30)
        big = snr_state(snrs)
        small = snr_state(snrs)
        FleetEngine(grid=TINY_GRID, snr_quantum_db=0.0).step(big)
        FleetEngine(
            grid=TINY_GRID, snr_quantum_db=0.0, block_elements=7
        ).step(small)
        assert np.array_equal(big.config_index, small.config_index)
        assert np.array_equal(
            big.objective_value, small.objective_value, equal_nan=True
        )

    def test_quantization_bins_snrs(self):
        state = snr_state([4.0, 4.1, 4.9])
        engine = FleetEngine(grid=TINY_GRID, snr_quantum_db=0.5)
        report = engine.step(state)
        # 4.0 and 4.1 round to the same 0.5 dB bin; 4.9 rounds to 5.0.
        assert report.n_unique_snr_bins == 2
        assert state.config_index[0] == state.config_index[1]


class TestHysteresis:
    def test_insufficient_gain_keeps_current_config(self):
        state = snr_state([6.0])
        engine = FleetEngine(grid=TINY_GRID, hysteresis=10.0, snr_quantum_db=0.0)
        engine.step(state)
        before = state.config_index.copy()
        # Nudge the SNR: the optimum may move, but never by a 10x margin.
        state.snr_db = state.snr_db + 0.5
        report = engine.step(state)
        assert np.array_equal(state.config_index, before)
        assert report.n_reconfigured == 0

    def test_zero_hysteresis_always_adopts_optimum(self):
        constraints = (Constraint("delay", 60.0),)
        state = snr_state([6.0])
        engine = FleetEngine(
            grid=TINY_GRID, hysteresis=0.0, constraints=constraints,
            snr_quantum_db=0.0,
        )
        engine.step(state)
        state.snr_db = state.snr_db + 6.0
        engine.step(state)
        _, expected = reference_solve(12.0, "energy", constraints)
        chosen = engine.config_at(int(state.config_index[0]))
        assert chosen.ptx_level == expected.config.ptx_level
        assert chosen.payload_bytes == expected.config.payload_bytes

    def test_link_turned_infeasible_is_released(self):
        # A configured link whose channel collapses must drop to -1 even
        # though hysteresis would otherwise keep its stale config.
        constraints = (Constraint("loss", 0.05),)
        state = snr_state([15.0])
        engine = FleetEngine(
            grid=TINY_GRID, constraints=constraints, hysteresis=5.0,
            snr_quantum_db=0.0,
        )
        engine.step(state)
        assert state.config_index[0] >= 0
        state.snr_db = state.snr_db - 25.0
        report = engine.step(state)
        assert report.n_infeasible == 1
        assert state.config_index[0] == -1


class TestEngineValidation:
    def test_unknown_objective_rejected(self):
        with pytest.raises(FleetError, match="unknown objective"):
            FleetEngine(objective="latency")

    def test_unknown_constraint_objective_rejected(self):
        with pytest.raises(FleetError, match="unknown constraint objective"):
            FleetEngine(constraints=(Constraint("latency", 1.0),))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hysteresis": -0.1},
            {"snr_quantum_db": -1.0},
            {"block_elements": 0},
        ],
    )
    def test_bad_scalars_rejected(self, kwargs):
        with pytest.raises(FleetError):
            FleetEngine(grid=TINY_GRID, **kwargs)

    def test_config_at_range_checked(self):
        engine = FleetEngine(grid=TINY_GRID)
        with pytest.raises(FleetError):
            engine.config_at(len(engine))
        with pytest.raises(FleetError):
            engine.config_at(-1)

    def test_objective_from_metrics_unknown_name(self):
        with pytest.raises(FleetError, match="unknown objective"):
            objective_from_metrics({"rho": np.zeros(1)}, "latency")

    def test_goodput_is_negated_for_minimization(self):
        metrics = {"max_goodput_kbps": np.array([1.0, 3.0])}
        assert np.array_equal(
            objective_from_metrics(metrics, "goodput"), [-1.0, -3.0]
        )


class TestTrajectoryDeterminism:
    def test_same_seed_identical_trajectory(self):
        topology = grid_topology(32, seed=7)
        histories = []
        for _ in range(2):
            state = FleetState.from_topology(topology)
            drift = FleetDrift(topology, seed=7)
            engine = FleetEngine(grid=TINY_GRID)
            history = []
            for step in range(4):
                drift.step(state)
                engine.step(state, step_index=step)
                history.append(
                    (state.snr_db.copy(), state.config_index.copy(),
                     state.objective_value.copy())
                )
            histories.append(history)
        for (snr_a, idx_a, obj_a), (snr_b, idx_b, obj_b) in zip(*histories):
            assert np.array_equal(snr_a, snr_b)
            assert np.array_equal(idx_a, idx_b)
            assert np.array_equal(obj_a, obj_b, equal_nan=True)

    def test_report_stats_are_json_ready(self):
        state = snr_state([4.0, 8.0])
        report = FleetEngine(grid=TINY_GRID).step(state, step_index=3)
        stats = report.stats()
        assert stats["step"] == 3
        assert stats["n_links"] == 2
        assert stats["n_reconfigured"] == 2
        assert isinstance(stats["objective_mean"], float)
