"""Energy accounting tests (repro.radio.energy)."""

import math

import pytest

from repro.errors import RadioError
from repro.radio import cc2420
from repro.radio.energy import EnergyMeter, ack_rx_energy_j, tx_energy_j


class TestTxEnergy:
    def test_single_frame(self):
        # 110 B payload → 129 B frame → 1032 bits at E_tx(31).
        expected = cc2420.tx_energy_per_bit_j(31) * 1032
        assert tx_energy_j(31, 110) == pytest.approx(expected)

    def test_scales_with_transmissions(self):
        assert tx_energy_j(31, 110, 3) == pytest.approx(3 * tx_energy_j(31, 110))

    def test_zero_transmissions(self):
        assert tx_energy_j(31, 110, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(RadioError):
            tx_energy_j(31, 110, -1)

    def test_lower_power_cheaper(self):
        assert tx_energy_j(3, 110) < tx_energy_j(31, 110)


class TestEnergyMeter:
    def test_starts_empty(self):
        meter = EnergyMeter()
        assert meter.total_j == 0.0
        assert meter.delivered_info_bits == 0

    def test_tx_accumulates(self):
        meter = EnergyMeter()
        e1 = meter.record_tx(31, 110)
        e2 = meter.record_tx(31, 110)
        assert meter.tx_j == pytest.approx(e1 + e2)

    def test_ack_rx(self):
        meter = EnergyMeter()
        meter.record_ack_rx()
        assert meter.rx_j == pytest.approx(ack_rx_energy_j())

    def test_listen(self):
        meter = EnergyMeter()
        meter.record_listen(8.192e-3)
        assert meter.listen_j == pytest.approx(cc2420.rx_power_w() * 8.192e-3)

    def test_rejects_negative_durations(self):
        meter = EnergyMeter()
        with pytest.raises(RadioError):
            meter.record_listen(-1.0)
        with pytest.raises(RadioError):
            meter.record_spi(-1.0)
        with pytest.raises(RadioError):
            meter.record_idle(-1.0)

    def test_per_bit_infinite_without_delivery(self):
        meter = EnergyMeter()
        meter.record_tx(31, 110)
        assert math.isinf(meter.tx_only_per_info_bit_j)

    def test_per_bit_after_delivery(self):
        meter = EnergyMeter()
        meter.record_tx(31, 110)
        meter.record_delivery(110)
        expected = tx_energy_j(31, 110) / (110 * 8)
        assert meter.tx_only_per_info_bit_j == pytest.approx(expected)

    def test_total_includes_all_components(self):
        meter = EnergyMeter()
        meter.record_tx(31, 50)
        meter.record_ack_rx()
        meter.record_listen(1e-3)
        meter.record_spi(1e-3)
        meter.record_idle(1.0)
        breakdown = meter.breakdown()
        assert meter.total_j == pytest.approx(sum(breakdown.values()))
        assert all(v > 0 for v in breakdown.values())

    def test_total_per_bit_exceeds_tx_only(self):
        meter = EnergyMeter()
        meter.record_tx(31, 50)
        meter.record_listen(5e-3)
        meter.record_delivery(50)
        assert meter.total_per_info_bit_j > meter.tx_only_per_info_bit_j
