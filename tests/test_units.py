"""Unit-conversion tests (repro.units)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import UnitsError


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_minus_three_db_halves(self):
        assert units.db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_linear_to_db_inverse(self):
        assert units.linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(UnitsError):
            units.linear_to_db(0.0)
        with pytest.raises(UnitsError):
            units.linear_to_db(-1.0)

    def test_linear_to_db_rejects_nonpositive_array_element(self):
        with pytest.raises(UnitsError):
            units.linear_to_db(np.array([1.0, 0.0, 100.0]))

    def test_units_error_is_still_value_error(self):
        """Pre-existing callers catching ValueError keep working."""
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    @given(st.floats(min_value=-80, max_value=80))
    def test_roundtrip(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(
            db, abs=1e-9
        )

    def test_array_broadcast(self):
        arr = np.array([0.0, 10.0, 20.0])
        out = units.db_to_linear(arr)
        assert np.allclose(out, [1.0, 10.0, 100.0])


class TestScalarTransparency:
    """The numpy-transparent helpers must keep scalar-in → scalar-out.

    Regression coverage for collapsing the duplicated
    ``isinstance(..., np.ndarray)`` branches into single expressions.
    """

    @pytest.mark.parametrize("value", [0.0, 10.0, -3.0, 7])
    def test_db_to_linear_scalar_in_scalar_out(self, value):
        result = units.db_to_linear(value)
        assert isinstance(result, float)
        assert not isinstance(result, np.ndarray)

    @pytest.mark.parametrize("value", [1.0, 100.0, 0.5, 3])
    def test_linear_to_db_scalar_in_scalar_out(self, value):
        result = units.linear_to_db(value)
        assert isinstance(result, float)
        assert not isinstance(result, np.ndarray)

    def test_db_to_linear_array_in_array_out(self):
        out = units.db_to_linear(np.array([0.0, 10.0]))
        assert isinstance(out, np.ndarray)
        assert out.shape == (2,)

    def test_linear_to_db_array_in_array_out(self):
        out = units.linear_to_db(np.array([1.0, 10.0]))
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, [0.0, 10.0])

    def test_scalar_and_array_paths_agree(self):
        values = np.array([0.25, 1.0, 4.0, 1e3])
        array_out = units.linear_to_db(values)
        scalar_out = [units.linear_to_db(float(v)) for v in values]
        assert np.allclose(array_out, scalar_out)


class TestPowerConversions:
    def test_zero_dbm_is_one_mw(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_dbm_to_watts(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm(self):
        assert units.watts_to_dbm(0.001) == pytest.approx(0.0)

    @given(st.floats(min_value=-120, max_value=40))
    def test_dbm_roundtrip(self, dbm):
        assert units.mw_to_dbm(units.dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)


class TestTimeAndData:
    def test_ms_to_s(self):
        assert units.ms_to_s(1500.0) == pytest.approx(1.5)

    def test_s_to_ms(self):
        assert units.s_to_ms(0.25) == pytest.approx(250.0)

    def test_us_roundtrip(self):
        assert units.s_to_us(units.us_to_s(7.0)) == pytest.approx(7.0)

    def test_bytes_bits(self):
        assert units.bytes_to_bits(114) == 912
        assert units.bits_to_bytes(912) == pytest.approx(114)

    def test_rates(self):
        assert units.bps_to_kbps(250_000) == pytest.approx(250.0)
        assert units.kbps_to_bps(250.0) == pytest.approx(250_000.0)

    def test_energy(self):
        assert units.joules_to_microjoules(2e-6) == pytest.approx(2.0)
        assert units.microjoules_to_joules(2.0) == pytest.approx(2e-6)


class TestTransmissionTime:
    def test_paper_rate(self):
        # 133-byte frame at 250 kb/s = 4.256 ms.
        assert units.transmission_time_s(133, 250_000) == pytest.approx(4.256e-3)

    def test_rejects_bad_rate(self):
        with pytest.raises(UnitsError):
            units.transmission_time_s(10, 0)


class TestThermalNoise:
    def test_2mhz_channel_floor(self):
        # kTB for 2 MHz ≈ −111 dBm: the measured −95 dBm floor implies
        # ~16 dB of noise figure + ambient interference.
        floor = units.thermal_noise_dbm(2e6)
        assert floor == pytest.approx(-110.9, abs=0.5)

    def test_noise_figure_shifts(self):
        base = units.thermal_noise_dbm(2e6)
        assert units.thermal_noise_dbm(2e6, 10.0) == pytest.approx(base + 10.0)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(UnitsError):
            units.thermal_noise_dbm(0.0)
