"""Service-time, energy and goodput model tests (Eqs. 2, 4, 5–6)."""

import math

import numpy as np
import pytest

from repro.core import EnergyModel, GoodputModel, PerModel, ServiceTimeModel
from repro.core.constants import (
    ENERGY_MAX_PAYLOAD_SNR_DB,
    GOODPUT_MAX_PAYLOAD_SNR_DB,
    TABLE_II_D_RETRY_MS,
    TABLE_II_ROWS,
)
from repro.errors import ModelError
from repro.radio import cc2420


class TestServiceTimeModel:
    def setup_method(self):
        self.model = ServiceTimeModel()

    def test_reproduces_paper_table_ii(self):
        """Table II: the model's T_service matches the published values."""
        for (t_pkt, snr, payload, tries), (t_paper_ms, rho_paper) in TABLE_II_ROWS:
            t_model = self.model.paper_service_time_s(
                payload, snr, TABLE_II_D_RETRY_MS
            )
            assert t_model * 1e3 == pytest.approx(t_paper_ms, rel=0.06)
            rho = t_model / (t_pkt / 1e3)
            assert rho == pytest.approx(rho_paper, rel=0.06)

    def test_table_ii_rho_crosses_one_at_10db(self):
        """The paper's point: at SNR 10 the same traffic overloads the link."""
        t10 = self.model.paper_service_time_s(110, 10.0, TABLE_II_D_RETRY_MS)
        t20 = self.model.paper_service_time_s(110, 20.0, TABLE_II_D_RETRY_MS)
        assert t10 / 0.030 > 1.0
        assert t20 / 0.030 < 1.0

    def test_given_tries_eq5(self):
        """Eq. 5 verbatim: T_SPI + T_succ + (N−1)·T_retry."""
        times = self.model.attempt_times(110, 30.0)
        value = self.model.service_time_given_tries_s(
            110, n_tries=3, n_max_tries=5, d_retry_ms=30.0, delivered=True
        )
        assert value == pytest.approx(times.t_spi + times.t_succ + 2 * times.t_retry)

    def test_given_tries_eq6(self):
        """Eq. 6 verbatim: T_SPI + T_fail + (N_max−1)·T_retry."""
        times = self.model.attempt_times(110, 30.0)
        value = self.model.service_time_given_tries_s(
            110, n_tries=5, n_max_tries=5, d_retry_ms=30.0, delivered=False
        )
        assert value == pytest.approx(times.t_spi + times.t_fail + 4 * times.t_retry)

    def test_given_tries_validation(self):
        with pytest.raises(ModelError):
            self.model.service_time_given_tries_s(110, 0, 3, 0.0, True)
        with pytest.raises(ModelError):
            self.model.service_time_given_tries_s(110, 4, 3, 0.0, True)

    def test_mean_increases_in_grey_zone(self):
        good = self.model.mean_service_time_s(110, 25.0, 3, 0.0)
        grey = self.model.mean_service_time_s(110, 8.0, 3, 0.0)
        assert grey > good

    def test_mean_increases_with_payload(self):
        small = self.model.mean_service_time_s(20, 20.0, 3, 0.0)
        large = self.model.mean_service_time_s(110, 20.0, 3, 0.0)
        assert large > small

    def test_high_snr_limit_is_single_try(self):
        times = self.model.attempt_times(110, 0.0)
        value = self.model.mean_service_time_s(110, 60.0, 3, 0.0)
        assert value == pytest.approx(times.t_spi + times.t_succ, rel=1e-3)

    def test_saturated_throughput_inverse(self):
        rate = self.model.saturated_throughput_packets_per_s(110, 20.0, 3, 0.0)
        service = self.model.mean_service_time_s(110, 20.0, 3, 0.0)
        assert rate == pytest.approx(1.0 / service)


class TestEnergyModel:
    def setup_method(self):
        self.model = EnergyModel()

    def test_eq2_verbatim(self):
        """U_eng = E_tx (l0+lD) / (lD (1−PER))."""
        per = PerModel().per(110, 15.0)
        e_tx = cc2420.tx_energy_per_bit_j(31)
        expected = e_tx * (19 + 110) / (110 * (1 - per))
        assert self.model.u_eng_j_per_bit(31, 110, 15.0) == pytest.approx(expected)

    def test_infinite_on_dead_link(self):
        assert math.isinf(self.model.u_eng_j_per_bit(31, 114, -20.0))

    def test_efficiency_is_reciprocal(self):
        u = self.model.u_eng_j_per_bit(31, 110, 15.0)
        assert self.model.energy_efficiency_bits_per_j(31, 110, 15.0) == (
            pytest.approx(1.0 / u)
        )

    def test_snr_threshold_matches_paper_17db(self):
        """Sec. IV-B: max payload becomes optimal near 17 dB."""
        threshold = self.model.snr_threshold_for_max_payload()
        assert threshold == pytest.approx(ENERGY_MAX_PAYLOAD_SNR_DB, abs=1.0)

    def test_optimal_payload_above_threshold_is_max(self):
        payload, _ = self.model.optimal_payload_bytes(31, 20.0)
        assert payload == 114

    def test_optimal_payload_shrinks_in_grey_zone(self):
        """Fig. 9: optimal l_D falls below 40 B at 5 dB."""
        p17, _ = self.model.optimal_payload_bytes(31, 17.0)
        p10, _ = self.model.optimal_payload_bytes(31, 10.0)
        p5, _ = self.model.optimal_payload_bytes(31, 5.0)
        assert p17 == 114
        assert p5 < p10 < 114
        assert p5 <= 40

    def test_optimal_power_picks_threshold_level(self):
        """Fig. 7: the cheapest level clearing the payload's SNR need wins."""
        snr_by_level = {lvl: 4.0 + (lvl - 3) * 0.8 for lvl in cc2420.PA_LEVELS}
        level_large, _ = self.model.optimal_power_level(snr_by_level, 110)
        level_small, _ = self.model.optimal_power_level(snr_by_level, 20)
        assert level_large >= level_small

    def test_optimal_power_validation(self):
        with pytest.raises(ModelError):
            self.model.optimal_power_level({}, 110)

    def test_finite_retries_reduces_to_eq2_at_large_budget(self):
        """With many retries and modest PER the finite form ≈ Eq. 2."""
        finite = self.model.u_eng_finite_retries_j_per_bit(31, 110, 15.0, 50)
        eq2 = self.model.u_eng_j_per_bit(31, 110, 15.0)
        assert finite == pytest.approx(eq2, rel=1e-3)

    def test_finite_retries_validation(self):
        with pytest.raises(ModelError):
            self.model.u_eng_finite_retries_j_per_bit(31, 110, 15.0, 0)

    def test_uj_scaling(self):
        j = self.model.u_eng_j_per_bit(31, 110, 15.0)
        assert self.model.u_eng_uj_per_bit(31, 110, 15.0) == pytest.approx(j * 1e6)


class TestGoodputModel:
    def setup_method(self):
        self.model = GoodputModel()

    def test_eq4_composition(self):
        """maxGoodput = l_D / T_service · (1 − PLR_radio)."""
        service = self.model.service_model.mean_service_time_s(110, 15.0, 3, 0.0)
        plr = self.model.plr_model.plr_radio(110, 15.0, 3)
        expected = 110 * 8 / service * (1 - plr)
        assert self.model.max_goodput_bps(110, 15.0, 3) == pytest.approx(expected)

    def test_goodput_increases_with_snr(self):
        assert self.model.max_goodput_bps(110, 25.0, 3) > self.model.max_goodput_bps(
            110, 8.0, 3
        )

    def test_goodput_saturates_past_19db(self):
        """Fig. 10: little gain above the 19 dB low-impact border."""
        g19 = self.model.max_goodput_bps(110, 19.0, 3)
        g30 = self.model.max_goodput_bps(110, 30.0, 3)
        assert (g30 - g19) / g30 < 0.1

    def test_optimal_payload_max_above_9db_with_retries(self):
        """Sec. VIII-A: ≥ 9 dB the max payload wins (with retransmissions)."""
        payload, _ = self.model.optimal_payload_bytes(10.0, n_max_tries=5)
        assert payload == 114

    def test_optimal_payload_shrinks_below_threshold(self):
        payload, _ = self.model.optimal_payload_bytes(5.0, n_max_tries=1)
        assert payload < 114

    def test_retries_raise_optimal_payload_in_grey_zone(self):
        """Sec. V-C: larger N_maxTries increases the optimal payload size."""
        p1, _ = self.model.optimal_payload_bytes(6.0, n_max_tries=1)
        p5, _ = self.model.optimal_payload_bytes(6.0, n_max_tries=5)
        assert p5 >= p1

    def test_threshold_near_paper_9db(self):
        threshold = self.model.max_payload_snr_threshold_db(n_max_tries=5)
        assert threshold == pytest.approx(GOODPUT_MAX_PAYLOAD_SNR_DB, abs=1.5)

    def test_retransmissions_help_in_grey_zone(self):
        assert self.model.max_goodput_bps(80, 8.0, 5) > self.model.max_goodput_bps(
            80, 8.0, 1
        )

    def test_kbps_scaling(self):
        bps = self.model.max_goodput_bps(110, 15.0, 3)
        assert self.model.max_goodput_kbps(110, 15.0, 3) == pytest.approx(bps / 1e3)

    def test_vectorized_over_payload(self):
        payloads = np.arange(10, 115, 10)
        goodput = self.model.max_goodput_bps(payloads, 15.0, 3)
        assert goodput.shape == payloads.shape
