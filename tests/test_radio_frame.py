"""802.15.4 frame layout tests (repro.radio.frame)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RadioError
from repro.radio import frame


class TestLayoutConstants:
    def test_max_payload_is_paper_value(self):
        # The paper: "maximum payload size (114 bytes) in our radio stack".
        assert frame.MAX_PAYLOAD_BYTES == 114

    def test_overhead_is_19_bytes(self):
        assert frame.DATA_FRAME_OVERHEAD_BYTES == 19

    def test_mpdu_limit(self):
        assert frame.MAX_MPDU_BYTES == 127
        assert frame.MAX_PAYLOAD_BYTES + frame.MPDU_OVERHEAD_BYTES == 127


class TestDataFrame:
    def test_air_bytes(self):
        assert frame.DataFrame(110).air_bytes == 129
        assert frame.DataFrame(114).air_bytes == 133

    def test_air_time_matches_250kbps(self):
        # 133 bytes → 1064 bits → 4.256 ms.
        assert frame.DataFrame(114).air_time_s == pytest.approx(4.256e-3)

    def test_rejects_oversized(self):
        with pytest.raises(RadioError):
            frame.DataFrame(115)

    def test_rejects_negative(self):
        with pytest.raises(RadioError):
            frame.DataFrame(-1)

    def test_overhead_ratio_decreases_with_payload(self):
        small = frame.DataFrame(5).overhead_ratio
        large = frame.DataFrame(114).overhead_ratio
        assert small > large
        assert large == pytest.approx(19 / 133)

    @given(st.integers(min_value=0, max_value=114))
    def test_air_time_proportional_to_size(self, payload):
        f = frame.DataFrame(payload)
        assert f.air_time_s == pytest.approx(f.air_bits / 250_000)

    @given(st.integers(min_value=1, max_value=113))
    def test_air_time_strictly_monotone(self, payload):
        assert (
            frame.DataFrame(payload + 1).air_time_s
            > frame.DataFrame(payload).air_time_s
        )


class TestAckFrame:
    def test_ack_is_11_bytes_on_air(self):
        assert frame.ACK_FRAME_BYTES == 11

    def test_ack_air_time(self):
        assert frame.ack_air_time_s() == pytest.approx(11 * 8 / 250_000)


class TestHelpers:
    def test_frame_air_bytes_helper(self):
        assert frame.frame_air_bytes(65) == 84

    def test_frame_air_time_helper(self):
        assert frame.frame_air_time_s(65) == pytest.approx(84 * 8 / 250_000)
