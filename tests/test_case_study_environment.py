"""Case-study environment construction and SNR-map consistency tests."""

import numpy as np
import pytest

from repro.channel import LinkChannel
from repro.core.constants import (
    CASE_STUDY_SNR_AT_PTX23_DB,
    CASE_STUDY_SNR_AT_PTX31_DB,
)
from repro.core.optimization import (
    case_study_environment,
    case_study_snr_map,
    snr_map_from_environment,
)
from repro.radio import cc2420


class TestCaseStudyConstants:
    def test_snr_gap_is_power_gap(self):
        """23 → 31 is a 3 dB output-power step, so the SNRs differ by 3."""
        gap = CASE_STUDY_SNR_AT_PTX31_DB - CASE_STUDY_SNR_AT_PTX23_DB
        power_gap = cc2420.output_power_dbm(31) - cc2420.output_power_dbm(23)
        assert gap == pytest.approx(power_gap)


class TestSnrMapConsistency:
    def test_map_matches_both_anchors(self):
        snr_map = case_study_snr_map()
        assert snr_map[23] == pytest.approx(CASE_STUDY_SNR_AT_PTX23_DB)
        assert snr_map[31] == pytest.approx(CASE_STUDY_SNR_AT_PTX31_DB)

    def test_map_covers_all_levels(self):
        assert set(case_study_snr_map()) == set(cc2420.PA_LEVELS)

    def test_environment_map_agrees_with_reference_map(self):
        """The DES environment realizes the same level→SNR map the model
        evaluator assumes — the property that makes model-vs-simulation
        comparisons in Table IV meaningful."""
        env = case_study_environment(distance_m=40.0)
        env_map = snr_map_from_environment(env, 40.0)
        ref_map = case_study_snr_map()
        for level in cc2420.PA_LEVELS:
            assert env_map[level] == pytest.approx(ref_map[level], abs=1e-9)

    def test_environment_keeps_other_positions(self):
        """Adding the case-study position must not disturb the campaign
        positions' frozen offsets."""
        from repro.channel import HALLWAY_2012

        env = case_study_environment(distance_m=40.0)
        for d in (5.0, 10.0, 35.0):
            assert env.pathloss.loss_db(d) == pytest.approx(
                HALLWAY_2012.pathloss.loss_db(d)
            )

    def test_simulated_mean_snr_near_nominal(self):
        env = case_study_environment(distance_m=40.0).quiet()
        channel = LinkChannel(env, 40.0, 31, np.random.default_rng(0))
        assert channel.mean_snr_db == pytest.approx(
            CASE_STUDY_SNR_AT_PTX31_DB, abs=0.01
        )

    def test_custom_snr_anchor(self):
        env = case_study_environment(snr_at_23_db=8.0, distance_m=40.0)
        snr_map = snr_map_from_environment(env, 40.0)
        assert snr_map[23] == pytest.approx(8.0)
