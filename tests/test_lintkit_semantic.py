"""Tests for reprolint's semantic tier (repro.lintkit.semantic + RPR101-104).

Phase-1 infrastructure (ProjectIndex, CallGraph, purity) is exercised
directly on multi-file fixtures; each flow-sensitive rule then gets
failing fixtures proving it detects its target violation plus conforming
code proving the precision guards hold. Fixture files outside the
``repro`` package resolve each other by sibling stem (``from a import f``),
mirroring how the engine names them.
"""

import ast

import pytest

from repro.lintkit import lint_paths
from repro.lintkit.semantic.callgraph import CallGraph
from repro.lintkit.semantic.purity import class_constructor_pure, pure_functions
from repro.lintkit.semantic.symbols import ProjectIndex, module_name_for


def build_index(tmp_path, files):
    """Parse ``{filename: code}`` into one ProjectIndex (flat stems)."""
    entries = []
    for name, code in sorted(files.items()):
        path = tmp_path / name
        path.write_text(code)
        entries.append((str(path), "", ast.parse(code, filename=str(path))))
    return ProjectIndex.build(entries)


def lint_project(tmp_path, files, select):
    """Write ``{filename: code}`` and lint the directory as one batch."""
    for name, code in files.items():
        (tmp_path / name).write_text(code)
    return lint_paths([tmp_path], select=select)


def messages(findings):
    return " | ".join(f.message for f in findings)


class TestModuleNaming:
    def test_package_files_get_dotted_names(self):
        assert module_name_for("sim/rng.py", "x") == "repro.sim.rng"
        assert module_name_for("sim/__init__.py", "x") == "repro.sim"

    def test_loose_files_resolve_by_stem(self):
        assert module_name_for("", "/tmp/fixtures/alpha.py") == "alpha"


class TestProjectIndex:
    def test_cross_module_import_resolution(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "alpha.py": "def helper(x):\n    return x\n",
                "beta.py": "from alpha import helper as h\n",
            },
        )
        assert index.resolve_name("beta", "h") == ("function", "alpha.helper")
        assert index.resolve_name("beta", "missing") is None

    def test_frozen_dataclass_detection(self, tmp_path):
        code = (
            "from dataclasses import dataclass\n\n"
            "@dataclass(frozen=True)\n"
            "class Cold:\n"
            "    x: float = 0.0\n\n"
            "@dataclass\n"
            "class Warm:\n"
            "    x: float = 0.0\n\n"
            "class Plain:\n"
            "    pass\n"
        )
        index = build_index(tmp_path, {"mod.py": code})
        assert index.classes["mod.Cold"].is_frozen
        assert not index.classes["mod.Warm"].is_frozen
        assert not index.classes["mod.Plain"].is_frozen

    def test_dataclass_constructor_params_from_fields(self, tmp_path):
        code = (
            "from dataclasses import dataclass\n\n"
            "@dataclass\n"
            "class Spec:\n"
            "    seed: int = 0\n"
            "    name: str = ''\n"
        )
        index = build_index(tmp_path, {"mod.py": code})
        params = index.constructor_params("mod.Spec")
        assert [p.name for p in params] == ["seed", "name"]


class TestCallGraph:
    FILES = {
        "chain.py": (
            "def leaf(x):\n    return x + 1\n\n"
            "def mid(x):\n    return leaf(x)\n\n"
            "def top(x):\n    return mid(x)\n"
        ),
    }

    def test_edges_and_transitive_callers(self, tmp_path):
        graph = CallGraph.build(build_index(tmp_path, self.FILES))
        assert graph.edges["chain.top"] == {"chain.mid"}
        assert graph.callers_of({"chain.leaf"}) == {
            "chain.leaf", "chain.mid", "chain.top",
        }

    def test_shortest_path_to_target(self, tmp_path):
        graph = CallGraph.build(build_index(tmp_path, self.FILES))
        assert graph.path_to("chain.top", {"chain.leaf"}) == [
            "chain.top", "chain.mid", "chain.leaf",
        ]
        assert graph.path_to("chain.leaf", {"chain.top"}) is None


class TestPurity:
    def test_math_only_functions_are_pure(self, tmp_path):
        code = (
            "import math\n\n"
            "def calc(x):\n    return math.sqrt(x) + 1.0\n"
        )
        index = build_index(tmp_path, {"mod.py": code})
        assert "mod.calc" in pure_functions(index)

    def test_io_and_mutation_are_impure_and_propagate(self, tmp_path):
        code = (
            "def log(x):\n    print(x)\n    return x\n\n"
            "def mutate(items, x):\n    items.append(x)\n\n"
            "def wraps(x):\n    return log(x)\n"
        )
        index = build_index(tmp_path, {"mod.py": code})
        pure = pure_functions(index)
        assert "mod.log" not in pure
        assert "mod.mutate" not in pure
        assert "mod.wraps" not in pure  # impurity propagates to callers

    def test_validating_dataclass_constructor_is_pure(self, tmp_path):
        code = (
            "from dataclasses import dataclass\n\n"
            "@dataclass(frozen=True)\n"
            "class Point:\n"
            "    x: float = 0.0\n"
        )
        index = build_index(tmp_path, {"mod.py": code})
        assert class_constructor_pure(index, "mod.Point", pure_functions(index))


class TestRPR101UnitFlow:
    def test_inferred_unit_conflict_through_assignment(self, tmp_path):
        files = {
            "flow.py": (
                "def f(delay_ms):\n"
                "    d = delay_ms\n"
                "    total_s = 1.0\n"
                "    return total_s + d\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR101"})
        assert [f.rule_id for f in findings] == ["RPR101"]
        assert "ms" in findings[0].message

    def test_cross_module_call_argument_conflict(self, tmp_path):
        files = {
            "api.py": "def wait(timeout_s):\n    return timeout_s\n",
            "use.py": (
                "from api import wait\n\n"
                "def g(t_ms):\n"
                "    return wait(t_ms)\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR101"})
        assert [f.rule_id for f in findings] == ["RPR101"]
        assert findings[0].path.endswith("use.py")
        assert "timeout_s" in findings[0].message

    def test_return_unit_must_match_name_suffix(self, tmp_path):
        files = {
            "ret.py": (
                "def level_dbm(ratio):\n"
                "    value_db = ratio * 2.0\n"
                "    return value_db\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR101"})
        assert [f.rule_id for f in findings] == ["RPR101"]
        assert "return of 'level_dbm'" in findings[0].message

    def test_db_dbm_arithmetic_and_matching_return_are_clean(self, tmp_path):
        files = {
            "ok.py": (
                "def rssi_dbm(tx_dbm, loss_db):\n"
                "    total_dbm = tx_dbm - loss_db\n"
                "    return total_dbm\n"
            ),
        }
        assert lint_project(tmp_path, files, {"RPR101"}) == []


class TestRPR102RngTaint:
    def test_unseeded_generator_construction(self, tmp_path):
        files = {
            "draws.py": (
                "import numpy as np\n\n"
                "def draw():\n"
                "    rng = np.random.default_rng()\n"
                "    return rng.normal()\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR102"})
        assert [f.rule_id for f in findings] == ["RPR102"]
        assert "without a seed" in findings[0].message

    def test_hidden_fixed_seed(self, tmp_path):
        files = {
            "draws.py": (
                "import numpy as np\n\n"
                "def draw():\n"
                "    rng = np.random.default_rng(1234)\n"
                "    return rng.normal()\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR102"})
        assert [f.rule_id for f in findings] == ["RPR102"]
        assert "hidden fixed seed" in findings[0].message

    def test_transitive_caller_must_thread_rng(self, tmp_path):
        files = {
            "draws.py": (
                "import numpy as np\n\n"
                "def noisy(rng):\n"
                "    return rng.normal()\n\n"
                "def sample_all():\n"
                "    return noisy(None)\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR102"})
        assert [f.rule_id for f in findings] == ["RPR102"]
        assert "transitively draws" in findings[0].message
        assert "noisy" in findings[0].message  # call chain in the report

    def test_seed_derived_from_parameter_is_clean(self, tmp_path):
        files = {
            "draws.py": (
                "import numpy as np\n\n"
                "def sample(seed):\n"
                "    rng = np.random.default_rng(seed)\n"
                "    return rng.normal()\n"
            ),
        }
        assert lint_project(tmp_path, files, {"RPR102"}) == []

    def test_carrier_typed_parameter_threads_randomness(self, tmp_path):
        files = {
            "draws.py": (
                "import numpy as np\n"
                "from dataclasses import dataclass\n\n"
                "@dataclass(frozen=True)\n"
                "class Spec:\n"
                "    base_seed: int = 0\n\n"
                "def noisy(rng):\n"
                "    return rng.normal()\n\n"
                "def run(spec: Spec):\n"
                "    return noisy(spec.base_seed)\n"
            ),
        }
        assert lint_project(tmp_path, files, {"RPR102"}) == []


class TestRPR103ScalarLoops:
    def test_iterating_annotated_array_parameter(self, tmp_path):
        files = {
            "loops.py": (
                "import numpy as np\n\n"
                "def total(xs: np.ndarray) -> float:\n"
                "    acc = 0.0\n"
                "    for x in xs:\n"
                "        acc += x\n"
                "    return acc\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR103"})
        assert [f.rule_id for f in findings] == ["RPR103"]
        assert "iterates numpy array 'xs'" in findings[0].message

    def test_range_len_index_loop(self, tmp_path):
        files = {
            "loops.py": (
                "import numpy as np\n\n"
                "def indexed(xs: np.ndarray) -> float:\n"
                "    acc = 0.0\n"
                "    for i in range(len(xs)):\n"
                "        acc += float(xs[i])\n"
                "    return acc\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR103"})
        assert [f.rule_id for f in findings] == ["RPR103"]
        assert "range(len(xs))" in findings[0].message

    def test_per_element_write_into_preallocated_array(self, tmp_path):
        files = {
            "loops.py": (
                "import numpy as np\n\n"
                "def fill(n: int):\n"
                "    out = np.zeros(n)\n"
                "    for i in range(n):\n"
                "        out[i] = i * 2.0\n"
                "    return out\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR103"})
        assert [f.rule_id for f in findings] == ["RPR103"]
        assert "per-element write out[i]" in findings[0].message

    def test_zip_over_array_operand(self, tmp_path):
        files = {
            "loops.py": (
                "import numpy as np\n\n"
                "def pair(xs: np.ndarray, ys):\n"
                "    acc = 0.0\n"
                "    for x, y in zip(xs, ys):\n"
                "        acc += x * y\n"
                "    return acc\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR103"})
        assert [f.rule_id for f in findings] == ["RPR103"]
        assert "via zip(...)" in findings[0].message

    def test_comprehension_and_tolist_scan_are_clean(self, tmp_path):
        files = {
            "loops.py": (
                "import numpy as np\n\n"
                "def ok(xs: np.ndarray) -> float:\n"
                "    values = [x * x for x in xs]\n"
                "    for v in xs.tolist():\n"
                "        values.append(v)\n"
                "    return float(sum(values))\n"
            ),
        }
        assert lint_project(tmp_path, files, {"RPR103"}) == []


class TestRPR104InvariantCalls:
    PURE_HELPER = "def double(x):\n    return x * 2.0\n"

    def test_invariant_pure_call_flagged(self, tmp_path):
        files = {
            "hot.py": (
                self.PURE_HELPER + "\n"
                "def run(n, base):\n"
                "    acc = 0.0\n"
                "    for _ in range(n):\n"
                "        acc += double(base)\n"
                "    return acc\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR104"})
        assert [f.rule_id for f in findings] == ["RPR104"]
        assert "loop-invariant call to pure 'double'" in findings[0].message

    def test_loop_varying_argument_not_flagged(self, tmp_path):
        files = {
            "hot.py": (
                self.PURE_HELPER + "\n"
                "def run(n):\n"
                "    acc = 0.0\n"
                "    for i in range(n):\n"
                "        acc += double(i)\n"
                "    return acc\n"
            ),
        }
        assert lint_project(tmp_path, files, {"RPR104"}) == []

    def test_only_frozen_dataclass_constructors_flagged(self, tmp_path):
        files = {
            "build.py": (
                "from dataclasses import dataclass\n\n"
                "@dataclass(frozen=True)\n"
                "class Cold:\n"
                "    x: float = 0.0\n\n"
                "@dataclass\n"
                "class Warm:\n"
                "    x: float = 0.0\n\n"
                "def build(n):\n"
                "    cold = []\n"
                "    warm = []\n"
                "    for _ in range(n):\n"
                "        cold.append(Cold())\n"
                "        warm.append(Warm())\n"
                "    return cold, warm\n"
            ),
        }
        findings = lint_project(tmp_path, files, {"RPR104"})
        assert [f.rule_id for f in findings] == ["RPR104"]
        assert "'Cold'" in findings[0].message
        assert "Warm" not in messages(findings)

    def test_comprehension_bound_names_are_loop_varying(self, tmp_path):
        files = {
            "hot.py": (
                self.PURE_HELPER + "\n"
                "def scan(n, flags):\n"
                "    out = []\n"
                "    for _ in range(n):\n"
                "        out.append([double(f) for f in flags])\n"
                "    return out\n"
            ),
        }
        assert lint_project(tmp_path, files, {"RPR104"}) == []


class TestTwoPhaseResolution:
    FILES = {
        "helpers.py": "def double(x):\n    return x * 2.0\n",
        "main.py": (
            "from helpers import double\n\n"
            "def run(n, base):\n"
            "    acc = 0.0\n"
            "    for _ in range(n):\n"
            "        acc += double(base)\n"
            "    return acc\n"
        ),
    }

    def test_batch_lint_resolves_across_files(self, tmp_path):
        findings = lint_project(tmp_path, self.FILES, {"RPR104"})
        assert [f.rule_id for f in findings] == ["RPR104"]
        assert findings[0].path.endswith("main.py")

    def test_single_file_lint_cannot_see_the_sibling(self, tmp_path):
        for name, code in self.FILES.items():
            (tmp_path / name).write_text(code)
        findings = lint_paths([tmp_path / "main.py"], select={"RPR104"})
        assert findings == []
