"""Exception-hierarchy tests (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.RadioError,
            errors.ChannelError,
            errors.SimulationError,
            errors.SchedulerError,
            errors.CampaignError,
            errors.DatasetError,
            errors.FittingError,
            errors.OptimizationError,
            errors.InfeasibleError,
            errors.UnitsError,
            errors.ModelError,
            errors.AnalysisError,
            errors.LintError,
            errors.FleetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_configuration_error_is_value_error(self):
        """Callers using plain ValueError handling still catch config errors."""
        assert issubclass(errors.ConfigurationError, ValueError)

    @pytest.mark.parametrize(
        "exc", [errors.UnitsError, errors.ModelError, errors.AnalysisError]
    )
    def test_domain_errors_keep_value_error_in_mro(self, exc):
        """Bad-argument errors stay catchable as plain ValueError."""
        assert issubclass(exc, ValueError)

    def test_lint_error_is_not_value_error(self):
        """Lint configuration problems are operational, not bad arguments."""
        assert not issubclass(errors.LintError, ValueError)

    def test_fleet_error_is_not_value_error(self):
        """Fleet problems are operational (wrong run setup), not bad values."""
        assert not issubclass(errors.FleetError, ValueError)

    def test_scheduler_error_is_simulation_error(self):
        assert issubclass(errors.SchedulerError, errors.SimulationError)

    def test_infeasible_is_optimization_error(self):
        assert issubclass(errors.InfeasibleError, errors.OptimizationError)

    def test_single_handler_catches_library_errors(self):
        """The documented contract: one except clause for everything."""
        from repro.config import StackConfig

        with pytest.raises(errors.ReproError):
            StackConfig(ptx_level=99)

    def test_errors_carry_messages(self):
        try:
            raise errors.FittingError("too few points")
        except errors.ReproError as exc:
            assert "too few points" in str(exc)
