"""Statistics helper tests (repro.analysis.stats)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    bin_series,
    bootstrap_ci,
    coefficient_of_variation_squared,
    relative_error,
    snr_bin_edges,
)
from repro.errors import AnalysisError


class TestBinSeries:
    def test_means_per_bin(self):
        x = [0.5, 0.6, 1.5, 1.6]
        y = [1.0, 3.0, 10.0, 20.0]
        binned = bin_series(x, y, edges=[0.0, 1.0, 2.0])
        assert binned.means[0] == pytest.approx(2.0)
        assert binned.means[1] == pytest.approx(15.0)
        assert list(binned.counts) == [2, 2]

    def test_empty_bins_are_nan(self):
        binned = bin_series([0.5], [1.0], edges=[0.0, 1.0, 2.0])
        assert binned.counts[1] == 0
        assert np.isnan(binned.means[1])

    def test_nonempty_filter(self):
        binned = bin_series([0.5], [1.0], edges=[0.0, 1.0, 2.0]).nonempty()
        assert binned.centers.size == 1

    def test_out_of_range_ignored(self):
        binned = bin_series([-5.0, 0.5, 10.0], [1.0, 2.0, 3.0], edges=[0.0, 1.0])
        assert binned.counts[0] == 1
        assert binned.means[0] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bin_series([1.0], [1.0, 2.0], edges=[0.0, 1.0])
        with pytest.raises(AnalysisError):
            bin_series([1.0], [1.0], edges=[1.0])
        with pytest.raises(AnalysisError):
            bin_series([1.0], [1.0], edges=[1.0, 0.5])

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=9.999), min_size=1, max_size=100
        )
    )
    def test_counts_conserved(self, xs):
        ys = [1.0] * len(xs)
        binned = bin_series(xs, ys, edges=np.arange(0.0, 10.5, 1.0))
        assert binned.counts.sum() == len(xs)


class TestSnrBinEdges:
    def test_default_span(self):
        edges = snr_bin_edges()
        assert edges[0] == 0.0 and edges[-1] == 40.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            snr_bin_edges(10.0, 5.0)
        with pytest.raises(AnalysisError):
            snr_bin_edges(width_db=0.0)


class TestBootstrap:
    def test_ci_brackets_point(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, 500)
        point, lo, hi = bootstrap_ci(data, seed=1)
        assert lo <= point <= hi
        assert point == pytest.approx(10.0, abs=0.5)
        assert hi - lo < 1.0

    def test_wider_at_higher_confidence(self):
        data = np.random.default_rng(0).normal(0.0, 1.0, 100)
        _, lo95, hi95 = bootstrap_ci(data, confidence=0.95, seed=2)
        _, lo99, hi99 = bootstrap_ci(data, confidence=0.99, seed=2)
        assert (hi99 - lo99) >= (hi95 - lo95)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([])
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0], confidence=1.5)


class TestMisc:
    def test_scv_of_constant_is_zero(self):
        assert coefficient_of_variation_squared([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_scv_of_exponential_near_one(self):
        data = np.random.default_rng(0).exponential(2.0, 20000)
        assert coefficient_of_variation_squared(data) == pytest.approx(1.0, abs=0.1)

    def test_scv_validation(self):
        with pytest.raises(AnalysisError):
            coefficient_of_variation_squared([1.0])
        with pytest.raises(AnalysisError):
            coefficient_of_variation_squared([1.0, -1.0])

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)
        with pytest.raises(AnalysisError):
            relative_error(1.0, 0.0)
