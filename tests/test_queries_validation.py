"""Dataset query and model-validation tests (campaign.queries, core.validation)."""

import math

import numpy as np
import pytest

from repro.campaign import (
    CampaignDataset,
    CampaignRunner,
    aggregate,
    best_configs,
    group_by,
    metric_vs_snr,
)
from repro.channel import QUIET_HALLWAY
from repro.config import ParameterSpace
from repro.core import ModelValidator, needs_refit
from repro.errors import DatasetError, ReproError


@pytest.fixture(scope="module")
def dataset():
    space = ParameterSpace(
        distances_m=(10.0, 35.0),
        ptx_levels=(11, 31),
        n_max_tries_values=(1, 3),
        d_retry_values_ms=(0.0,),
        q_max_values=(1,),
        t_pkt_values_ms=(100.0,),
        payload_values_bytes=(20, 110),
    )
    runner = CampaignRunner(
        environment=QUIET_HALLWAY, packets_per_config=150, engine="des"
    )
    return runner.run(space, description="queries test campaign")


class TestGroupBy:
    def test_partition_complete(self, dataset):
        groups = group_by(dataset, "distance_m")
        assert set(groups) == {(10.0,), (35.0,)}
        assert sum(len(g) for g in groups.values()) == len(dataset)

    def test_multi_field(self, dataset):
        groups = group_by(dataset, "distance_m", "ptx_level")
        assert len(groups) == 4
        for (d, lvl), group in groups.items():
            assert all(
                s.config.distance_m == d and s.config.ptx_level == lvl
                for s in group
            )

    def test_unknown_field(self, dataset):
        with pytest.raises(DatasetError):
            group_by(dataset, "bogus")

    def test_no_fields(self, dataset):
        with pytest.raises(DatasetError):
            group_by(dataset)


class TestAggregate:
    def test_rows_sorted_and_counted(self, dataset):
        rows = aggregate(dataset, "per", by=["payload_bytes"])
        assert [r.key for r in rows] == [(20,), (110,)]
        assert all(r.count == len(dataset) // 2 for r in rows)

    def test_payload_effect_visible(self, dataset):
        rows = {r.key[0]: r.mean for r in aggregate(dataset, "per", by=["payload_bytes"])}
        assert rows[110] > rows[20]

    def test_aggregate_handles_infinite_energy(self, dataset):
        rows = aggregate(dataset, "u_eng_uj_per_bit", by=["ptx_level"])
        for row in rows:
            # Mean is finite (or nan) even if some cells were infinite.
            assert not math.isinf(row.mean)


class TestMetricVsSnr:
    def test_bins_cover_data(self, dataset):
        rows = metric_vs_snr(dataset, "per", snr_bin_width_db=5.0)
        assert rows
        assert sum(r.count for r in rows) <= len(dataset)

    def test_per_decreases_with_snr(self, dataset):
        rows = metric_vs_snr(dataset, "per", snr_bin_width_db=10.0)
        finite = [r for r in rows if not math.isnan(r.mean)]
        assert finite[0].mean >= finite[-1].mean

    def test_validation(self, dataset):
        with pytest.raises(DatasetError):
            metric_vs_snr(dataset, "per", snr_bin_width_db=0.0)


class TestBestConfigs:
    def test_minimizing_energy(self, dataset):
        best = best_configs(dataset, "u_eng_uj_per_bit", minimize=True, top=3)
        assert len(best) == 3
        values = [s.u_eng_uj_per_bit for s in best]
        assert values == sorted(values)

    def test_maximizing_goodput(self, dataset):
        best = best_configs(dataset, "goodput_kbps", minimize=False, top=2)
        all_goodputs = dataset.column("goodput_kbps")
        assert best[0].goodput_kbps == pytest.approx(np.nanmax(all_goodputs))

    def test_validation(self, dataset):
        with pytest.raises(DatasetError):
            best_configs(dataset, "per", top=0)


class TestModelValidator:
    def test_validates_loss_metrics(self, dataset):
        validator = ModelValidator()
        report = validator.validate_all(dataset)
        assert "per" in report and "mean_service_time_ms" in report
        for validation in report.values():
            assert validation.n_points >= 2
            assert validation.mean_absolute_error >= 0.0

    def test_service_time_accurate(self, dataset):
        """The timing model should predict simulated service times closely."""
        validator = ModelValidator()
        result = validator.validate_metric(dataset, "mean_service_time_ms")
        assert result.mean_relative_error < 0.15
        assert result.correlation > 0.9

    def test_summary_string(self, dataset):
        validator = ModelValidator()
        result = validator.validate_metric(dataset, "per")
        assert "MAE=" in result.summary()

    def test_unknown_metric(self, dataset):
        with pytest.raises(ReproError):
            ModelValidator().validate_metric(dataset, "goodput_kbps")

    def test_needs_refit_false_on_native_data(self, dataset):
        """Simulated campaigns match the calibrated models: no refit flag."""
        report = ModelValidator().validate_all(dataset)
        assert not needs_refit(report, relative_error_threshold=2.0)

    def test_needs_refit_validation(self, dataset):
        report = ModelValidator().validate_all(dataset)
        with pytest.raises(ReproError):
            needs_refit(report, relative_error_threshold=0.0)
