"""End-to-end DES behaviour tests (repro.sim.simulator / node)."""

import numpy as np
import pytest

from repro.analysis import compute_metrics
from repro.channel import HALLWAY_2012, QUIET_HALLWAY
from repro.config import StackConfig
from repro.errors import SimulationError
from repro.mac import AckPolicy
from repro.sim import (
    LinkSimulator,
    PacketFate,
    SimulationOptions,
    simulate_link,
)


def run(config, n_packets=200, seed=0, environment=QUIET_HALLWAY, **opt_kwargs):
    options = SimulationOptions(
        n_packets=n_packets, seed=seed, environment=environment, **opt_kwargs
    )
    return simulate_link(config, options=options)


class TestBasicInvariants:
    def test_every_packet_resolves(self, default_config):
        trace = run(default_config, n_packets=150)
        assert len(trace.packets) == 150
        fates = {p.fate for p in trace.packets}
        assert fates <= {
            PacketFate.DELIVERED,
            PacketFate.RADIO_DROP,
            PacketFate.QUEUE_DROP,
        }

    def test_sequence_numbers_complete(self, default_config):
        trace = run(default_config, n_packets=100)
        assert [p.seq for p in trace.packets] == list(range(100))

    def test_deterministic_under_seed(self, default_config):
        a = run(default_config, n_packets=100, seed=5, environment=HALLWAY_2012)
        b = run(default_config, n_packets=100, seed=5, environment=HALLWAY_2012)
        assert [(p.seq, p.fate, p.n_tries) for p in a.packets] == [
            (p.seq, p.fate, p.n_tries) for p in b.packets
        ]
        assert a.tx_energy_j == pytest.approx(b.tx_energy_j)

    def test_different_seeds_differ(self, default_config):
        a = run(default_config, n_packets=200, seed=1, environment=HALLWAY_2012)
        b = run(default_config, n_packets=200, seed=2, environment=HALLWAY_2012)
        assert [p.n_tries for p in a.packets] != [p.n_tries for p in b.packets]

    def test_tries_within_budget(self, default_config):
        trace = run(default_config, n_packets=200)
        assert all(
            p.n_tries <= default_config.n_max_tries
            for p in trace.packets
            if p.fate is not PacketFate.QUEUE_DROP
        )

    def test_timestamps_ordered(self, default_config):
        trace = run(default_config, n_packets=100)
        for p in trace.packets:
            if p.fate is PacketFate.QUEUE_DROP:
                continue
            assert p.generated_s <= p.dequeued_s <= p.completed_s

    def test_duration_covers_all_arrivals(self, default_config):
        trace = run(default_config, n_packets=50)
        expected_span = 49 * default_config.t_pkt_ms / 1e3
        assert trace.duration_s >= expected_span


class TestChannelQualityEffects:
    def test_strong_link_delivers_everything(self):
        config = StackConfig(
            distance_m=5.0, ptx_level=31, n_max_tries=1, q_max=30,
            t_pkt_ms=50.0, payload_bytes=110,
        )
        trace = run(config)
        delivered = trace.packets_with_fate(PacketFate.DELIVERED)
        assert len(delivered) == len(trace.packets)
        assert all(p.n_tries == 1 for p in delivered)

    def test_dead_link_delivers_nothing(self):
        config = StackConfig(
            distance_m=35.0, ptx_level=3, n_max_tries=3, q_max=1,
            t_pkt_ms=100.0, payload_bytes=110,
        )
        trace = run(config)
        assert not trace.packets_with_fate(PacketFate.DELIVERED)

    def test_grey_zone_link_retransmits(self):
        config = StackConfig(
            distance_m=35.0, ptx_level=7, n_max_tries=5, q_max=30,
            t_pkt_ms=200.0, payload_bytes=110,
        )
        trace = run(config, n_packets=300)
        metrics = compute_metrics(trace)
        assert metrics.mean_tries > 1.1
        assert 0.05 < metrics.per < 0.95

    def test_higher_power_fewer_tries(self):
        base = StackConfig(
            distance_m=35.0, ptx_level=7, n_max_tries=5, q_max=1,
            t_pkt_ms=200.0, payload_bytes=110,
        )
        weak = compute_metrics(run(base, n_packets=400))
        strong = compute_metrics(run(base.with_updates(ptx_level=31), n_packets=400))
        assert strong.mean_tries < weak.mean_tries
        assert strong.per < weak.per


class TestQueueBehaviour:
    def overloading_config(self, q_max):
        # 110 B at T_pkt = 10 ms: service ≈ 18–20 ms → rho ≈ 2.
        return StackConfig(
            distance_m=5.0, ptx_level=31, n_max_tries=1, q_max=q_max,
            t_pkt_ms=10.0, payload_bytes=110,
        )

    def test_overload_causes_queue_drops(self):
        trace = run(self.overloading_config(q_max=1), n_packets=300)
        metrics = compute_metrics(trace)
        assert metrics.plr_queue > 0.3

    def test_larger_queue_fewer_drops_more_delay(self):
        small = compute_metrics(run(self.overloading_config(1), n_packets=300))
        large = compute_metrics(run(self.overloading_config(30), n_packets=300))
        assert large.plr_queue < small.plr_queue
        assert large.mean_delay_s > small.mean_delay_s

    def test_stable_load_no_queue_drops(self):
        config = StackConfig(
            distance_m=5.0, ptx_level=31, n_max_tries=1, q_max=1,
            t_pkt_ms=100.0, payload_bytes=20,
        )
        metrics = compute_metrics(run(config))
        assert metrics.plr_queue == 0.0
        # Light traffic: delay is essentially the service time.
        assert metrics.mean_delay_s < metrics.mean_service_time_s * 1.5


class TestServiceTimeStructure:
    def test_service_time_near_model(self):
        """The DES realizes the paper's Eqs. 5–6 timing decomposition."""
        from repro.core import ServiceTimeModel

        config = StackConfig(
            distance_m=5.0, ptx_level=31, n_max_tries=1, q_max=1,
            t_pkt_ms=100.0, payload_bytes=110,
        )
        metrics = compute_metrics(run(config, n_packets=500))
        model = ServiceTimeModel().mean_service_time_s(
            110, metrics.mean_snr_db, 1, 0.0
        )
        assert metrics.mean_service_time_s == pytest.approx(model, rel=0.05)

    def test_retry_delay_lengthens_service(self):
        base = StackConfig(
            distance_m=35.0, ptx_level=7, n_max_tries=5, q_max=1,
            t_pkt_ms=500.0, payload_bytes=110,
        )
        no_delay = compute_metrics(run(base, n_packets=300))
        with_delay = compute_metrics(
            run(base.with_updates(d_retry_ms=60.0), n_packets=300)
        )
        assert with_delay.mean_service_time_s > no_delay.mean_service_time_s


class TestAckModelling:
    def test_ack_loss_produces_duplicates(self):
        config = StackConfig(
            distance_m=35.0, ptx_level=7, n_max_tries=5, q_max=1,
            t_pkt_ms=200.0, payload_bytes=110,
        )
        trace = run(config, n_packets=800, environment=HALLWAY_2012, seed=11)
        duplicates = sum(p.duplicate_deliveries for p in trace.packets)
        assert duplicates > 0

    def test_no_ack_loss_no_duplicates(self):
        config = StackConfig(
            distance_m=35.0, ptx_level=7, n_max_tries=5, q_max=1,
            t_pkt_ms=200.0, payload_bytes=110,
        )
        options = SimulationOptions(
            n_packets=400,
            seed=11,
            environment=QUIET_HALLWAY,
            ack=AckPolicy(ack_loss_modelled=False),
        )
        trace = simulate_link(config, options=options)
        assert sum(p.duplicate_deliveries for p in trace.packets) == 0


class TestOptionsValidation:
    def test_rejects_zero_packets(self):
        with pytest.raises(SimulationError):
            SimulationOptions(n_packets=0)

    def test_strict_mode_validates(self, default_config):
        trace = run(default_config, n_packets=50)
        trace.validate()  # idempotent

    def test_energy_breakdown_populated(self, default_config):
        trace = run(default_config, n_packets=50)
        assert trace.tx_energy_j > 0
        assert set(trace.energy_breakdown_j) == {"tx", "rx", "listen", "spi", "idle"}
