"""Integration tests pinning the paper's qualitative findings end to end.

Each test regenerates (a small slice of) one of the paper's observations
with the simulator and asserts the *shape* the paper reports — these are the
claims the benchmarks then print at full size.
"""

import numpy as np
import pytest

from repro.analysis import compute_metrics
from repro.campaign import sweep_snr_payload
from repro.channel import HALLWAY_2012
from repro.config import StackConfig
from repro.core import fit_ntries_model, fit_per_model
from repro.core.fitting import fit_plr_radio_model
from repro.campaign.snr_sweep import points_as_arrays
from repro.sim import SimulationOptions, simulate_link


def run(config, n_packets=600, seed=0):
    options = SimulationOptions(
        n_packets=n_packets, seed=seed, environment=HALLWAY_2012
    )
    return compute_metrics(simulate_link(config, options=options))


class TestFig6PerJointEffects:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_snr_payload(
            snr_values_db=list(np.arange(5.0, 24.0, 2.0)),
            payload_values_bytes=[5, 35, 65, 110],
            n_packets=2500,
            n_max_tries=1,
            seed=5,
        )

    def test_per_decreases_with_snr(self, sweep):
        per_110 = {p.mean_snr_db: p.per for p in sweep if p.payload_bytes == 110}
        snrs = sorted(per_110)
        values = [per_110[s] for s in snrs]
        # Allow tiny Monte-Carlo wobble but demand an overall decay.
        assert values[0] > 0.4
        assert values[-1] < 0.15
        assert np.corrcoef(snrs, values)[0, 1] < -0.8

    def test_slope_smoother_for_large_payload(self, sweep):
        """Fig. 6b: PER decays more slowly (in SNR) for larger l_D."""

        def snr_where_per_below(payload, threshold=0.1):
            series = sorted(
                (p.mean_snr_db, p.per)
                for p in sweep
                if p.payload_bytes == payload
            )
            for snr, per in series:
                if per < threshold:
                    return snr
            return series[-1][0]

        assert snr_where_per_below(110) > snr_where_per_below(5)

    def test_payload_effect_depends_on_zone(self, sweep):
        """Fig. 6c/d: payload moves PER a lot at low SNR, little at high."""
        def per_spread(snr):
            cells = [p.per for p in sweep if abs(p.mean_snr_db - snr) < 0.5]
            return max(cells) - min(cells)

        assert per_spread(7.0) > 3 * per_spread(23.0)


class TestFig11Fig12Fits:
    def test_refit_recovers_paper_constants(self):
        """Figs. 6/11/12: re-fitting Eqs. 3/7/8 on simulated campaigns lands
        near the published coefficients."""
        snrs = list(np.arange(5.0, 26.0, 2.0))
        payloads = [5, 20, 35, 50, 65, 80, 110]
        per_points = sweep_snr_payload(snrs, payloads, n_packets=1500, seed=0)
        payload, snr, per, _, _ = points_as_arrays(per_points)
        per_fit = fit_per_model(payload, snr, per)
        assert per_fit.alpha == pytest.approx(0.0128, rel=0.45)
        assert per_fit.beta == pytest.approx(-0.15, rel=0.25)

        tries_points = sweep_snr_payload(
            snrs, payloads, n_packets=1500, n_max_tries=8, seed=1
        )
        payload, snr, _, _, tries = points_as_arrays(tries_points)
        tries_fit = fit_ntries_model(payload, snr, tries)
        assert tries_fit.alpha == pytest.approx(0.02, rel=0.45)
        assert tries_fit.beta == pytest.approx(-0.18, rel=0.25)

        plr_points = sweep_snr_payload(
            snrs, payloads, n_packets=1500, n_max_tries=3, seed=2
        )
        payload, snr, _, plr, _ = points_as_arrays(plr_points)
        plr_fit = fit_plr_radio_model(payload, snr, plr, n_max_tries=3)
        assert plr_fit.beta == pytest.approx(-0.145, rel=0.35)


class TestFig10GoodputShape:
    def test_goodput_rises_then_saturates(self):
        """Fig. 10: goodput grows with SNR and flattens past ~19 dB."""
        config = StackConfig(
            distance_m=35.0, n_max_tries=3, q_max=30, t_pkt_ms=10.0,
            payload_bytes=110, ptx_level=7,
        )
        goodput = {}
        for level in (7, 15, 23, 31):
            metrics = run(config.with_updates(ptx_level=level), n_packets=500)
            goodput[level] = (metrics.mean_snr_db, metrics.goodput_kbps)
        snrs = [goodput[l][0] for l in (7, 15, 23, 31)]
        values = [goodput[l][1] for l in (7, 15, 23, 31)]
        assert values[1] > values[0]  # rising through the grey zone
        # Saturation: the last doubling of power buys little.
        assert values[3] - values[2] < 0.3 * (values[2] - values[0])


class TestFig15DelayShape:
    def test_grey_zone_queue_delay_orders_of_magnitude(self):
        """Fig. 15: Q_max 30 vs 1 differs by orders of magnitude in the grey
        zone under load, and hardly at all on a good link."""
        grey = StackConfig(
            distance_m=35.0, ptx_level=7, n_max_tries=5, t_pkt_ms=20.0,
            payload_bytes=110, q_max=1,
        )
        d_small = run(grey, n_packets=500, seed=1).mean_delay_s
        d_large = run(grey.with_updates(q_max=30), n_packets=500, seed=1).mean_delay_s
        # The gap is bounded by Q_max (≈30×) at this queue size; the paper's
        # "2–3 orders" figure is in raw ms at its larger service times.
        assert d_large > 10 * d_small

        good = grey.with_updates(ptx_level=31, t_pkt_ms=100.0)
        g_small = run(good, n_packets=500, seed=1).mean_delay_s
        g_large = run(good.with_updates(q_max=30), n_packets=500, seed=1).mean_delay_s
        assert g_large < 3 * g_small


class TestFig17LossTradeoff:
    def test_retransmission_queue_radio_tradeoff(self):
        """Fig. 17: in the grey zone under load, raising N_maxTries cuts
        radio loss but inflates queue loss (Q_max = 1)."""
        base = StackConfig(
            distance_m=35.0, ptx_level=7, q_max=1, t_pkt_ms=30.0,
            payload_bytes=110, n_max_tries=1,
        )
        one = run(base, n_packets=600, seed=2)
        five = run(base.with_updates(n_max_tries=5), n_packets=600, seed=2)
        assert five.plr_radio < one.plr_radio
        assert five.plr_queue > one.plr_queue

    def test_large_queue_absorbs_queue_loss(self):
        """Fig. 17d: only a large queue reduces PLR_queue under overload."""
        base = StackConfig(
            distance_m=35.0, ptx_level=7, q_max=1, t_pkt_ms=30.0,
            payload_bytes=110, n_max_tries=5,
        )
        small = run(base, n_packets=600, seed=3)
        large = run(base.with_updates(q_max=30), n_packets=600, seed=3)
        assert large.plr_queue < small.plr_queue


class TestFig7EnergyShape:
    def test_optimal_power_increases_with_payload(self):
        """Fig. 7: at 35 m the energy-optimal P_tx is higher for 110 B than
        for small payloads."""
        def optimal_level(payload):
            best, best_u = None, float("inf")
            for level in (7, 11, 15, 19, 23, 27, 31):
                cfg = StackConfig(
                    distance_m=35.0, ptx_level=level, n_max_tries=3, q_max=1,
                    t_pkt_ms=60.0, payload_bytes=payload,
                )
                u = run(cfg, n_packets=400, seed=4).energy_per_info_bit_uj
                if u < best_u:
                    best, best_u = level, u
            return best

        assert optimal_level(110) >= optimal_level(20)
