"""Gilbert-Elliott bursty-channel tests (repro.extensions.burst)."""

import numpy as np
import pytest

from repro.channel import QUIET_HALLWAY
from repro.errors import ChannelError
from repro.extensions import GilbertElliottChannel, GilbertElliottConfig


def make_channel(seed=0, **burst_kwargs):
    burst = GilbertElliottConfig(**burst_kwargs)
    return GilbertElliottChannel(
        QUIET_HALLWAY, 20.0, 31, np.random.default_rng(seed), burst
    )


class TestConfig:
    def test_stationary_probability(self):
        burst = GilbertElliottConfig(good_mean_s=0.9, bad_mean_s=0.1)
        assert burst.stationary_bad_probability == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ChannelError):
            GilbertElliottConfig(good_mean_s=0.0)
        with pytest.raises(ChannelError):
            GilbertElliottConfig(bad_mean_s=-1.0)
        with pytest.raises(ChannelError):
            GilbertElliottConfig(bad_extra_loss_db=-5.0)


class TestChannel:
    def test_time_must_not_go_backwards(self):
        channel = make_channel()
        channel.sample(1.0)
        with pytest.raises(ChannelError):
            channel.sample(0.5)

    def test_bad_state_attenuates(self):
        """Samples split into two RSSI clusters separated by the fade depth."""
        channel = make_channel(
            seed=1, good_mean_s=0.1, bad_mean_s=0.1, bad_extra_loss_db=20.0
        )
        rssi = np.array([channel.sample(i * 0.01).rssi_dbm for i in range(3000)])
        high = rssi[rssi > rssi.mean()]
        low = rssi[rssi <= rssi.mean()]
        assert high.mean() - low.mean() == pytest.approx(20.0, abs=1.0)

    def test_time_share_matches_stationary(self):
        channel = make_channel(
            seed=2, good_mean_s=0.3, bad_mean_s=0.1, bad_extra_loss_db=30.0
        )
        bad = 0
        n = 6000
        for i in range(n):
            channel.sample(i * 0.01)
            bad += channel.in_bad_state
        assert bad / n == pytest.approx(0.25, abs=0.04)

    def test_zero_depth_is_transparent(self):
        plain = GilbertElliottChannel(
            QUIET_HALLWAY, 20.0, 31, np.random.default_rng(3),
            GilbertElliottConfig(bad_extra_loss_db=0.0),
        )
        samples = [plain.sample(i * 0.01).rssi_dbm for i in range(100)]
        assert max(samples) - min(samples) < 1e-9

    def test_losses_are_bursty(self):
        """Consecutive-failure runs are longer than memoryless loss allows."""
        channel = make_channel(
            seed=4, good_mean_s=0.3, bad_mean_s=0.08, bad_extra_loss_db=40.0
        )
        outcomes = [
            channel.transmit_frame(i * 0.005, 129).delivered for i in range(6000)
        ]
        # Longest failure run.
        longest = run = 0
        for ok in outcomes:
            run = 0 if ok else run + 1
            longest = max(longest, run)
        loss_rate = 1 - np.mean(outcomes)
        # A memoryless channel at this loss rate would need ~p^15 ≈ 1e-12
        # to produce a 15-run; the burst channel produces them routinely.
        assert loss_rate < 0.35
        assert longest >= 12

    def test_deterministic_under_seed(self):
        a = make_channel(seed=5)
        b = make_channel(seed=5)
        sa = [a.sample(i * 0.01).rssi_dbm for i in range(200)]
        sb = [b.sample(i * 0.01).rssi_dbm for i in range(200)]
        assert sa == sb
