"""Parallel campaign runner and weighted-sum MOP tests."""

import pytest

from repro.campaign import CampaignRunner, run_campaign_parallel
from repro.channel import QUIET_HALLWAY
from repro.config import ParameterSpace
from repro.core.optimization import (
    ModelEvaluator,
    TuningGrid,
    best_by,
    evaluate_grid,
    pareto_front,
    snr_map_from_reference,
    solve_weighted_sum,
    sweep_weights,
    weighted_points_on_pareto_front,
)
from repro.errors import CampaignError, OptimizationError


@pytest.fixture(scope="module")
def small_space():
    return ParameterSpace(
        distances_m=(10.0,),
        ptx_levels=(15, 31),
        n_max_tries_values=(1, 3),
        d_retry_values_ms=(0.0,),
        q_max_values=(1,),
        t_pkt_values_ms=(100.0,),
        payload_values_bytes=(50,),
    )


class TestParallelRunner:
    def test_matches_serial_runner(self, small_space):
        """Worker count must not change any result (determinism contract)."""
        serial = CampaignRunner(
            environment=QUIET_HALLWAY, packets_per_config=60, base_seed=7
        ).run(small_space)
        parallel = run_campaign_parallel(
            small_space,
            n_workers=2,
            environment=QUIET_HALLWAY,
            packets_per_config=60,
            base_seed=7,
        )
        assert len(parallel) == len(serial)
        for a, b in zip(serial, parallel):
            assert a == b

    def test_single_worker_path(self, small_space):
        dataset = run_campaign_parallel(
            small_space,
            n_workers=1,
            environment=QUIET_HALLWAY,
            packets_per_config=40,
        )
        assert len(dataset) == len(small_space)

    def test_order_preserved(self, small_space):
        dataset = run_campaign_parallel(
            small_space,
            n_workers=2,
            environment=QUIET_HALLWAY,
            packets_per_config=40,
        )
        assert [s.config for s in dataset] == list(small_space)

    def test_validation(self, small_space):
        with pytest.raises(CampaignError):
            run_campaign_parallel(small_space, n_workers=0)
        with pytest.raises(CampaignError):
            run_campaign_parallel([], n_workers=1)
        with pytest.raises(CampaignError):
            run_campaign_parallel(small_space, n_workers=1, engine="warp")


@pytest.fixture(scope="module")
def evaluations():
    evaluator = ModelEvaluator(snr_by_level=snr_map_from_reference(10.0))
    grid = TuningGrid(
        payload_values_bytes=tuple(range(10, 115, 10)),
        n_max_tries_values=(1, 3, 8),
        q_max_values=(1,),
    )
    return evaluate_grid(evaluator, grid)


class TestWeightedSum:
    def test_pure_weight_recovers_single_objective(self, evaluations):
        best = solve_weighted_sum(evaluations, {"goodput": 1.0})
        assert best.config == best_by(evaluations, "goodput").config

    def test_solutions_are_pareto_optimal(self, evaluations):
        assert weighted_points_on_pareto_front(
            evaluations, "goodput", "energy", n_points=9
        )

    def test_sweep_is_subset_of_front(self, evaluations):
        objectives = lambda e: (e.objective("goodput"), e.objective("energy"))
        front_configs = {e.config for e in pareto_front(evaluations, objectives)}
        swept = sweep_weights(evaluations, "goodput", "energy", n_points=9)
        assert swept
        assert all(p.config in front_configs for p in swept)
        # The classic limitation: the weighted sweep usually finds fewer
        # points than the exact front has (non-convex regions unreachable).
        assert len(swept) <= len(front_configs)

    def test_balanced_weights_are_intermediate(self, evaluations):
        goodput_best = solve_weighted_sum(evaluations, {"goodput": 1.0})
        energy_best = solve_weighted_sum(evaluations, {"energy": 1.0})
        balanced = solve_weighted_sum(
            evaluations, {"goodput": 0.5, "energy": 0.5}
        )
        assert balanced.u_eng_uj_per_bit <= goodput_best.u_eng_uj_per_bit + 1e-9
        assert balanced.max_goodput_kbps >= energy_best.max_goodput_kbps - 1e-9

    def test_validation(self, evaluations):
        with pytest.raises(OptimizationError):
            solve_weighted_sum([], {"goodput": 1.0})
        with pytest.raises(OptimizationError):
            solve_weighted_sum(evaluations, {})
        with pytest.raises(OptimizationError):
            solve_weighted_sum(evaluations, {"goodput": -1.0})
        with pytest.raises(OptimizationError):
            solve_weighted_sum(evaluations, {"goodput": 0.0})
        with pytest.raises(OptimizationError):
            sweep_weights(evaluations, "goodput", "energy", n_points=1)
