"""Path-loss model tests (repro.channel.pathloss)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.pathloss import (
    CAMPAIGN_POSITION_OFFSETS_DB,
    LogNormalShadowing,
    fit_path_loss,
)
from repro.errors import ChannelError


class TestMedianLoss:
    def setup_method(self):
        self.model = LogNormalShadowing()

    def test_reference_point(self):
        assert self.model.median_loss_db(1.0) == pytest.approx(
            self.model.reference_loss_db
        )

    def test_paper_exponent(self):
        # Doubling the distance adds 10·n·log10(2) ≈ 6.59 dB at n = 2.19.
        delta = self.model.median_loss_db(20.0) - self.model.median_loss_db(10.0)
        assert delta == pytest.approx(10 * 2.19 * np.log10(2), rel=1e-9)

    @given(st.floats(min_value=0.5, max_value=100.0))
    def test_monotone_in_distance(self, d):
        assert self.model.median_loss_db(d * 1.1) > self.model.median_loss_db(d)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ChannelError):
            self.model.median_loss_db(0.0)


class TestShadowingOffsets:
    def setup_method(self):
        self.model = LogNormalShadowing()

    def test_campaign_positions_frozen(self):
        for d, offset in CAMPAIGN_POSITION_OFFSETS_DB.items():
            assert self.model.shadowing_offset_db(d) == offset

    def test_other_positions_deterministic(self):
        a = self.model.shadowing_offset_db(17.3)
        b = self.model.shadowing_offset_db(17.3)
        assert a == b

    def test_other_positions_bounded_realistically(self):
        offsets = [self.model.shadowing_offset_db(d) for d in (7.1, 13.9, 22.2)]
        assert all(abs(o) < 4 * self.model.sigma_db for o in offsets)

    def test_35m_is_weakest_campaign_link(self):
        losses = {
            d: self.model.loss_db(d) for d in CAMPAIGN_POSITION_OFFSETS_DB
        }
        assert max(losses, key=losses.get) == 35.0


class TestMeanRssi:
    def test_follows_tx_power(self):
        model = LogNormalShadowing()
        r0 = model.mean_rssi_dbm(0.0, 10.0)
        r_low = model.mean_rssi_dbm(-25.0, 10.0)
        assert r0 - r_low == pytest.approx(25.0)


class TestValidation:
    def test_rejects_bad_exponent(self):
        with pytest.raises(ChannelError):
            LogNormalShadowing(exponent=0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ChannelError):
            LogNormalShadowing(sigma_db=-1.0)

    def test_rejects_bad_reference(self):
        with pytest.raises(ChannelError):
            LogNormalShadowing(reference_distance_m=0.0)


class TestFit:
    def test_recovers_known_model(self):
        """Regression on synthetic data recovers the generating parameters."""
        positions = [5.0, 10.0, 15.0, 20.0, 30.0, 35.0]
        model = LogNormalShadowing(
            position_offsets_db={d: 0.0 for d in positions}
        )
        rng = np.random.default_rng(0)
        distances = np.tile(np.array(positions), 40)
        noise = rng.normal(0.0, 3.2, distances.size)
        rssi = np.array(
            [model.mean_rssi_dbm(0.0, d) for d in distances]
        ) - noise
        fit = fit_path_loss(distances, rssi, tx_power_dbm=0.0)
        assert fit["exponent"] == pytest.approx(2.19, abs=0.25)
        assert fit["sigma_db"] == pytest.approx(3.2, abs=0.5)
        assert fit["reference_loss_db"] == pytest.approx(
            model.reference_loss_db, abs=2.0
        )

    def test_campaign_positions_fit_near_paper(self):
        """The frozen hallway realization re-fits to n ≈ 2.19, σ ≈ 3 (Fig. 3)."""
        model = LogNormalShadowing()
        distances = np.array(sorted(CAMPAIGN_POSITION_OFFSETS_DB))
        rssi = np.array([model.mean_rssi_dbm(0.0, d) for d in distances])
        fit = fit_path_loss(distances, rssi, tx_power_dbm=0.0)
        assert fit["exponent"] == pytest.approx(2.19, abs=0.8)
        assert 1.5 < fit["sigma_db"] < 5.0

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ChannelError):
            fit_path_loss(np.ones(3), np.ones(4), 0.0)

    def test_rejects_too_few_points(self):
        with pytest.raises(ChannelError):
            fit_path_loss(np.array([1.0, 2.0]), np.array([-40.0, -50.0]), 0.0)

    def test_rejects_nonpositive_distances(self):
        with pytest.raises(ChannelError):
            fit_path_loss(
                np.array([1.0, -2.0, 3.0]), np.array([-40.0, -50.0, -55.0]), 0.0
            )
