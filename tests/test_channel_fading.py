"""Fading-process tests (repro.channel.fading)."""

import numpy as np
import pytest

from repro.channel.fading import HumanShadowingConfig, ShadowingProcess
from repro.errors import ChannelError


def make_process(rng=None, **kwargs):
    defaults = dict(slow_sigma_db=1.5, slow_tau_s=10.0, fast_sigma_db=1.0)
    defaults.update(kwargs)
    return ShadowingProcess(
        rng=rng or np.random.default_rng(0), **defaults
    )


class TestShadowingProcess:
    def test_time_must_not_go_backwards(self):
        proc = make_process()
        proc.attenuation_db(5.0)
        with pytest.raises(ChannelError):
            proc.attenuation_db(4.0)

    def test_deterministic_under_seed(self):
        a = make_process(np.random.default_rng(42)).sample_block(0.0, 0.1, 50)
        b = make_process(np.random.default_rng(42)).sample_block(0.0, 0.1, 50)
        assert np.array_equal(a, b)

    def test_zero_sigmas_give_zero(self):
        proc = make_process(slow_sigma_db=0.0, fast_sigma_db=0.0)
        samples = proc.sample_block(0.0, 0.1, 20)
        assert np.all(samples == 0.0)

    def test_stationary_std_matches(self):
        """Long-run attenuation std ≈ sqrt(slow² + fast²)."""
        proc = make_process(np.random.default_rng(1))
        # Sample far apart so slow values decorrelate.
        samples = proc.sample_block(0.0, 50.0, 4000)
        expected = np.hypot(1.5, 1.0)
        assert samples.std() == pytest.approx(expected, rel=0.1)

    def test_temporal_correlation_of_slow_component(self):
        """Nearby samples correlate; distant samples do not."""
        proc = make_process(np.random.default_rng(2), fast_sigma_db=0.0)
        samples = proc.sample_block(0.0, 0.5, 4000)  # dt << tau
        near = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert near > 0.8
        proc2 = make_process(np.random.default_rng(3), fast_sigma_db=0.0)
        far = proc2.sample_block(0.0, 100.0, 2000)  # dt >> tau
        far_corr = np.corrcoef(far[:-1], far[1:])[0, 1]
        assert abs(far_corr) < 0.1

    def test_validation(self):
        with pytest.raises(ChannelError):
            make_process(slow_sigma_db=-1.0)
        with pytest.raises(ChannelError):
            make_process(slow_tau_s=0.0)

    def test_sample_block_validation(self):
        proc = make_process()
        with pytest.raises(ChannelError):
            proc.sample_block(0.0, 0.0, 10)
        with pytest.raises(ChannelError):
            proc.sample_block(0.0, 1.0, -1)


class TestHumanShadowing:
    def test_events_only_attenuate(self):
        """Human-shadowing events add positive attenuation on average."""
        human = HumanShadowingConfig(
            rate_per_s=0.5, mean_depth_db=8.0, mean_duration_s=2.0
        )
        with_events = make_process(
            np.random.default_rng(5),
            slow_sigma_db=0.0,
            fast_sigma_db=0.0,
            human=human,
        )
        samples = with_events.sample_block(0.0, 0.5, 2000)
        assert samples.min() >= 0.0  # never a gain
        assert samples.mean() > 0.1  # events actually fire

    def test_events_raise_deviation(self):
        """The Fig. 4 mechanism: event-afflicted links have higher RSSI std."""
        human = HumanShadowingConfig(rate_per_s=0.2)
        quiet = make_process(np.random.default_rng(6))
        noisy = make_process(np.random.default_rng(6), human=human)
        q = quiet.sample_block(0.0, 0.5, 3000)
        n = noisy.sample_block(0.0, 0.5, 3000)
        assert n.std() > q.std()

    def test_no_events_at_zero_rate(self):
        human = HumanShadowingConfig(rate_per_s=0.0)
        proc = make_process(
            np.random.default_rng(7),
            slow_sigma_db=0.0,
            fast_sigma_db=0.0,
            human=human,
        )
        assert np.all(proc.sample_block(0.0, 1.0, 100) == 0.0)

    def test_config_validation(self):
        with pytest.raises(ChannelError):
            HumanShadowingConfig(rate_per_s=-1.0)
        with pytest.raises(ChannelError):
            HumanShadowingConfig(mean_depth_db=-1.0)
        with pytest.raises(ChannelError):
            HumanShadowingConfig(mean_duration_s=0.0)
