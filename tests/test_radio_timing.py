"""TinyOS timing model tests (repro.radio.timing)."""

import pytest

from repro.radio import timing
from repro.radio.frame import frame_air_time_s


class TestPaperConstants:
    def test_turnaround(self):
        assert timing.TURNAROUND_TIME_S == pytest.approx(0.224e-3)

    def test_mean_backoff(self):
        assert timing.MEAN_INITIAL_BACKOFF_S == pytest.approx(5.28e-3)
        assert timing.MAX_INITIAL_BACKOFF_S == pytest.approx(10.56e-3)

    def test_ack_time(self):
        assert timing.ACK_TIME_S == pytest.approx(1.96e-3)

    def test_ack_wait(self):
        assert timing.ACK_WAIT_TIMEOUT_S == pytest.approx(8.192e-3)

    def test_spi_matches_table_ii_backsolve(self):
        # 129-byte frame → 6.45 ms, the value that reproduces Table II.
        assert timing.spi_load_time_s(110) == pytest.approx(6.45e-3)


class TestAttemptTimes:
    def test_decomposition(self):
        t = timing.AttemptTimes(payload_bytes=110, d_retry_s=0.030)
        assert t.t_mac == pytest.approx(0.224e-3 + 5.28e-3)
        assert t.t_frame == pytest.approx(frame_air_time_s(110))
        assert t.t_succ == pytest.approx(t.t_mac + t.t_frame + timing.ACK_TIME_S)
        assert t.t_fail == pytest.approx(
            t.t_mac + t.t_frame + timing.ACK_WAIT_TIMEOUT_S
        )
        assert t.t_retry == pytest.approx(t.t_fail + 0.030)

    def test_fail_slower_than_success(self):
        t = timing.AttemptTimes(payload_bytes=50)
        assert t.t_fail > t.t_succ

    def test_zero_retry_delay(self):
        t = timing.AttemptTimes(payload_bytes=50, d_retry_s=0.0)
        assert t.t_retry == pytest.approx(t.t_fail)

    def test_larger_payload_slower_everywhere(self):
        small = timing.AttemptTimes(payload_bytes=5)
        large = timing.AttemptTimes(payload_bytes=114)
        assert large.t_spi > small.t_spi
        assert large.t_frame > small.t_frame
        assert large.t_succ > small.t_succ

    def test_mac_delay_helper(self):
        assert timing.mac_delay_s(0.0) == pytest.approx(timing.TURNAROUND_TIME_S)
        assert timing.mac_delay_s() == pytest.approx(
            timing.TURNAROUND_TIME_S + timing.MEAN_INITIAL_BACKOFF_S
        )
