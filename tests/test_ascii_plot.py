"""ASCII plotting tests (repro.analysis.ascii_plot)."""

import math

import pytest

from repro.analysis.ascii_plot import scatter, side_by_side, sparkline
from repro.errors import AnalysisError


class TestSparkline:
    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert len(line) == 8
        assert line == "".join(sorted(line))

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_nan_renders_space(self):
        line = sparkline([1.0, math.nan, 2.0])
        assert line[1] == " "

    def test_width_subsamples(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_validation(self):
        with pytest.raises(AnalysisError):
            sparkline([])
        with pytest.raises(AnalysisError):
            sparkline([1.0], width=0)


class TestScatter:
    def test_plot_dimensions(self):
        text = scatter([0, 1, 2], [0, 1, 4], width=20, height=6)
        lines = text.splitlines()
        assert len(lines) == 6 + 2  # grid + axis + labels
        assert all(len(line) <= 9 + 1 + 20 for line in lines[:6])

    def test_markers_present(self):
        text = scatter([0, 1, 2, 3], [0, 1, 2, 3], width=10, height=5)
        assert text.count("*") >= 3

    def test_axis_labels(self):
        text = scatter([0, 10], [5, 50], width=20, height=5)
        assert "50" in text and "10" in text

    def test_nan_points_skipped(self):
        text = scatter([0, math.nan, 2], [1, 1, 3], width=10, height=5)
        assert text.count("*") == 2

    def test_validation(self):
        with pytest.raises(AnalysisError):
            scatter([1], [1, 2])
        with pytest.raises(AnalysisError):
            scatter([math.nan], [math.nan])
        with pytest.raises(AnalysisError):
            scatter([1, 2], [1, 2], width=4, height=2)


class TestSideBySide:
    def test_blocks_joined(self):
        combined = side_by_side(["a", "b"], ["x\ny", "p\nq\nr"])
        lines = combined.splitlines()
        assert len(lines) == 4  # header + 3 rows
        assert "x" in lines[1] and "p" in lines[1]
        assert "r" in lines[3]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            side_by_side(["a"], [])
        with pytest.raises(AnalysisError):
            side_by_side([], [])
