"""Fleet batch endpoint tests: protocol, oracle grouping, service
accounting, client shape, and the HTTP round-trip."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.optimization import TuningGrid
from repro.errors import ProtocolError
from repro.serve import (
    Client,
    FleetRecommendRequest,
    LinkSpec,
    MAX_FLEET_LINKS,
    Oracle,
    OracleService,
    RecommendRequest,
    make_server,
    parse_fleet_recommend,
)

TINY_GRID = TuningGrid(
    ptx_levels=(3, 31),
    payload_values_bytes=(20, 110),
    n_max_tries_values=(1, 3),
    q_max_values=(1,),
)

INFEASIBLE = [
    {"objective": "loss", "max": 1e-30},
    {"objective": "delay", "max": 0.001},
]


@pytest.fixture
def client():
    service = OracleService(Oracle(grid=TINY_GRID), workers=2)
    yield Client(service)
    service.close()


class TestFleetProtocol:
    def test_parse_happy_path(self):
        request = parse_fleet_recommend(
            {
                "links": [{"distance_m": 10.0}, {"snr_db": 4.0}],
                "objective": "delay",
                "constraints": [{"objective": "loss", "max": 0.1}],
            }
        )
        assert isinstance(request, FleetRecommendRequest)
        assert len(request.links) == 2
        assert request.objective == "delay"
        assert request.constraints[0].upper_bound == 0.1

    def test_objective_defaults_to_energy(self):
        request = parse_fleet_recommend({"links": [{"distance_m": 5.0}]})
        assert request.objective == "energy"
        assert request.constraints == ()

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({}, "missing its 'links'"),
            ({"links": {}}, "must be a JSON array"),
            ({"links": []}, "at least one link"),
            ({"links": [{"distance_m": 1.0}], "extra": 1}, "unknown"),
            ({"links": [{}]}, "exactly one of"),
            (
                {"links": [{"distance_m": 1.0}], "objective": "latency"},
                "unknown objective",
            ),
        ],
    )
    def test_bad_payloads_rejected(self, payload, match):
        with pytest.raises(ProtocolError, match=match):
            parse_fleet_recommend(payload)

    def test_link_cap_enforced(self):
        links = (LinkSpec(snr_db=4.0),) * (MAX_FLEET_LINKS + 1)
        with pytest.raises(ProtocolError, match="at most"):
            FleetRecommendRequest(links=links)


class TestOracleFleet:
    def test_duplicates_cost_one_solve(self):
        oracle = Oracle(grid=TINY_GRID)
        request = FleetRecommendRequest(
            links=(LinkSpec(distance_m=10.0),) * 5
            + (LinkSpec(distance_m=30.0),) * 5
        )
        result = oracle.recommend_fleet(request)
        assert len(result) == 10
        assert result.n_unique_links == 2
        assert oracle.cache_info()["table_builds"] == 2

    def test_matches_single_link_recommend(self):
        oracle = Oracle(grid=TINY_GRID)
        links = (LinkSpec(distance_m=10.0), LinkSpec(snr_db=6.0))
        fleet = oracle.recommend_fleet(FleetRecommendRequest(links=links))
        for link, evaluation in zip(links, fleet.evaluations):
            single = oracle.recommend(RecommendRequest(link=link))
            assert evaluation == single.evaluation

    def test_infeasible_link_reported_in_band(self):
        oracle = Oracle(grid=TINY_GRID)
        request = parse_fleet_recommend(
            {
                "links": [{"snr_db": 4.0}, {"snr_db": 15.0}],
                "constraints": INFEASIBLE,
            }
        )
        result = oracle.recommend_fleet(request)
        assert result.n_infeasible == 2
        assert result.evaluations == (None, None)
        for error in result.errors:
            assert "no configuration satisfies the constraints" in error

    def test_tier_counts_track_cache_state(self):
        oracle = Oracle(grid=TINY_GRID)
        oracle.precompute([10.0])
        request = FleetRecommendRequest(
            links=(LinkSpec(distance_m=10.0), LinkSpec(distance_m=22.0))
        )
        first = oracle.recommend_fleet(request)
        assert first.tier_counts() == {"precomputed": 1, "miss": 1}
        second = oracle.recommend_fleet(request)
        assert second.tier_counts() == {"precomputed": 1, "lru": 1}


class TestClientAndService:
    def test_response_shape(self, client):
        out = client.recommend_fleet(
            {
                "links": [{"distance_m": 10.0}, {"distance_m": 10.0},
                          {"snr_db": 4.0}],
                "objective": "energy",
            }
        )
        assert out["n_links"] == 3
        assert out["n_unique_links"] == 2
        assert out["n_infeasible"] == 0
        assert len(out["results"]) == 3
        assert out["results"][0]["recommendation"] == (
            out["results"][1]["recommendation"]
        )
        assert sum(out["cache_tiers"].values()) == 3

    def test_fleet_of_one_matches_recommend(self, client):
        payload_link = {"snr_db": 5.0}
        single = client.recommend(
            {"link": payload_link, "objective": "energy"}
        )
        fleet = client.recommend_fleet(
            {"links": [payload_link], "objective": "energy"}
        )
        assert (
            fleet["results"][0]["recommendation"] == single["recommendation"]
        )

    def test_infeasible_is_in_band_not_an_exception(self, client):
        out = client.recommend_fleet(
            {"links": [{"snr_db": 4.0}], "constraints": INFEASIBLE}
        )
        error = out["results"][0]["error"]
        assert error["type"] == "InfeasibleError"
        assert "no configuration satisfies" in error["message"]

    def test_metrics_account_fleet_batches(self, client):
        client.recommend_fleet(
            {"links": [{"snr_db": 4.0}, {"snr_db": 6.0}, {"snr_db": 4.0}]}
        )
        metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["fleet_requests_total"] == 1
        assert counters["fleet_links_total"] == 3
        assert counters["fleet_infeasible_total"] == 0
        assert counters["fleet_cache_miss_total"] == 3
        assert metrics["latency"]["fleet_batch_links"]["count"] == 1
        assert metrics["latency"]["fleet_batch_links"]["sum_count"] == 3.0
        assert metrics["latency"]["fleet_solve_ms"]["count"] == 1


class TestFleetHTTP:
    @pytest.fixture
    def server(self):
        service = OracleService(Oracle(grid=TINY_GRID), workers=2)
        http_server = make_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        yield http_server
        http_server.shutdown()
        http_server.server_close()
        service.close()
        thread.join(timeout=5.0)

    def post(self, server, payload):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/fleet/recommend",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_round_trip(self, server):
        status, body = self.post(
            server,
            {
                "links": [{"distance_m": 10.0}, {"snr_db": 4.0}],
                "objective": "energy",
                "constraints": [{"objective": "delay", "max": 60.0}],
            },
        )
        assert status == 200
        assert body["n_links"] == 2
        assert all("recommendation" in item for item in body["results"])

    def test_http_equals_in_process_client(self, server):
        payload = {"links": [{"snr_db": 7.0}], "objective": "delay"}
        status, body = self.post(server, payload)
        assert status == 200
        expected = server.client.recommend_fleet(payload)
        assert (
            body["results"][0]["recommendation"]
            == expected["results"][0]["recommendation"]
        )

    def test_bad_payload_is_400(self, server):
        status, body = self.post(server, {"links": []})
        assert status == 400
        assert body["error"]["type"] == "ProtocolError"

    def test_infeasible_batch_is_200_with_in_band_errors(self, server):
        status, body = self.post(
            server,
            {"links": [{"snr_db": 4.0}], "constraints": INFEASIBLE},
        )
        assert status == 200
        assert body["n_infeasible"] == 1
        assert body["results"][0]["error"]["type"] == "InfeasibleError"


ROUTED_PAYLOAD = {
    "links": [{"snr_db": 20.0}, {"snr_db": 18.0}, {"snr_db": 15.0}],
    "objective": "energy",
    "routing": {
        "edges": [[1, 0], [2, 1], [3, 2]],
        "sink": 0,
        "max_path_loss": 0.9,
    },
}


class TestFleetRouting:
    def test_parse_routing_block(self):
        request = parse_fleet_recommend(ROUTED_PAYLOAD)
        assert request.routing is not None
        assert request.routing.sink == 0
        assert request.routing.strategy == "tree"
        assert request.routing.max_path_loss == 0.9
        assert request.routing.n_nodes == 4

    @pytest.mark.parametrize(
        "routing, match",
        [
            ({"edges": []}, "at least one edge"),
            ({"edges": [[0, 1, 2]]}, "pair"),
            ({"edges": [[0, 1]], "strategy": "flood"}, "strategy"),
            ({"edges": [[0, 1]], "max_path_loss": 1.5}, "max_path_loss"),
            ({"edges": [[0, 1]], "sink": -1}, "sink"),
            ({"edges": [[0, 1]], "unknown": True}, "unknown"),
        ],
    )
    def test_bad_routing_blocks_rejected(self, routing, match):
        payload = {"links": [{"snr_db": 10.0}], "routing": routing}
        payload["links"] = [{"snr_db": 10.0}] * len(routing.get("edges") or [1])
        with pytest.raises(ProtocolError, match=match):
            parse_fleet_recommend(payload)

    def test_edges_must_run_parallel_to_links(self):
        with pytest.raises(ProtocolError, match="parallel"):
            parse_fleet_recommend(
                {
                    "links": [{"snr_db": 10.0}],
                    "routing": {"edges": [[0, 1], [1, 2]]},
                }
            )

    def test_oracle_reports_path_feasibility(self):
        oracle = Oracle(grid=TINY_GRID)
        result = oracle.recommend_fleet(
            parse_fleet_recommend(ROUTED_PAYLOAD)
        )
        routing = result.routing
        assert routing is not None
        assert routing.sink == 0
        assert routing.max_hops == 3
        assert routing.n_paths == 1
        assert 0 <= routing.n_paths_feasible <= routing.n_paths
        assert routing.path_stats["n_paths"] == 1

    def test_routed_recommend_deterministic(self):
        first = Oracle(grid=TINY_GRID).recommend_fleet(
            parse_fleet_recommend(ROUTED_PAYLOAD)
        )
        second = Oracle(grid=TINY_GRID).recommend_fleet(
            parse_fleet_recommend(ROUTED_PAYLOAD)
        )
        assert first.routing == second.routing

    def test_include_paths_lists_leaves(self):
        payload = json.loads(json.dumps(ROUTED_PAYLOAD))
        payload["routing"]["include_paths"] = True
        result = Oracle(grid=TINY_GRID).recommend_fleet(
            parse_fleet_recommend(payload)
        )
        assert result.routing.paths is not None
        (row,) = result.routing.paths
        assert row["leaf"] == 3
        assert row["hops"] == 3
        assert isinstance(row["feasible"], bool)

    def test_disconnected_routing_block_is_client_error(self):
        oracle = Oracle(grid=TINY_GRID)
        request = parse_fleet_recommend(
            {
                "links": [{"snr_db": 10.0}] * 2,
                "routing": {"edges": [[0, 1], [2, 3]], "sink": 0},
            }
        )
        with pytest.raises(ProtocolError, match="bad routing block"):
            oracle.recommend_fleet(request)

    def test_infeasible_link_reports_dead_paths(self):
        payload = json.loads(json.dumps(ROUTED_PAYLOAD))
        payload["constraints"] = INFEASIBLE
        result = Oracle(grid=TINY_GRID).recommend_fleet(
            parse_fleet_recommend(payload)
        )
        assert result.n_infeasible == len(result)
        assert result.routing.n_paths_feasible == 0

    def test_client_response_carries_routing(self, client):
        response = client.recommend_fleet(ROUTED_PAYLOAD)
        assert "routing" in response
        assert response["routing"]["n_paths"] == 1
        unrouted = client.recommend_fleet(
            {"links": [{"snr_db": 10.0}]}
        )
        assert "routing" not in unrouted
