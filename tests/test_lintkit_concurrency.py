"""Tests for reprolint's concurrency tier (semantic.concurrency + RPR201-205).

Every rule gets at least two true-positive fixtures (the defect is
detected) and two true-negative fixtures (the precision guards hold on
conforming code). The RPR203 negatives include the exact pool-initializer
pattern ``campaign/parallel.py`` uses — frozen dataclass spec, spawn
context, ``imap_unordered`` — and lint the real file, so the production
code is proven clean rather than skipped. Block-scoped suppression
(a directive on a ``with`` header silencing findings inside the block)
is pinned here too, since the concurrency rules are what anchor findings
deep inside guarded blocks.
"""

import ast
from pathlib import Path

import repro
from repro.lintkit import lint_paths
from repro.lintkit.semantic.concurrency import ConcurrencyIndex
from repro.lintkit.semantic.symbols import ProjectIndex

SRC_REPRO = Path(repro.__file__).resolve().parent


def build_index(tmp_path, files):
    """Parse ``{filename: code}`` into one ProjectIndex (flat stems)."""
    entries = []
    for name, code in sorted(files.items()):
        path = tmp_path / name
        path.write_text(code)
        entries.append((str(path), "", ast.parse(code, filename=str(path))))
    return ProjectIndex.build(entries)


def lint_project(tmp_path, files, select):
    """Write ``{filename: code}`` and lint the directory as one batch."""
    for name, code in files.items():
        (tmp_path / name).write_text(code)
    return lint_paths([tmp_path], select=select)


def rule_ids(findings):
    return [f.rule_id for f in findings]


def messages(findings):
    return " | ".join(f.message for f in findings)


# ----------------------------------------------------------------------
# the analysis itself
# ----------------------------------------------------------------------

_COUNTER = (
    "import threading\n"
    "\n"
    "class Counter:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._bounds = (0, 10)\n"
    "        self._total = 0\n"
    "\n"
    "    def add(self, n):\n"
    "        with self._lock:\n"
    "            self._total = self._total + n\n"
    "\n"
    "    def low(self):\n"
    "        return self._bounds[0]\n"
)


class TestConcurrencyIndex:
    def test_lock_attr_and_guarded_set(self, tmp_path):
        index = build_index(tmp_path, {"mod.py": _COUNTER})
        conc = index.concurrency()
        cc = conc.classes["mod.Counter"]
        assert cc.locks == {"_lock"}
        # _total is written under the lock by a non-constructor method;
        # _bounds is only assigned in __init__ and stays unguarded.
        assert set(cc.guarded) == {"_total"}
        assert cc.guarded["_total"] == {"_lock"}

    def test_condition_aliases_wrapped_lock(self, tmp_path):
        code = (
            "import threading\n"
            "\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._not_empty = threading.Condition(self._lock)\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "\n"
            "    def put(self, x):\n"
            "        with self._not_empty:\n"
            "            self._items.append(x)\n"
        )
        index = build_index(tmp_path, {"mod.py": code})
        cc = index.concurrency().classes["mod.Box"]
        # Declaration order does not matter: the condition canonicalizes
        # to the wrapped lock, so both names open the same guard.
        assert cc.aliases["_not_empty"] == "_lock"
        assert cc.guarded["_items"] == {"_lock"}

    def test_bare_condition_is_its_own_guard(self, tmp_path):
        code = (
            "import threading\n"
            "\n"
            "class Gate:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "        self._open = False\n"
            "\n"
            "    def open(self):\n"
            "        with self._cond:\n"
            "            self._open = True\n"
        )
        index = build_index(tmp_path, {"mod.py": code})
        cc = index.concurrency().classes["mod.Gate"]
        assert cc.aliases["_cond"] == "_cond"
        assert cc.guarded["_open"] == {"_cond"}

    def test_project_local_event_class_not_misclassified(self, tmp_path):
        files = {
            "events.py": "class Event:\n    pass\n",
            "sched.py": (
                "from events import Event\n"
                "\n"
                "class Scheduler:\n"
                "    def __init__(self):\n"
                "        self._next = Event()\n"
            ),
        }
        index = build_index(tmp_path, files)
        # A project-local Event is not threading.Event: no sync attrs,
        # no class summary at all.
        assert "sched.Scheduler" not in index.concurrency().classes

    def test_module_global_lock_acquirer_detected(self, tmp_path):
        code = (
            "import threading\n"
            "\n"
            "_CACHE_LOCK = threading.Lock()\n"
            "\n"
            "def locked_update(x):\n"
            "    with _CACHE_LOCK:\n"
            "        return x\n"
            "\n"
            "def pure(x):\n"
            "    return x\n"
        )
        index = build_index(tmp_path, {"mod.py": code})
        conc = index.concurrency()
        assert conc.module_sync["mod"] == {"_CACHE_LOCK": "lock"}
        assert "mod.locked_update" in conc.lock_acquirers
        assert "mod.pure" not in conc.lock_acquirers

    def test_cached_on_project_index(self, tmp_path):
        index = build_index(tmp_path, {"mod.py": _COUNTER})
        assert index.concurrency() is index.concurrency()
        assert isinstance(index.concurrency(), ConcurrencyIndex)


# ----------------------------------------------------------------------
# RPR201 — lock discipline
# ----------------------------------------------------------------------


class TestRPR201LockDiscipline:
    def test_detects_unlocked_read(self, tmp_path):
        code = _COUNTER + (
            "\n"
            "    def snapshot(self):\n"
            "        return self._total\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR201"})
        assert rule_ids(findings) == ["RPR201"]
        assert "read of '_total'" in findings[0].message
        assert "_lock" in findings[0].message

    def test_detects_unlocked_write(self, tmp_path):
        code = _COUNTER + (
            "\n"
            "    def reset(self):\n"
            "        self._total = 0\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR201"})
        assert rule_ids(findings) == ["RPR201"]
        assert "write of '_total'" in findings[0].message

    def test_clean_class_and_init_only_reads(self, tmp_path):
        # Every guarded access is under the lock; _bounds is init-only
        # configuration and its lock-free read is sanctioned.
        code = _COUNTER + (
            "\n"
            "    def drain(self):\n"
            "        with self._lock:\n"
            "            total = self._total\n"
            "            self._total = 0\n"
            "        return total\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR201"}) == []

    def test_helper_called_only_under_lock_is_clean(self, tmp_path):
        code = (
            "import threading\n"
            "\n"
            "class Helper:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._n = 0\n"
            "\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._advance()\n"
            "\n"
            "    def _advance(self):\n"
            "        self._n = self._n + 1\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR201"}) == []

    def test_condition_alias_scope_is_a_lock_scope(self, tmp_path):
        code = (
            "import threading\n"
            "\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._ready = threading.Condition(self._lock)\n"
            "        self._items = []\n"
            "\n"
            "    def put(self, x):\n"
            "        with self._ready:\n"
            "            self._items.append(x)\n"
            "            self._ready.notify()\n"
            "\n"
            "    def size(self):\n"
            "        with self._lock:\n"
            "            return len(self._items)\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR201"}) == []


# ----------------------------------------------------------------------
# RPR202 — atomicity
# ----------------------------------------------------------------------

_SPLIT_INSTALL = (
    "import threading\n"
    "\n"
    "class Table:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._tables = {}\n"
    "\n"
    "    def install(self, key, build):\n"
    "        with self._lock:\n"
    "            if key in self._tables:\n"
    "                return 0\n"
    "        value = build(key)\n"
    "        with self._lock:\n"
    "%s"
    "        return 1\n"
)


class TestRPR202Atomicity:
    def test_detects_split_check_then_act(self, tmp_path):
        code = _SPLIT_INSTALL % "            self._tables[key] = value\n"
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR202"})
        assert rule_ids(findings) == ["RPR202"]
        assert "earlier lock acquisition" in findings[0].message

    def test_detects_unlocked_read_modify_write(self, tmp_path):
        code = (
            "import threading\n"
            "\n"
            "class Stats:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._hits = 0\n"
            "\n"
            "    def record(self):\n"
            "        with self._lock:\n"
            "            self._hits += 1\n"
            "\n"
            "    def record_fast(self):\n"
            "        self._hits += 1\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR202"})
        assert rule_ids(findings) == ["RPR202"]
        assert "read-modify-write" in findings[0].message

    def test_one_defect_one_finding_across_201_202(self, tmp_path):
        # An unlocked += is RPR202's case only; RPR201 must not double-flag.
        code = (
            "import threading\n"
            "\n"
            "class Stats:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._hits = 0\n"
            "\n"
            "    def record(self):\n"
            "        with self._lock:\n"
            "            self._hits += 1\n"
            "\n"
            "    def record_fast(self):\n"
            "        self._hits += 1\n"
        )
        findings = lint_project(
            tmp_path, {"mod.py": code}, {"RPR201", "RPR202"}
        )
        assert rule_ids(findings) == ["RPR202"]

    def test_double_checked_install_is_clean(self, tmp_path):
        code = _SPLIT_INSTALL % (
            "            if key in self._tables:\n"
            "                return 0\n"
            "            self._tables[key] = value\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR202"}) == []

    def test_cross_scope_read_only_is_clean(self, tmp_path):
        # table_for's shape: a locked read in one scope, another locked
        # read later, but no write — nothing acts on a stale check.
        code = (
            "import threading\n"
            "\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._tables = {}\n"
            "\n"
            "    def install(self, key, value):\n"
            "        with self._lock:\n"
            "            self._tables[key] = value\n"
            "\n"
            "    def lookup(self, key):\n"
            "        with self._lock:\n"
            "            if key in self._tables:\n"
            "                return self._tables[key]\n"
            "        return None\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR202"}) == []


# ----------------------------------------------------------------------
# RPR203 — fork safety
# ----------------------------------------------------------------------


class TestRPR203ForkSafety:
    def test_detects_lock_in_initargs(self, tmp_path):
        code = (
            "import multiprocessing\n"
            "import threading\n"
            "\n"
            "def _setup(lock):\n"
            "    pass\n"
            "\n"
            "def work(x):\n"
            "    return x\n"
            "\n"
            "def run(jobs):\n"
            "    lock = threading.Lock()\n"
            "    ctx = multiprocessing.get_context('spawn')\n"
            "    with ctx.Pool(2, initializer=_setup, initargs=(lock,)) as pool:\n"
            "        return list(pool.map(work, jobs))\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR203"})
        assert rule_ids(findings) == ["RPR203"]
        assert "threading lock" in findings[0].message

    def test_detects_closure_capturing_thread_queue(self, tmp_path):
        code = (
            "import multiprocessing\n"
            "import queue\n"
            "\n"
            "def run(jobs):\n"
            "    results = queue.Queue()\n"
            "\n"
            "    def worker(x):\n"
            "        results.put_nowait(x)\n"
            "        return x\n"
            "\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return list(pool.map(worker, jobs))\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR203"})
        assert rule_ids(findings) == ["RPR203"]
        assert "thread queue" in findings[0].message

    def test_detects_worker_reaching_lock_acquisition(self, tmp_path):
        code = (
            "import multiprocessing\n"
            "import threading\n"
            "\n"
            "_CACHE_LOCK = threading.Lock()\n"
            "\n"
            "def _locked_update(x):\n"
            "    with _CACHE_LOCK:\n"
            "        return x\n"
            "\n"
            "def worker(x):\n"
            "    return _locked_update(x)\n"
            "\n"
            "def run(jobs):\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return list(pool.map(worker, jobs))\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR203"})
        assert rule_ids(findings) == ["RPR203"]
        assert "reach a threading lock acquisition" in findings[0].message
        assert "_locked_update" in findings[0].message  # the path is named

    def test_pool_initializer_spec_pattern_is_clean(self, tmp_path):
        # The exact campaign/parallel.py shape: frozen dataclass spec,
        # module-global installed by the initializer, spawn context,
        # imap_unordered, re-sort by index.
        code = (
            "import multiprocessing\n"
            "from dataclasses import dataclass\n"
            "from typing import Optional\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class _WorkerSpec:\n"
            "    base_seed: int\n"
            "    n_packets: int\n"
            "\n"
            "_WORKER_SPEC: Optional[_WorkerSpec] = None\n"
            "\n"
            "def _init_worker(spec):\n"
            "    global _WORKER_SPEC\n"
            "    _WORKER_SPEC = spec\n"
            "\n"
            "class MiniRunner:\n"
            "    def __init__(self, base_seed):\n"
            "        self.base_seed = base_seed\n"
            "\n"
            "    def run_config(self, config, index):\n"
            "        return (self.base_seed, index, config)\n"
            "\n"
            "def _run_one(spec, index, config):\n"
            "    runner = MiniRunner(base_seed=spec.base_seed)\n"
            "    return index, runner.run_config(config, index)\n"
            "\n"
            "def _run_indexed(job, spec=None):\n"
            "    spec = spec if spec is not None else _WORKER_SPEC\n"
            "    index, config = job\n"
            "    return _run_one(spec, index, config)\n"
            "\n"
            "def run_parallel(configs, n_workers=2, chunksize=4):\n"
            "    spec = _WorkerSpec(base_seed=42, n_packets=10)\n"
            "    jobs = [(index, config) for index, config in enumerate(configs)]\n"
            "    ctx = multiprocessing.get_context('spawn')\n"
            "    with ctx.Pool(\n"
            "        processes=n_workers, initializer=_init_worker, initargs=(spec,)\n"
            "    ) as pool:\n"
            "        results = list(\n"
            "            pool.imap_unordered(_run_indexed, jobs, chunksize=chunksize)\n"
            "        )\n"
            "    results.sort(key=lambda item: item[0])\n"
            "    return results\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR203"}) == []

    def test_real_campaign_parallel_is_clean(self):
        # The production file itself, not just a replica of its pattern.
        findings = lint_paths(
            [SRC_REPRO / "campaign" / "parallel.py"], select={"RPR203"}
        )
        assert findings == []

    def test_plain_data_pool_is_clean(self, tmp_path):
        code = (
            "import multiprocessing\n"
            "\n"
            "def work(x):\n"
            "    return x * x\n"
            "\n"
            "def run(jobs, n):\n"
            "    with multiprocessing.Pool(n) as pool:\n"
            "        return pool.starmap(work, [(j,) for j in jobs])\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR203"}) == []


# ----------------------------------------------------------------------
# RPR204 — resource lifecycle
# ----------------------------------------------------------------------


class TestRPR204ResourceLifecycle:
    def test_detects_happy_path_close_only(self, tmp_path):
        code = (
            "def dump(path, rows):\n"
            "    fh = open(path, 'w')\n"
            "    for row in rows:\n"
            "        fh.write(row)\n"
            "    fh.close()\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR204"})
        assert rule_ids(findings) == ["RPR204"]
        assert "not reliably released" in findings[0].message

    def test_detects_attribute_with_no_owner_release(self, tmp_path):
        code = (
            "class Logger:\n"
            "    def __init__(self, path):\n"
            "        self._log = open(path, 'a')\n"
            "\n"
            "    def write(self, line):\n"
            "        self._log.write(line)\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR204"})
        assert rule_ids(findings) == ["RPR204"]
        assert "no release path" in findings[0].message

    def test_with_statement_is_clean(self, tmp_path):
        code = (
            "def dump(path, rows):\n"
            "    with open(path, 'w') as fh:\n"
            "        for row in rows:\n"
            "            fh.write(row)\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR204"}) == []

    def test_try_finally_close_is_clean(self, tmp_path):
        code = (
            "def read_all(path):\n"
            "    fh = open(path)\n"
            "    try:\n"
            "        return fh.read()\n"
            "    finally:\n"
            "        fh.close()\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR204"}) == []

    def test_owner_close_path_is_clean(self, tmp_path):
        # self._fh is released via close() -> _shutdown() -> _fh.close(),
        # one hop through a same-class helper.
        code = (
            "class Sink:\n"
            "    def __init__(self, path):\n"
            "        self._fh = open(path, 'a')\n"
            "\n"
            "    def append(self, line):\n"
            "        self._fh.write(line)\n"
            "\n"
            "    def close(self):\n"
            "        self._shutdown()\n"
            "\n"
            "    def _shutdown(self):\n"
            "        self._fh.close()\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR204"}) == []

    def test_ownership_transfer_is_clean(self, tmp_path):
        code = (
            "def acquire(path):\n"
            "    return open(path)\n"
            "\n"
            "def acquire_named(path):\n"
            "    fh = open(path)\n"
            "    return fh\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR204"}) == []


# ----------------------------------------------------------------------
# RPR205 — blocking-call deadlines
# ----------------------------------------------------------------------


class TestRPR205BlockingDeadlines:
    def test_detects_untimed_condition_wait(self, tmp_path):
        code = (
            "import threading\n"
            "\n"
            "class Waiter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._ready = threading.Condition(self._lock)\n"
            "        self._items = []\n"
            "\n"
            "    def put(self, item):\n"
            "        with self._ready:\n"
            "            self._items.append(item)\n"
            "            self._ready.notify()\n"
            "\n"
            "    def take(self):\n"
            "        with self._ready:\n"
            "            while not self._items:\n"
            "                self._ready.wait()\n"
            "            return self._items.pop()\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR205"})
        assert rule_ids(findings) == ["RPR205"]
        assert "untimed condition wait()" in findings[0].message

    def test_detects_untimed_queue_get_and_event_wait(self, tmp_path):
        code = (
            "import queue\n"
            "import threading\n"
            "\n"
            "def drain(n):\n"
            "    q = queue.Queue()\n"
            "    return [q.get() for _ in range(n)]\n"
            "\n"
            "def pause(done):\n"
            "    stop = threading.Event()\n"
            "    stop.wait()\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR205"})
        assert sorted(rule_ids(findings)) == ["RPR205", "RPR205"]
        assert "queue get()" in messages(findings)
        assert "event wait()" in messages(findings)

    def test_explicit_timeout_none_still_flagged(self, tmp_path):
        code = (
            "import queue\n"
            "\n"
            "def drain(q_in):\n"
            "    q = queue.Queue()\n"
            "    return q.get(timeout=None)\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR205"})
        assert rule_ids(findings) == ["RPR205"]

    def test_bounded_waits_are_clean(self, tmp_path):
        code = (
            "import threading\n"
            "\n"
            "_POLL_S = 0.5\n"
            "\n"
            "class Waiter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._ready = threading.Condition(self._lock)\n"
            "        self._stop = threading.Event()\n"
            "        self._items = []\n"
            "\n"
            "    def take(self):\n"
            "        with self._ready:\n"
            "            while not self._items:\n"
            "                self._ready.wait(timeout=_POLL_S)\n"
            "            return self._items.pop()\n"
            "\n"
            "    def take_pred(self):\n"
            "        with self._ready:\n"
            "            self._ready.wait_for(lambda: self._items, _POLL_S)\n"
            "            return self._items.pop()\n"
            "\n"
            "    def idle(self):\n"
            "        return self._stop.wait(_POLL_S)\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR205"}) == []

    def test_nonblocking_queue_ops_are_clean(self, tmp_path):
        code = (
            "import queue\n"
            "\n"
            "def pump(items):\n"
            "    q = queue.Queue()\n"
            "    for item in items:\n"
            "        q.put_nowait(item)\n"
            "    first = q.get(timeout=0.1)\n"
            "    second = q.get(block=False)\n"
            "    q.put(first, False)\n"
            "    return first, second\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR205"}) == []

    def test_socket_without_settimeout_flagged_with_clean(self, tmp_path):
        flagged = (
            "import socket\n"
            "\n"
            "class RawConn:\n"
            "    def __init__(self, host):\n"
            "        self._sock = socket.create_connection((host, 80))\n"
            "\n"
            "    def read(self, n):\n"
            "        return self._sock.recv(n)\n"
            "\n"
            "    def close(self):\n"
            "        self._sock.close()\n"
        )
        findings = lint_project(tmp_path, {"mod.py": flagged}, {"RPR205"})
        assert rule_ids(findings) == ["RPR205"]
        assert "settimeout" in findings[0].message

        clean = flagged.replace(
            "        self._sock = socket.create_connection((host, 80))\n",
            "        self._sock = socket.create_connection((host, 80))\n"
            "        self._sock.settimeout(5.0)\n",
        )
        assert lint_project(tmp_path, {"mod.py": clean}, {"RPR205"}) == []


# ----------------------------------------------------------------------
# block-scoped suppression (with-statement directives)
# ----------------------------------------------------------------------


class TestBlockSuppression:
    def test_directive_on_with_header_covers_the_block(self, tmp_path):
        code = _COUNTER + (
            "\n"
            "    def dump(self, path):\n"
            "        with open(path, 'w') as sink:  # reprolint: disable=RPR201\n"
            "            sink.write(str(self._total))\n"
        )
        assert lint_project(tmp_path, {"mod.py": code}, {"RPR201"}) == []

    def test_without_directive_the_same_block_is_flagged(self, tmp_path):
        code = _COUNTER + (
            "\n"
            "    def dump(self, path):\n"
            "        with open(path, 'w') as sink:\n"
            "            sink.write(str(self._total))\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR201"})
        assert rule_ids(findings) == ["RPR201"]

    def test_block_suppression_does_not_leak_past_the_block(self, tmp_path):
        code = _COUNTER + (
            "\n"
            "    def dump(self, path):\n"
            "        with open(path, 'w') as sink:  # reprolint: disable=RPR201\n"
            "            sink.write(str(self._total))\n"
            "        return self._total\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR201"})
        # Only the access after the with-block survives.
        assert rule_ids(findings) == ["RPR201"]
        assert findings[0].line == code.count("\n")

    def test_block_suppression_is_rule_specific(self, tmp_path):
        # The directive names RPR999-nothing relevant: RPR201 still fires
        # inside the block.
        code = _COUNTER + (
            "\n"
            "    def dump(self, path):\n"
            "        with open(path, 'w') as sink:  # reprolint: disable=RPR103\n"
            "            sink.write(str(self._total))\n"
        )
        findings = lint_project(tmp_path, {"mod.py": code}, {"RPR201"})
        assert rule_ids(findings) == ["RPR201"]


# ----------------------------------------------------------------------
# the package's own invariant
# ----------------------------------------------------------------------


class TestSelfCheck:
    def test_src_repro_clean_under_concurrency_tier(self):
        findings = lint_paths(
            [SRC_REPRO],
            select={"RPR201", "RPR202", "RPR203", "RPR204", "RPR205"},
        )
        assert findings == [], messages(findings)
